//! Offline shim for `proptest 1.x`: the macro DSL and strategy
//! combinators the dcape property tests use. Generates random cases
//! deterministically; failing inputs are reported but NOT shrunk.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub mod strategy;

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s of `element` with length drawn from
    /// `size` (subset of `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.below(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (subset of `ProptestConfig`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
        /// Accepted for API compatibility; the shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256 cases; the shim trims it since
            // failing cases are not shrunk anyway.
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic generator for test inputs (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeded from the test name so properties draw distinct but
        /// reproducible streams.
        pub fn for_test(name: &str) -> Self {
            let mut seed = 0x9E37_79B9_7F4A_7C15u64;
            for b in name.bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01B3);
            }
            TestRng { state: seed }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[lo, hi)`; panics on an empty range.
        pub fn below(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo < hi, "cannot sample empty range");
            lo + (self.next_u64() as usize) % (hi - lo)
        }
    }
}

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Abort the current case with a failure message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Abort the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

/// Pick uniformly among the listed strategies. All arms must share one
/// `Value` type; weights from the real crate are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($arm)),+])
    };
}

/// Define property tests. Shim semantics: run `cases` random inputs per
/// property, panic with the generated inputs' failure message on the
/// first failing case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let outcome: Result<(), $crate::test_runner::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!(
                            "property {} failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(v in 10u32..20, w in -5i64..5) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((-5..5).contains(&w));
        }

        #[test]
        fn tuples_and_map_compose(
            pair in (0u8..4, 0u64..100).prop_map(|(a, b)| (a as u64) * 1000 + b)
        ) {
            prop_assert!(pair < 4000);
            prop_assert_eq!(pair % 1000, pair - (pair / 1000) * 1000);
        }

        #[test]
        fn oneof_covers_only_listed_arms(
            v in prop_oneof![(0u32..1).prop_map(|_| 7u32), (0u32..1).prop_map(|_| 9u32),]
        ) {
            prop_assert!(v == 7 || v == 9, "unexpected arm value {v}");
        }

        #[test]
        fn vec_respects_size_range(xs in crate::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1000, 3..10);
        let a: Vec<u64> = (0..5)
            .map(|_| strat.generate(&mut TestRng::for_test("x")))
            .flatten()
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|_| strat.generate(&mut TestRng::for_test("x")))
            .flatten()
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failing_property_panics_with_context() {
        proptest! {
            @with_config (crate::test_runner::ProptestConfig {
                cases: 2,
                ..Default::default()
            })
            fn always_fails(v in 0u32..10) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
