//! Strategy trait and combinators (shim subset).

use crate::test_runner::TestRng;

/// A recipe for generating random values (subset of
/// `proptest::strategy::Strategy`). No shrinking: `generate` draws one
/// value per call.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Erase a strategy's concrete type so heterogeneous arms can share a
/// `Vec` (used by `prop_oneof!`).
pub fn boxed<S>(strategy: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(strategy)
}

/// Uniform choice among strategies; built by `prop_oneof!`.
pub struct OneOf<V> {
    arms: Vec<Box<dyn Strategy<Value = V>>>,
}

/// Build a [`OneOf`] from pre-boxed arms.
pub fn one_of<V>(arms: Vec<Box<dyn Strategy<Value = V>>>) -> OneOf<V> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    OneOf { arms }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(0, self.arms.len());
        self.arms[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// String strategy from a pattern literal. The shim does not ship a
/// regex engine: it honors only a trailing `{lo,hi}` repetition count
/// (as in `".{0,64}"`) and fills with printable ASCII plus occasional
/// multi-byte chars to exercise UTF-8 paths.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_repetition(self).unwrap_or((0, 16));
        let len = rng.below(lo, hi + 1);
        (0..len)
            .map(|_| {
                let draw = rng.next_u64();
                if draw % 16 == 0 {
                    // Multi-byte code points, including astral ones.
                    ['é', 'λ', '中', '🦀', '\u{10FFFF}'][(draw >> 8) as usize % 5]
                } else {
                    (b' ' + ((draw >> 8) % 95) as u8) as char
                }
            })
            .collect()
    }
}

fn parse_repetition(pattern: &str) -> Option<(usize, usize)> {
    let open = pattern.rfind('{')?;
    let close = pattern[open..].find('}')? + open;
    let (lo, hi) = pattern[open + 1..close].split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical "whole domain" strategy (subset of
/// `proptest::arbitrary::Arbitrary`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's entire domain: `any::<i64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_pattern_respects_bounds() {
        let mut rng = TestRng::for_test("s");
        for _ in 0..50 {
            let s = ".{0,64}".generate(&mut rng);
            assert!(s.chars().count() <= 64);
        }
    }

    #[test]
    fn pattern_without_bounds_still_generates() {
        let mut rng = TestRng::for_test("p");
        let s = "[a-z]+".generate(&mut rng);
        assert!(s.chars().count() <= 16);
    }

    #[test]
    fn oneof_is_roughly_uniform() {
        let strat = one_of(vec![
            boxed((0u32..1).prop_map(|_| 0u32)),
            boxed((0u32..1).prop_map(|_| 1u32)),
        ]);
        let mut rng = TestRng::for_test("u");
        let ones: u32 = (0..1000).map(|_| strat.generate(&mut rng)).sum();
        assert!((200..800).contains(&ones), "badly skewed: {ones}");
    }
}
