//! Offline shim for `crossbeam 0.8`: the `channel` module the threaded
//! runtime uses, backed by `std::sync::mpsc`.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub mod channel {
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// Sending half (clonable, like crossbeam's).
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    // Manual impl: `derive(Clone)` would require `T: Clone`.
    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Send, failing only when all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// Receiving half.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message or disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Block until a message, a disconnect, or the timeout elapses.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Blocking iterator until disconnect.
        pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
            self.0.iter()
        }
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert_eq!(rx.recv().unwrap(), 1);
            assert_eq!(rx.try_recv().unwrap(), 2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
            drop(tx);
            drop(tx2);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Disconnected)));
        }

        #[test]
        fn iter_drains_until_disconnect() {
            let (tx, rx) = unbounded();
            std::thread::spawn(move || {
                for i in 0..5 {
                    tx.send(i).unwrap();
                }
            });
            let got: Vec<i32> = rx.iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
        }
    }
}
