//! Offline shim for `criterion 0.5`: API-compatible with the dcape
//! bench targets, but measures a single wall-clock pass per benchmark
//! instead of doing statistical sampling.
//!
//! Bench binaries built from this shim run their bodies only when
//! invoked with `--bench` (as `cargo bench` does); under `cargo test`
//! they exit immediately, matching the real crate's behavior.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Throughput annotation (recorded, displayed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timing run; the shim times one
/// batch regardless.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
}

/// A benchmark's display id.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter`/`iter_batched` time the routine.
pub struct Bencher {
    iters: u64,
    last_nanos: u128,
}

impl Bencher {
    /// Time `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.last_nanos = start.elapsed().as_nanos() / self.iters as u128;
    }

    /// Time `routine` on inputs produced by `setup`; setup cost is
    /// excluded from the timing.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = 0u128;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.last_nanos = total / self.iters as u128;
    }
}

/// Top-level benchmark driver (subset of `criterion::Criterion`).
pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Run bodies only under `cargo bench` (which passes --bench);
        // `cargo test` also executes harness=false bench binaries and
        // must stay fast.
        let enabled = std::env::args().any(|a| a == "--bench");
        Criterion { enabled }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(self.enabled, name, None, f);
        self
    }
}

/// A group of related benchmarks (subset of `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's single pass ignores it.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.enabled, &label, self.throughput, f);
        self
    }

    /// Run a parameterized benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion.enabled, &label, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(enabled: bool, label: &str, tp: Option<Throughput>, mut f: F) {
    if !enabled {
        return;
    }
    let mut bencher = Bencher {
        iters: 1,
        last_nanos: 0,
    };
    f(&mut bencher);
    let per_iter = bencher.last_nanos;
    match tp {
        Some(Throughput::Elements(n)) if per_iter > 0 => println!(
            "bench {label}: {per_iter} ns/iter ({:.0} elem/s)",
            n as f64 / (per_iter as f64 / 1e9)
        ),
        Some(Throughput::Bytes(n)) if per_iter > 0 => println!(
            "bench {label}: {per_iter} ns/iter ({:.0} B/s)",
            n as f64 / (per_iter as f64 / 1e9)
        ),
        _ => println!("bench {label}: {per_iter} ns/iter"),
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_criterion_skips_bodies() {
        // Tests never pass --bench, so bodies must not run.
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1);
        });
        assert!(!ran, "bench body ran without --bench");
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion { enabled: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| n * 2);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
    }
}
