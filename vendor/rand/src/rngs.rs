//! The standard generator of this shim: xoshiro256++.

use crate::{RngCore, SeedableRng};

/// Deterministic xoshiro256++ generator (stands in for `rand::rngs::StdRng`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
                Self::splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let i = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&i));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            acc += f;
        }
        // Mean of 1000 uniform draws is near 0.5.
        assert!((acc / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..2000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((400..600).contains(&hits), "got {hits}");
    }
}
