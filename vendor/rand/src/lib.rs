//! Offline shim for `rand 0.8`: exactly the surface dcape uses.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but with the same
//! determinism guarantee: same seed ⇒ same sequence, forever.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub mod rngs;
pub mod seq;

/// Low-level source of randomness.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from `range` (half-open, `low..high`).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from raw random bits (subset of the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly sampleable over a `Range` (subset of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `range`; panics on an empty range, matching
    /// the real crate.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::Range<Self>,
            ) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling; the modulo bias over a
                // u64 draw is negligible for the spans dcape uses.
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}
