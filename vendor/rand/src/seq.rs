//! Sequence helpers (subset of `rand::seq`).

use crate::{Rng, RngCore, SampleUniform};

/// Slice extensions (subset of `rand::seq::SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, `None` if empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = usize::sample_range(rng, 0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And not (with overwhelming probability) the identity.
        assert_ne!(v, sorted);
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(2);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
