//! Offline shim for `bytes 1.x`: the subset the dcape codec and spill
//! substrate use. `Bytes` is a cheaply-cloneable `Arc<[u8]>` window
//! with the consuming-cursor `Buf` semantics of the real crate.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Read cursor over a byte source (subset of `bytes::Buf`).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The unconsumed bytes.
    fn chunk(&self) -> &[u8];

    /// Consume `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True if any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consume one byte. Panics past the end, like the real crate.
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 past end of buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Consume a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Consume a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Consume exactly `dst.len()` bytes into `dst`.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice past end of buffer"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    fn remaining(&self) -> usize {
        (**self).remaining()
    }
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        *self = &self[cnt..];
    }
}

/// Write sink for bytes (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable, cheaply-cloneable byte buffer (subset of `bytes::Bytes`).
///
/// Reading through [`Buf`] consumes from the front by moving the window
/// start, as in the real crate.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wrap a static slice (copies here — the shim has no vtable trick).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Copy from a slice.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from(bytes.to_vec())
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if nothing remains.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::from(v.to_vec())
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Self::from(b.buf)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of buffer");
        self.start += cnt;
    }
}

/// Growable byte buffer (subset of `bytes::BytesMut`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_traits() {
        let mut w = BytesMut::with_capacity(8);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_slice(b"xy");
        let mut r = w.freeze();
        assert_eq!(r.len(), 15);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert!(!r.has_remaining());
    }

    #[test]
    fn slice_shares_and_windows() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(..1);
        assert_eq!(&s2[..], &[2]);
        assert_eq!(b.len(), 6, "parent untouched");
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn overread_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn equality_is_content_based() {
        let a = Bytes::from(vec![1, 2, 3]).slice(1..);
        let b = Bytes::from(vec![2, 3]);
        assert_eq!(a, b);
    }
}
