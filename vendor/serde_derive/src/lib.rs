//! Offline shim for `serde_derive`: the derives expand to nothing.
//!
//! dcape only *annotates* types with `#[derive(Serialize, Deserialize)]`
//! (for downstream consumers of the library); nothing in the workspace
//! invokes serde serialization itself — the journal and reports use
//! hand-rolled JSON/CSV writers. Empty expansions therefore keep every
//! annotated type compiling without pulling in the real serde stack.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
