//! Offline shim for `serde`: marker traits plus the no-op derives.
//!
//! See `vendor/README.md` for scope and rationale.

// Vendored API shim: exempt from the workspace clippy gate.
#![allow(clippy::all)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
