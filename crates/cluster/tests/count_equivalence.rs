//! Property-based equivalence of count-first and enumerating delivery,
//! and of the threaded runtime against the deterministic sim.
//!
//! Count-first result delivery (span-based `emit_product` with product
//! counting and window-pruned counting) is a pure performance
//! transform: for any workload — windowed or not, skewed or not, with
//! spills and relocations — it must produce the same output counts,
//! the same per-group `P_output`, the same journal counter totals, and
//! counts that agree exactly with the collected-result multiset of the
//! enumerating path, on both the simulated and the threaded runtime.
//!
//! Windowed totals are asserted exactly on the threaded runtime too:
//! window purges run at the watermark-driven horizon (`min(admitted
//! watermark, oldest tuple still buffered at any split)`), so tuples
//! buffered during a relocation always find their join partners alive
//! when they replay, and every sound run — threaded or simulated, fast
//! or slow, under any thread schedule — emits exactly the reference
//! windowed join multiset.

use proptest::prelude::*;

use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

/// Proptest case count, overridable for CI stress runs: an explicit
/// `cases:` in `ProptestConfig` takes precedence over the
/// `PROPTEST_CASES` env var, so read the var ourselves.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// When `DCAPE_JOURNAL_DUMP` names a directory, write a run's journal
/// there as JSONL (CI uploads the directory as an artifact on failure).
fn dump_journal(name: &str, entries: &[dcape_metrics::journal::JournalEntry]) {
    if let Ok(dir) = std::env::var("DCAPE_JOURNAL_DUMP") {
        let path =
            std::path::Path::new(&dir).join(format!("{name}-pid{}.jsonl", std::process::id()));
        if let Err(e) = dcape_metrics::report::write_journal_jsonl(&path, entries) {
            eprintln!("journal dump to {} failed: {e}", path.display());
        }
    }
}

/// The knobs a single equivalence case explores.
#[derive(Debug, Clone)]
struct CaseParams {
    seed: u64,
    num_partitions: u32,
    tuple_range: u64,
    payload_pad: u32,
    skewed: bool,
    tight_memory: bool,
    active_disk: bool,
    num_engines: usize,
    /// Sliding window in virtual ms (`None` = unwindowed). Small
    /// windows exercise the straddling-span fallback, large ones the
    /// everything-fits product shortcut.
    window_ms: Option<u64>,
}

fn case_strategy() -> impl Strategy<Value = CaseParams> {
    (
        (0u64..1_000, 8u32..33, 200u64..2401, 0u32..301),
        (any::<bool>(), any::<bool>(), any::<bool>(), 2usize..4),
        (any::<bool>(), 200u64..120_000),
    )
        .prop_map(
            |(
                (seed, num_partitions, tuple_range, payload_pad),
                (skewed, tight_memory, active_disk, num_engines),
                (windowed, window_raw),
            )| CaseParams {
                seed,
                num_partitions,
                tuple_range,
                payload_pad,
                skewed,
                tight_memory,
                active_disk,
                num_engines,
                window_ms: windowed.then_some(window_raw),
            },
        )
}

fn build_config(p: &CaseParams, collect: bool) -> SimConfig {
    let mut spec = StreamSetSpec::uniform(
        p.num_partitions,
        p.tuple_range,
        1,
        VirtualDuration::from_millis(30),
    )
    .with_payload_pad(p.payload_pad)
    .with_seed(p.seed);
    if p.skewed {
        let group_a: Vec<PartitionId> = (0..p.num_partitions / 4).map(PartitionId).collect();
        spec = spec.with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 8.0,
            period: VirtualDuration::from_mins(1),
        });
    }
    let mut engine = if p.tight_memory {
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4)
    } else {
        EngineConfig::three_way(1 << 30, 1 << 29)
    };
    if let Some(w) = p.window_ms {
        engine.join = engine.join.with_window(VirtualDuration::from_millis(w));
    }
    let strategy = if p.active_disk {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        }
    } else {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    let mut cfg = SimConfig::new(p.num_engines, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    if p.num_engines == 2 {
        cfg = cfg.with_placement(PlacementSpec::Fractions(vec![0.7, 0.3]));
    }
    if collect {
        cfg = cfg.collecting();
    }
    cfg
}

/// Per-engine `(pid, bytes, P_output)` triples of every resident group —
/// the fast paths must leave the productivity bookkeeping untouched.
type GroupOutputs = Vec<Vec<(PartitionId, usize, u64)>>;

fn group_outputs(driver: &SimDriver) -> GroupOutputs {
    driver
        .engines()
        .iter()
        .map(|e| {
            e.join()
                .group_stats()
                .iter()
                .map(|g| (g.pid, g.bytes, g.output))
                .collect()
        })
        .collect()
}

/// Run the sim to the deadline, returning the report plus the per-group
/// stats observed at the deadline (before cleanup).
fn run_sim(
    p: &CaseParams,
    count_first: bool,
    collect: bool,
    deadline: VirtualTime,
) -> (SimReport, GroupOutputs) {
    let cfg = build_config(p, collect).with_count_first(count_first);
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let groups = group_outputs(&driver);
    (driver.finish().unwrap(), groups)
}

proptest! {
    // Each case runs the full simulation three times; keep the default
    // count small (CI stress runs raise it via PROPTEST_CASES).
    #![proptest_config(ProptestConfig {
        cases: cases(8),
        ..ProptestConfig::default()
    })]

    /// For arbitrary workloads the count-first sim run is
    /// observationally identical to the enumerating sim run: same
    /// per-phase counts, same per-group `P_output`, same adaptation
    /// history, same journal counter totals — and both agree with the
    /// collected-result multiset of the enumerating path.
    #[test]
    fn sim_count_first_equals_enumeration(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let (fast, fast_groups) = run_sim(&p, true, false, deadline);
        let (slow, slow_groups) = run_sim(&p, false, false, deadline);
        let (collected, _) = run_sim(&p, false, true, deadline);

        prop_assert_eq!(fast.runtime_output, slow.runtime_output);
        prop_assert_eq!(fast.cleanup_output, slow.cleanup_output);
        prop_assert_eq!(fast_groups, slow_groups, "per-group P_output diverges");
        prop_assert_eq!(fast.relocations.len(), slow.relocations.len());
        prop_assert_eq!(&fast.spill_counts, &slow.spill_counts);
        prop_assert_eq!(fast.force_spills, slow.force_spills);

        // The counts must equal the materialized result multiset sizes
        // of the enumerating path, phase by phase.
        prop_assert_eq!(
            fast.runtime_output,
            collected.runtime_results.as_ref().unwrap().len() as u64,
            "runtime count vs collected multiset"
        );
        prop_assert_eq!(
            fast.cleanup_output,
            collected.cleanup_results.as_ref().unwrap().len() as u64,
            "cleanup count vs collected multiset"
        );

        // Journal counter totals must match exactly.
        let f = fast.journal_counters;
        let s = slow.journal_counters;
        prop_assert_eq!(f.tuples_routed, s.tuples_routed);
        prop_assert_eq!(f.spill_bytes, s.spill_bytes);
        prop_assert_eq!(f.relocation_bytes, s.relocation_bytes);
        prop_assert_eq!(f.buffered_in_flight, 0);
        prop_assert_eq!(s.buffered_in_flight, 0);
    }
}

proptest! {
    // Threaded runs spin up real threads; keep the default count
    // smaller still (CI stress runs raise it via PROPTEST_CASES).
    #![proptest_config(ProptestConfig {
        cases: cases(4),
        ..ProptestConfig::default()
    })]

    /// Threaded runtime: adaptation *timing* is scheduler-dependent,
    /// but totals are not — windowed or unwindowed, the count-first
    /// and enumerating sink arms and the deterministic sim must all
    /// produce exactly the same total output. Watermark-driven purging
    /// is what makes the windowed half of this claim hold: the purge
    /// horizon is tied to data progress, so no thread schedule can
    /// purge the partners of a tuple buffered during a relocation.
    #[test]
    fn threaded_count_first_preserves_totals(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let fast =
            run_threaded(build_config(&p, false).with_count_first(true), deadline).unwrap();
        let slow =
            run_threaded(build_config(&p, false).with_count_first(false), deadline).unwrap();

        dump_journal("threaded_count_first_preserves_totals.fast", &fast.journal);
        dump_journal("threaded_count_first_preserves_totals.slow", &slow.journal);
        prop_assert_eq!(fast.total_output(), slow.total_output());
        prop_assert_eq!(
            fast.journal_counters.tuples_routed,
            slow.journal_counters.tuples_routed
        );
        prop_assert_eq!(fast.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(slow.journal_counters.buffered_in_flight, 0);

        let (sim, _) = run_sim(&p, true, false, deadline);
        prop_assert_eq!(fast.total_output(), sim.total_output());
    }

    /// Windowed threaded equivalence, exact: both sink arms with a
    /// sliding window always configured, asserted against each other,
    /// against the deterministic sim, and against the collected result
    /// multiset of the enumerating sim — the converted form of what
    /// used to be a smoke-only pass.
    #[test]
    fn threaded_windowed_totals_are_exact(p in case_strategy()) {
        let p = CaseParams {
            window_ms: Some(p.window_ms.unwrap_or(45_000)),
            ..p
        };
        let deadline = VirtualTime::from_mins(2);
        let fast =
            run_threaded(build_config(&p, false).with_count_first(true), deadline).unwrap();
        let slow =
            run_threaded(build_config(&p, false).with_count_first(false), deadline).unwrap();
        dump_journal("threaded_windowed_totals_are_exact.fast", &fast.journal);
        dump_journal("threaded_windowed_totals_are_exact.slow", &slow.journal);

        prop_assert_eq!(
            fast.journal_counters.tuples_routed,
            slow.journal_counters.tuples_routed
        );
        prop_assert_eq!(fast.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(slow.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(fast.total_output(), slow.total_output());

        let (sim, _) = run_sim(&p, true, false, deadline);
        let (collected, _) = run_sim(&p, false, true, deadline);
        prop_assert_eq!(fast.total_output(), sim.total_output());
        prop_assert_eq!(
            fast.total_output(),
            collected.runtime_results.as_ref().unwrap().len() as u64
                + collected.cleanup_results.as_ref().unwrap().len() as u64,
            "threaded windowed total vs collected multiset"
        );
    }
}

/// Minimized regression for the replay-after-purge race: a windowed,
/// skewed, tight-memory, three-engine workload (shape found by the
/// property above) with fat payloads and a short stats cadence. Fat
/// state transfers make `InstallStates` and the backlog drain slow
/// while the unthrottled driver keeps advancing virtual time, so
/// clock ticks pile up in the receiving engine's inbox *between* the
/// installed state and the replay of the tuples buffered during the
/// pause. Before watermark-driven purging, those ticks purged the
/// replayed tuples' freshly installed join partners — totals were
/// schedule-dependent, disagreeing with the deterministic sim and
/// across runs of the same workload. With the purge horizon held back
/// to the oldest buffered tuple, four concurrent copies of the
/// workload all produce exactly the sim's total, under every schedule.
#[test]
fn windowed_relocation_replay_matches_sim_exactly() {
    for seed in [500u64, 501, 502] {
        let p = CaseParams {
            seed,
            num_partitions: 29,
            tuple_range: 1754,
            payload_pad: 4096,
            skewed: true,
            tight_memory: true,
            active_disk: false,
            num_engines: 3,
            window_ms: Some(45_000),
        };
        let deadline = VirtualTime::from_mins(2);
        let mk = || {
            build_config(&p, false)
                .with_count_first(true)
                .with_stats_interval(VirtualDuration::from_secs(5))
        };
        let mut sim_driver = SimDriver::new(mk()).unwrap();
        sim_driver.run_until(deadline).unwrap();
        let sim = sim_driver.finish().unwrap();
        let runs: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cfg = mk();
                    s.spawn(move || run_threaded(cfg, deadline).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        dump_journal(
            &format!("windowed_relocation_replay_seed{seed}"),
            &runs[0].journal,
        );
        assert!(
            sim.relocations.len() + runs.iter().map(|r| r.relocations as usize).sum::<usize>() > 0,
            "seed {seed} must exercise relocation"
        );
        for (i, threaded) in runs.iter().enumerate() {
            assert_eq!(
                threaded.total_output(),
                sim.total_output(),
                "seed {seed} run {i}: threaded windowed total diverged from sim"
            );
            assert_eq!(threaded.journal_counters.buffered_in_flight, 0);
        }
    }
}

/// Quiesce-path drain: with a window configured and a deadline short
/// enough that relocations are regularly still in flight at shutdown,
/// the quiesce loop must finish the round — replaying every buffered
/// tuple and releasing the held watermark — before cleanup starts. No
/// tuple may remain stranded (`buffered_in_flight == 0`) and the total
/// must still match the deterministic sim exactly.
#[test]
fn quiesce_drains_buffer_and_releases_watermark() {
    let p = CaseParams {
        seed: 3,
        num_partitions: 16,
        tuple_range: 400,
        payload_pad: 120,
        skewed: true,
        tight_memory: true,
        active_disk: false,
        num_engines: 2,
        window_ms: Some(10_000),
    };
    // Deadlines just past the stats cadence land shutdown close to the
    // relocation window of each round.
    for deadline_s in [95u64, 125, 155] {
        let deadline = VirtualTime::from_secs(deadline_s);
        let threaded = run_threaded(build_config(&p, false), deadline).unwrap();
        let mut driver = SimDriver::new(build_config(&p, false)).unwrap();
        driver.run_until(deadline).unwrap();
        let sim = driver.finish().unwrap();
        assert_eq!(
            threaded.journal_counters.buffered_in_flight, 0,
            "deadline {deadline_s}s: tuples stranded in split buffers after quiesce"
        );
        assert_eq!(
            threaded.total_output(),
            sim.total_output(),
            "deadline {deadline_s}s: quiesced threaded total diverged from sim"
        );
    }
}
