//! Property-based equivalence of count-first and enumerating delivery.
//!
//! Count-first result delivery (span-based `emit_product` with product
//! counting and window-pruned counting) is a pure performance
//! transform: for any workload — windowed or not, skewed or not, with
//! spills and relocations — it must produce the same output counts,
//! the same per-group `P_output`, the same journal counter totals, and
//! counts that agree exactly with the collected-result multiset of the
//! enumerating path, on both the simulated and the threaded runtime.

use proptest::prelude::*;

use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

/// The knobs a single equivalence case explores.
#[derive(Debug, Clone)]
struct CaseParams {
    seed: u64,
    num_partitions: u32,
    tuple_range: u64,
    payload_pad: u32,
    skewed: bool,
    tight_memory: bool,
    active_disk: bool,
    num_engines: usize,
    /// Sliding window in virtual ms (`None` = unwindowed). Small
    /// windows exercise the straddling-span fallback, large ones the
    /// everything-fits product shortcut.
    window_ms: Option<u64>,
}

fn case_strategy() -> impl Strategy<Value = CaseParams> {
    (
        (0u64..1_000, 8u32..33, 200u64..2401, 0u32..301),
        (any::<bool>(), any::<bool>(), any::<bool>(), 2usize..4),
        (any::<bool>(), 200u64..120_000),
    )
        .prop_map(
            |(
                (seed, num_partitions, tuple_range, payload_pad),
                (skewed, tight_memory, active_disk, num_engines),
                (windowed, window_raw),
            )| CaseParams {
                seed,
                num_partitions,
                tuple_range,
                payload_pad,
                skewed,
                tight_memory,
                active_disk,
                num_engines,
                window_ms: windowed.then_some(window_raw),
            },
        )
}

fn build_config(p: &CaseParams, collect: bool) -> SimConfig {
    let mut spec = StreamSetSpec::uniform(
        p.num_partitions,
        p.tuple_range,
        1,
        VirtualDuration::from_millis(30),
    )
    .with_payload_pad(p.payload_pad)
    .with_seed(p.seed);
    if p.skewed {
        let group_a: Vec<PartitionId> = (0..p.num_partitions / 4).map(PartitionId).collect();
        spec = spec.with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 8.0,
            period: VirtualDuration::from_mins(1),
        });
    }
    let mut engine = if p.tight_memory {
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4)
    } else {
        EngineConfig::three_way(1 << 30, 1 << 29)
    };
    if let Some(w) = p.window_ms {
        engine.join = engine.join.with_window(VirtualDuration::from_millis(w));
    }
    let strategy = if p.active_disk {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        }
    } else {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    let mut cfg = SimConfig::new(p.num_engines, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    if p.num_engines == 2 {
        cfg = cfg.with_placement(PlacementSpec::Fractions(vec![0.7, 0.3]));
    }
    if collect {
        cfg = cfg.collecting();
    }
    cfg
}

/// Per-engine `(pid, bytes, P_output)` triples of every resident group —
/// the fast paths must leave the productivity bookkeeping untouched.
type GroupOutputs = Vec<Vec<(PartitionId, usize, u64)>>;

fn group_outputs(driver: &SimDriver) -> GroupOutputs {
    driver
        .engines()
        .iter()
        .map(|e| {
            e.join()
                .group_stats()
                .iter()
                .map(|g| (g.pid, g.bytes, g.output))
                .collect()
        })
        .collect()
}

/// Run the sim to the deadline, returning the report plus the per-group
/// stats observed at the deadline (before cleanup).
fn run_sim(
    p: &CaseParams,
    count_first: bool,
    collect: bool,
    deadline: VirtualTime,
) -> (SimReport, GroupOutputs) {
    let cfg = build_config(p, collect).with_count_first(count_first);
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let groups = group_outputs(&driver);
    (driver.finish().unwrap(), groups)
}

proptest! {
    // Each case runs the full simulation three times; keep the count
    // small.
    #![proptest_config(ProptestConfig {
        cases: 8,
        ..ProptestConfig::default()
    })]

    /// For arbitrary workloads the count-first sim run is
    /// observationally identical to the enumerating sim run: same
    /// per-phase counts, same per-group `P_output`, same adaptation
    /// history, same journal counter totals — and both agree with the
    /// collected-result multiset of the enumerating path.
    #[test]
    fn sim_count_first_equals_enumeration(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let (fast, fast_groups) = run_sim(&p, true, false, deadline);
        let (slow, slow_groups) = run_sim(&p, false, false, deadline);
        let (collected, _) = run_sim(&p, false, true, deadline);

        prop_assert_eq!(fast.runtime_output, slow.runtime_output);
        prop_assert_eq!(fast.cleanup_output, slow.cleanup_output);
        prop_assert_eq!(fast_groups, slow_groups, "per-group P_output diverges");
        prop_assert_eq!(fast.relocations.len(), slow.relocations.len());
        prop_assert_eq!(&fast.spill_counts, &slow.spill_counts);
        prop_assert_eq!(fast.force_spills, slow.force_spills);

        // The counts must equal the materialized result multiset sizes
        // of the enumerating path, phase by phase.
        prop_assert_eq!(
            fast.runtime_output,
            collected.runtime_results.as_ref().unwrap().len() as u64,
            "runtime count vs collected multiset"
        );
        prop_assert_eq!(
            fast.cleanup_output,
            collected.cleanup_results.as_ref().unwrap().len() as u64,
            "cleanup count vs collected multiset"
        );

        // Journal counter totals must match exactly.
        let f = fast.journal_counters;
        let s = slow.journal_counters;
        prop_assert_eq!(f.tuples_routed, s.tuples_routed);
        prop_assert_eq!(f.spill_bytes, s.spill_bytes);
        prop_assert_eq!(f.relocation_bytes, s.relocation_bytes);
        prop_assert_eq!(f.buffered_in_flight, 0);
        prop_assert_eq!(s.buffered_in_flight, 0);
    }
}

proptest! {
    // Threaded runs spin up real threads; keep the count smaller still.
    #![proptest_config(ProptestConfig {
        cases: 4,
        ..ProptestConfig::default()
    })]

    /// Threaded runtime: adaptation timing is scheduler-dependent, so
    /// compare the invariants — total results and routed-tuple totals
    /// match between the count-first and enumerating engine sinks, and
    /// both match the deterministic sim.
    ///
    /// Exact totals are only asserted for unwindowed cases: windowed
    /// threaded runs have a pre-existing (seed-reproducible,
    /// count-first-independent) race where tuples buffered during a
    /// relocation replay after later ticks whose purge already dropped
    /// their window partners, making the total timing-dependent.
    /// Windowed threaded runs still execute both sink arms end-to-end;
    /// exact windowed equivalence is proven on the deterministic sim
    /// above, down to the result multiset.
    #[test]
    fn threaded_count_first_preserves_totals(p in case_strategy()) {
        let p = CaseParams { window_ms: None, ..p };
        let deadline = VirtualTime::from_mins(3);
        let fast =
            run_threaded(build_config(&p, false).with_count_first(true), deadline).unwrap();
        let slow =
            run_threaded(build_config(&p, false).with_count_first(false), deadline).unwrap();

        prop_assert_eq!(fast.total_output(), slow.total_output());
        prop_assert_eq!(
            fast.journal_counters.tuples_routed,
            slow.journal_counters.tuples_routed
        );
        prop_assert_eq!(fast.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(slow.journal_counters.buffered_in_flight, 0);

        let (sim, _) = run_sim(&p, true, false, deadline);
        prop_assert_eq!(fast.total_output(), sim.total_output());
    }

    /// Windowed threaded smoke: both sink arms run end-to-end with a
    /// sliding window (routing totals are generator-driven and must
    /// match; output totals are timing-dependent — see above).
    #[test]
    fn threaded_windowed_arms_run_clean(p in case_strategy()) {
        let p = CaseParams {
            window_ms: Some(p.window_ms.unwrap_or(45_000)),
            ..p
        };
        let deadline = VirtualTime::from_mins(2);
        let fast =
            run_threaded(build_config(&p, false).with_count_first(true), deadline).unwrap();
        let slow =
            run_threaded(build_config(&p, false).with_count_first(false), deadline).unwrap();
        prop_assert_eq!(
            fast.journal_counters.tuples_routed,
            slow.journal_counters.tuples_routed
        );
        prop_assert_eq!(fast.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(slow.journal_counters.buffered_in_flight, 0);
    }
}
