//! Membership safety of the placement map and the coordinator's
//! elastic lifecycle: under any interleaving of engine joins, fences
//! (drains), relocations, and aborts, every partition keeps exactly one
//! owner, no remap ever targets a fenced engine, and a drain always
//! runs to termination — by relocation rounds when they complete, by
//! forced spill when they keep aborting.

use proptest::prelude::*;

use dcape_cluster::coordinator::{DrainStep, EngineState, GlobalCoordinator};
use dcape_cluster::placement::{PlacementMap, PlacementSpec};
use dcape_cluster::relocation::Action;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;

const PARTS: u32 = 16;

fn fresh_map(engines: usize) -> PlacementMap {
    PlacementMap::new(&PlacementSpec::RoundRobin, PARTS, engines).unwrap()
}

fn elastic_gc(initial: usize, capacity: usize) -> GlobalCoordinator {
    let mut gc = GlobalCoordinator::new(&StrategyConfig::NoAdaptation);
    gc.init_membership(initial, capacity);
    gc
}

// ---- placement map unit tests ------------------------------------------

#[test]
fn add_engine_assigns_dense_ids_that_own_nothing() {
    let mut map = fresh_map(2);
    let joined = map.add_engine().unwrap();
    assert_eq!(joined, EngineId(2));
    assert_eq!(map.num_engines(), 3);
    assert!(map.partitions_of(joined).is_empty());
    assert!(!map.is_fenced(joined));
    // Ids are dense and never reused.
    assert_eq!(map.add_engine().unwrap(), EngineId(3));
}

#[test]
fn remap_to_fenced_engine_is_rejected_without_mutation() {
    let mut map = fresh_map(3);
    map.fence_engine(EngineId(2)).unwrap();
    let pid = map.partitions_of(EngineId(0))[0];
    map.pause(&[pid]).unwrap();
    let version = map.version();

    let err = map.remap_and_release(&[pid], EngineId(2));
    assert!(err.is_err(), "remap must never target a fenced engine");
    // The rejection left the map untouched: still paused, still owned
    // by the original engine, version unchanged.
    assert_eq!(map.owner(pid).unwrap(), EngineId(0));
    assert_eq!(map.paused_partitions(), vec![pid]);
    assert_eq!(map.version(), version);

    // The abort path still releases the pause back to the old owner.
    map.release_paused(&[pid]).unwrap();
    assert_eq!(map.owner(pid).unwrap(), EngineId(0));
    assert!(map.paused_partitions().is_empty());
}

#[test]
fn fencing_is_idempotent_and_unknown_engines_read_fenced() {
    let mut map = fresh_map(2);
    map.fence_engine(EngineId(1)).unwrap();
    let version = map.version();
    map.fence_engine(EngineId(1)).unwrap();
    assert_eq!(map.version(), version, "re-fencing must be a no-op");
    assert_eq!(map.unfenced_engines(), vec![EngineId(0)]);
    assert!(map.fence_engine(EngineId(9)).is_err());
    assert!(
        map.is_fenced(EngineId(9)),
        "engines that were never admitted must read as fenced"
    );
}

#[test]
fn fenced_engine_can_still_shed_its_partitions() {
    let mut map = fresh_map(2);
    map.fence_engine(EngineId(1)).unwrap();
    let owned = map.partitions_of(EngineId(1));
    assert!(!owned.is_empty());
    map.pause(&owned).unwrap();
    map.remap_and_release(&owned, EngineId(0)).unwrap();
    assert!(
        map.partitions_of(EngineId(1)).is_empty(),
        "a draining (fenced) engine sheds state via ordinary remaps"
    );
    assert_eq!(map.distribution(2), vec![PARTS as usize, 0]);
}

// ---- membership interleaving property ----------------------------------

/// One abstract membership/relocation op.
#[derive(Debug, Clone)]
enum Op {
    /// Admit a new engine.
    Add,
    /// Fence engine `index % num_engines` (start of its drain).
    Fence(u8),
    /// Pause partition `pid % PARTS` and remap it to engine
    /// `target % num_engines` — expected to fail iff the target is
    /// fenced at that moment.
    Relocate { pid: u8, target: u8 },
    /// Pause partition `pid % PARTS` and abort the round (release
    /// without remap).
    Abort { pid: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..1).prop_map(|_| Op::Add),
        any::<u8>().prop_map(Op::Fence),
        (any::<u8>(), any::<u8>()).prop_map(|(pid, target)| Op::Relocate { pid, target }),
        (any::<u8>(), any::<u8>()).prop_map(|(pid, target)| Op::Relocate { pid, target }),
        any::<u8>().prop_map(|pid| Op::Abort { pid }),
    ]
}

proptest! {
    /// After ANY interleaving of add/fence/relocate/abort: every
    /// partition has exactly one owner drawn from the admitted set, a
    /// successful remap never lands on an engine that was fenced at
    /// remap time, and a fenced engine's holdings never grow.
    #[test]
    fn membership_interleavings_keep_exactly_one_owner(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let mut map = fresh_map(2);
        for op in ops {
            let engines = map.num_engines();
            match op {
                Op::Add => {
                    let id = map.add_engine().unwrap();
                    prop_assert_eq!(id.index(), engines, "ids must stay dense");
                    prop_assert!(map.partitions_of(id).is_empty());
                }
                Op::Fence(i) => {
                    let e = EngineId((i as usize % engines) as u16);
                    map.fence_engine(e).unwrap();
                    prop_assert!(map.is_fenced(e));
                }
                Op::Relocate { pid, target } => {
                    let pid = PartitionId(pid as u32 % PARTS);
                    let target = EngineId((target as usize % engines) as u16);
                    let owner_before = map.owner(pid).unwrap();
                    let before = map.partitions_of(target).len();
                    map.pause(&[pid]).unwrap();
                    match map.remap_and_release(&[pid], target) {
                        Ok(_) => {
                            prop_assert!(!map.is_fenced(target),
                                "remap succeeded onto fenced {}", target);
                            prop_assert_eq!(map.owner(pid).unwrap(), target);
                            prop_assert!(map.partitions_of(target).len() >= before);
                        }
                        Err(_) => {
                            prop_assert!(map.is_fenced(target),
                                "remap to unfenced {} must succeed", target);
                            // Rejected: ownership unchanged, pause must
                            // be released by the abort path.
                            prop_assert_eq!(map.owner(pid).unwrap(), owner_before);
                            map.release_paused(&[pid]).unwrap();
                        }
                    }
                }
                Op::Abort { pid } => {
                    let pid = PartitionId(pid as u32 % PARTS);
                    let owner_before = map.owner(pid).unwrap();
                    map.pause(&[pid]).unwrap();
                    map.release_paused(&[pid]).unwrap();
                    prop_assert_eq!(map.owner(pid).unwrap(), owner_before,
                        "an aborted round must not change ownership");
                }
            }
            // Exactly-one-owner: every partition resolves to exactly
            // one admitted engine, and the per-engine holdings cover
            // the partition space exactly once.
            let total: usize = (0..map.num_engines())
                .map(|e| map.partitions_of(EngineId(e as u16)).len())
                .sum();
            prop_assert_eq!(total, PARTS as usize);
            for p in 0..PARTS {
                let owner = map.owner(PartitionId(p)).unwrap();
                prop_assert!(owner.index() < map.num_engines());
            }
            prop_assert!(map.paused_partitions().is_empty());
        }
    }
}

// ---- coordinator lifecycle ---------------------------------------------

#[test]
fn admit_then_join_ready_makes_an_engine_active_once() {
    let t = VirtualTime::ZERO;
    let mut gc = elastic_gc(2, 3);
    assert_eq!(gc.engine_state(EngineId(2)), EngineState::NotJoined);
    assert_eq!(gc.active_engines(), vec![EngineId(0), EngineId(1)]);

    gc.admit_engine(EngineId(2), t).unwrap();
    assert_eq!(gc.engine_state(EngineId(2)), EngineState::Active);
    assert_eq!(
        gc.active_engines(),
        vec![EngineId(0), EngineId(1), EngineId(2)]
    );
    // Double admission (e.g. a replayed scale event) is a protocol error.
    assert!(gc.admit_engine(EngineId(2), t).is_err());
    // A crash-restarted joiner resends JoinReady; the duplicate is
    // absorbed.
    gc.on_join_ready(EngineId(2), t);
    gc.on_join_ready(EngineId(2), t);
    assert_eq!(gc.engine_state(EngineId(2)), EngineState::Active);
}

#[test]
fn drain_refuses_the_last_engine_and_concurrent_drains() {
    let t = VirtualTime::ZERO;
    let mut gc = elastic_gc(2, 2);
    assert!(gc.request_drain(EngineId(1), t).unwrap());
    assert!(
        gc.request_drain(EngineId(0), t).is_err(),
        "only one drain at a time"
    );

    let mut solo = elastic_gc(1, 1);
    assert!(
        solo.request_drain(EngineId(0), t).is_err(),
        "the last active engine must never drain"
    );

    let mut legacy = GlobalCoordinator::new(&StrategyConfig::NoAdaptation);
    assert!(
        legacy.request_drain(EngineId(0), t).is_err(),
        "drain requires elastic membership"
    );
}

/// A drain whose relocation rounds complete terminates: each round
/// shrinks the resident set, resident 0 finalizes the remap, and the
/// cleanup hand-off retires the engine.
#[test]
fn drain_terminates_when_rounds_complete() {
    let t = VirtualTime::ZERO;
    let mut gc = elastic_gc(2, 2);
    assert!(gc.request_drain(EngineId(1), t).unwrap());
    assert_eq!(gc.draining_engine(), Some(EngineId(1)));

    let mut resident = 4096u64;
    let mut steps = 0;
    while resident > 0 {
        steps += 1;
        assert!(steps < 16, "drain must terminate");
        match gc.on_drain_state(EngineId(1), resident, t).unwrap() {
            DrainStep::Relocate {
                round,
                sender,
                receiver,
                amount,
            } => {
                assert_eq!(sender, EngineId(1));
                assert_eq!(receiver, EngineId(0), "only unfenced receiver");
                assert_eq!(amount, resident, "a drain round asks for everything");
                // Sender answers Ptv with the partitions it picked
                // (step 2), receiver acks the transfer (step 6).
                let action = gc
                    .on_ptv(EngineId(1), round, vec![PartitionId(0)], t)
                    .unwrap();
                assert!(matches!(action, Some(Action::PauseAndTransfer { .. })));
                let action = gc.on_transfer_ack(EngineId(0), round, t).unwrap();
                assert!(matches!(action, Some(Action::RemapAndResume { .. })));
                resident /= 2;
            }
            other => panic!("expected a drain relocation round, got {other:?}"),
        }
    }
    match gc.on_drain_state(EngineId(1), 0, t).unwrap() {
        DrainStep::FinalizeRemap { engine, receiver } => {
            assert_eq!(engine, EngineId(1));
            assert_eq!(receiver, EngineId(0));
        }
        other => panic!("resident 0 must finalize, got {other:?}"),
    }
    gc.drain_finalized(EngineId(1), 0, t);
    assert_eq!(gc.engine_state(EngineId(1)), EngineState::DrainCleanup);
    assert!(gc.draining_engine().is_none());
    let moves = gc.finish_drain(EngineId(1), t);
    assert!(moves >= 1, "completed drain rounds count as moves");
    assert_eq!(gc.engine_state(EngineId(1)), EngineState::Drained);
    assert!(!gc.drain_in_progress());
    assert_eq!(gc.active_engines(), vec![EngineId(0)]);
}

/// A drain whose relocation rounds keep aborting still terminates: the
/// abort ladder degrades it to forced spill, which always makes
/// progress toward resident 0.
#[test]
fn drain_terminates_by_forced_spill_when_rounds_keep_aborting() {
    let t = VirtualTime::ZERO;
    let mut gc = elastic_gc(2, 2);
    assert!(gc.request_drain(EngineId(1), t).unwrap());

    // Three consecutive aborted drain rounds (empty Ptv → abort).
    for _ in 0..3 {
        let DrainStep::Relocate { round, .. } = gc.on_drain_state(EngineId(1), 4096, t).unwrap()
        else {
            panic!("expected a drain round before degradation");
        };
        let action = gc.on_ptv(EngineId(1), round, vec![], t).unwrap();
        assert!(matches!(action, Some(Action::Abort)));
    }
    // The ladder is exhausted: every further report degrades to a
    // forced spill of everything.
    match gc.on_drain_state(EngineId(1), 4096, t).unwrap() {
        DrainStep::ForceSpill { engine, amount } => {
            assert_eq!(engine, EngineId(1));
            assert_eq!(amount, u64::MAX);
        }
        other => panic!("exhausted abort ladder must force-spill, got {other:?}"),
    }
    // Spilling empties the store; the drain finalizes as usual.
    assert!(matches!(
        gc.on_drain_state(EngineId(1), 0, t).unwrap(),
        DrainStep::FinalizeRemap { .. }
    ));
    gc.drain_finalized(EngineId(1), 3, t);
    gc.finish_drain(EngineId(1), t);
    assert_eq!(gc.engine_state(EngineId(1)), EngineState::Drained);
    assert!(!gc.drain_in_progress());
}

/// Reports from an engine that is not the draining one (stale or
/// confused worker) are absorbed as warnings, never acted on.
#[test]
fn stale_drain_state_is_ignored() {
    let t = VirtualTime::ZERO;
    let mut gc = elastic_gc(3, 3);
    assert!(gc.request_drain(EngineId(2), t).unwrap());
    assert!(matches!(
        gc.on_drain_state(EngineId(0), 777, t).unwrap(),
        DrainStep::Wait
    ));
    assert_eq!(gc.draining_engine(), Some(EngineId(2)));
}
