//! End-to-end checks of the adaptation-event journal.
//!
//! A run with adaptation enabled must leave an auditable trail: every
//! completed relocation shows all 8 protocol steps in order, every
//! spill decision is paired with cleanup events for the same partition
//! groups, and the JSON-lines export holds one object per event.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_metrics::journal::{AdaptEvent, JournalEntry, SpillTrigger};
use dcape_metrics::journal_to_jsonl;
use dcape_streamgen::{ArrivalPattern, ClassAssignment, PartitionClass, StreamSetSpec};

fn small_workload(seed: u64) -> StreamSetSpec {
    StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(seed)
}

/// Steps of one relocation round, in merged-timeline order.
fn steps_of_round(journal: &[JournalEntry], round: u64) -> Vec<u8> {
    journal
        .iter()
        .filter_map(|e| match &e.event {
            AdaptEvent::RelocationStep { round: r, step, .. } if *r == round => Some(*step),
            _ => None,
        })
        .collect()
}

fn relocation_rounds(journal: &[JournalEntry]) -> Vec<u64> {
    let mut rounds: Vec<u64> = journal
        .iter()
        .filter_map(|e| match &e.event {
            AdaptEvent::RelocationStep { round, .. } => Some(*round),
            _ => None,
        })
        .collect();
    rounds.sort_unstable();
    rounds.dedup();
    rounds
}

fn skewed_relocation_report(deadline: VirtualTime) -> SimReport {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    let spec = small_workload(23).with_pattern(ArrivalPattern::AlternatingSkew {
        group_a,
        ratio: 10.0,
        period: VirtualDuration::from_mins(2),
    });
    // Roomy memory: relocation-only regime.
    let cfg = SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal();
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    driver.finish().unwrap()
}

#[test]
fn sim_relocation_emits_all_eight_steps_in_order() {
    let report = skewed_relocation_report(VirtualTime::from_mins(8));
    assert!(
        !report.relocations.is_empty(),
        "alternating skew must trigger relocations"
    );
    assert!(!report.journal.is_empty());

    let rounds = relocation_rounds(&report.journal);
    assert!(!rounds.is_empty());
    let mut complete = 0usize;
    for round in rounds {
        let steps = steps_of_round(&report.journal, round);
        if steps.len() == 8 {
            assert_eq!(
                steps,
                vec![1, 2, 3, 4, 5, 6, 7, 8],
                "round {round} steps out of order"
            );
            complete += 1;
        } else {
            // An aborted round stops after the (empty) Ptv arrives.
            assert_eq!(steps, vec![1, 2], "round {round}: unexpected partial steps");
        }
    }
    assert_eq!(
        complete,
        report.relocations.len(),
        "every completed relocation must journal a full 8-step sequence"
    );

    // The strategy sampled its decision inputs at each evaluation.
    assert!(report
        .journal
        .iter()
        .any(|e| matches!(e.event, AdaptEvent::StatsSample { .. })));

    // Counters match the run.
    let c = report.journal_counters;
    assert!(c.tuples_routed > 0);
    assert!(c.relocation_bytes > 0);
    assert!(
        c.transfer_bytes > 0,
        "relocations must journal encoded wire volume"
    );
    assert_eq!(c.buffered_in_flight, 0, "gauge must return to zero");
    assert_eq!(c.events_recorded, report.journal.len() as u64);
    assert_eq!(c.events_dropped, 0);
}

#[test]
fn sim_journal_merges_by_virtual_time_and_exports_jsonl() {
    let report = skewed_relocation_report(VirtualTime::from_mins(6));
    // Merged timeline is ordered by virtual time.
    for pair in report.journal.windows(2) {
        assert!(pair[0].at <= pair[1].at, "journal not time-ordered");
    }
    // JSON-lines export: one object per event.
    let jsonl = journal_to_jsonl(&report.journal);
    let lines: Vec<&str> = jsonl.lines().collect();
    assert_eq!(lines.len(), report.journal.len());
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"kind\""));
    }
}

#[test]
fn sim_forced_spill_pairs_decision_with_cleanup_groups() {
    let deadline = VirtualTime::from_mins(5);
    let mut spec = small_workload(37);
    // Productivity gap: half the partitions join 4x, the rest 1x.
    spec.classes = vec![
        PartitionClass {
            assignment: ClassAssignment::Fraction(0.5),
            join_rate: 4,
            tuple_range: 2400,
        },
        PartitionClass {
            assignment: ClassAssignment::Fraction(0.5),
            join_rate: 1,
            tuple_range: 2400,
        },
    ];
    let cfg = SimConfig::new(
        3,
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4),
        spec,
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        },
    )
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal();
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let report = driver.finish().unwrap();
    assert!(report.force_spills > 0, "config must force spills");

    let forced: Vec<&JournalEntry> = report
        .journal
        .iter()
        .filter(|e| {
            matches!(
                e.event,
                AdaptEvent::SpillDecision {
                    trigger: SpillTrigger::Forced,
                    ..
                }
            )
        })
        .collect();
    assert!(
        !forced.is_empty(),
        "forced spills must journal a SpillDecision"
    );

    // Every partition group a spill decision pushed to disk is merged
    // by a later CleanupPhase event for the same group id.
    for entry in &forced {
        let AdaptEvent::SpillDecision { groups, .. } = &entry.event else {
            unreachable!();
        };
        assert!(!groups.is_empty());
        for pid in groups {
            assert!(
                report.journal.iter().any(|e| match &e.event {
                    AdaptEvent::CleanupPhase { group, .. } => group == pid && e.at >= entry.at,
                    _ => false,
                }),
                "spilled group {pid} has no matching cleanup event"
            );
        }
    }

    // Threshold spills are journaled too, announced by memory pressure.
    let threshold_spill = report.journal.iter().find(|e| {
        matches!(
            e.event,
            AdaptEvent::SpillDecision {
                trigger: SpillTrigger::MemoryThreshold,
                ..
            }
        )
    });
    if let Some(spill) = threshold_spill {
        let AdaptEvent::SpillDecision { engine, .. } = &spill.event else {
            unreachable!();
        };
        assert!(
            report.journal.iter().any(|e| match &e.event {
                AdaptEvent::MemoryPressure { engine: p, .. } => p == engine && e.at <= spill.at,
                _ => false,
            }),
            "threshold spill without a preceding memory-pressure event"
        );
    }
    // Byte-volume counters: spills journal both the accounted state
    // volume and the encoded write volume; cleanup reads the segments
    // back; the column-block codec (the default) writes fewer bytes
    // than the state it encodes, so the derived compression ratio is
    // present and > 1.
    let c = report.journal_counters;
    assert!(c.spill_bytes > 0);
    assert!(
        c.spill_bytes_written > 0,
        "spills must journal encoded writes"
    );
    assert!(c.spill_bytes_read > 0, "cleanup must journal encoded reads");
    let ratio = c
        .spill_compression_ratio()
        .expect("written > 0 must derive a ratio");
    assert!(
        ratio > 1.0,
        "column-block codec should compress: ratio {ratio}"
    );
}

#[test]
fn threaded_journal_covers_relocations_and_merges_engine_rings() {
    let deadline = VirtualTime::from_mins(5);
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    let spec = small_workload(77).with_pattern(ArrivalPattern::AlternatingSkew {
        group_a,
        ratio: 10.0,
        period: VirtualDuration::from_mins(2),
    });
    let cfg = SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal();
    let report = run_threaded(cfg, deadline).unwrap();
    assert!(report.relocations > 0, "skew should force relocations");
    assert!(!report.journal.is_empty());
    for pair in report.journal.windows(2) {
        assert!(pair[0].at <= pair[1].at, "merged journal not time-ordered");
    }
    // Every completed round journals every protocol step (cross-thread
    // timestamps may tie, so check presence rather than strict order).
    let mut complete = 0u64;
    for round in relocation_rounds(&report.journal) {
        let mut steps = steps_of_round(&report.journal, round);
        steps.sort_unstable();
        if steps.len() == 8 {
            assert_eq!(steps, vec![1, 2, 3, 4, 5, 6, 7, 8]);
            complete += 1;
        }
    }
    assert_eq!(complete, report.relocations);
    assert!(report.journal_counters.tuples_routed > 0);
    assert!(report.journal_counters.relocation_bytes > 0);
    assert!(
        report.journal_counters.transfer_bytes > 0,
        "engine-side SendStates must journal encoded wire volume"
    );
}

/// The watermark-purge counters: a windowed run whose relocations hold
/// the purge horizon back must journal the deferral (`purges_deferred`),
/// the hold duration (`watermark_held_ms`), and the in-order replay
/// volume (`replayed_in_order`) — on both runtimes — so a regression in
/// watermark-driven purging is visible straight from `--journal` output.
#[test]
fn watermark_purge_counters_cover_both_runtimes() {
    let deadline = VirtualTime::from_mins(8);
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    let windowed_cfg = || {
        let spec = small_workload(23).with_pattern(ArrivalPattern::AlternatingSkew {
            group_a: group_a.clone(),
            ratio: 10.0,
            period: VirtualDuration::from_mins(2),
        });
        let mut engine = EngineConfig::three_way(1 << 30, 1 << 29);
        engine.join = engine.join.with_window(VirtualDuration::from_secs(20));
        let mut cfg = SimConfig::new(
            2,
            engine,
            spec,
            StrategyConfig::LazyDisk {
                theta_r: 0.9,
                tau_m: VirtualDuration::from_secs(45),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
        // A slow network stretches transfers over many clock pulses, so
        // the held horizon demonstrably defers purges mid-transfer.
        cfg.network = dcape_cluster::netmodel::NetworkModel::slow_wan();
        cfg
    };

    let mut driver = SimDriver::new(windowed_cfg()).unwrap();
    driver.run_until(deadline).unwrap();
    let sim = driver.finish().unwrap();
    assert!(!sim.relocations.is_empty(), "skew must trigger relocations");
    let c = sim.journal_counters;
    assert!(
        c.purges_deferred > 0,
        "held horizon must defer purge pulses"
    );
    assert!(c.watermark_held_ms > 0, "hold duration must accumulate");
    assert!(c.replayed_in_order > 0, "buffered tuples must replay");
    assert_eq!(c.buffered_in_flight, 0, "gauge must return to zero");

    // Threaded runtime: the same counters flow through the channel
    // fabric (hold duration and replay volume are journaled at step 7).
    // A short stats interval triggers the relocation while the engine
    // inboxes are still shallow (so the pause lands mid-run, not in the
    // quiesce drain), and fat payloads with a long window make the
    // state transfer take real wall-time — the driver keeps generating
    // while the partitions are held, so tuples demonstrably buffer and
    // replay. Whether a given schedule buffers anything is still up to
    // the OS scheduler, so retry across seeds: a real emission
    // regression fails every attempt.
    let threaded_arm = |seed: u64| {
        let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
        let spec = StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(8192)
            .with_seed(seed)
            .with_pattern(ArrivalPattern::AlternatingSkew {
                group_a,
                ratio: 10.0,
                period: VirtualDuration::from_mins(2),
            });
        let mut engine = EngineConfig::three_way(1 << 30, 1 << 29);
        engine.join = engine.join.with_window(VirtualDuration::from_secs(60));
        let cfg = SimConfig::new(
            2,
            engine,
            spec,
            StrategyConfig::LazyDisk {
                theta_r: 0.9,
                tau_m: VirtualDuration::from_secs(45),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
        .with_stats_interval(VirtualDuration::from_secs(5))
        .with_journal();
        run_threaded(cfg, VirtualTime::from_mins(1)).unwrap()
    };
    let mut last = None;
    for seed in [23, 24, 25, 26, 27] {
        let threaded = threaded_arm(seed);
        let t = threaded.journal_counters;
        assert_eq!(t.buffered_in_flight, 0, "gauge must return to zero");
        let hit = threaded.relocations > 0 && t.watermark_held_ms > 0 && t.replayed_in_order > 0;
        last = Some(t);
        if hit {
            break;
        }
    }
    let t = last.unwrap();
    assert!(t.watermark_held_ms > 0, "hold duration must accumulate");
    assert!(t.replayed_in_order > 0, "buffered tuples must replay");
}

#[test]
fn journal_off_by_default_keeps_reports_empty() {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    let spec = small_workload(23).with_pattern(ArrivalPattern::AlternatingSkew {
        group_a,
        ratio: 10.0,
        period: VirtualDuration::from_mins(2),
    });
    let cfg = SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::lazy_default(),
    )
    .with_stats_interval(VirtualDuration::from_secs(30));
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(VirtualTime::from_mins(4)).unwrap();
    let report = driver.finish().unwrap();
    assert!(report.journal.is_empty());
    assert_eq!(report.journal_counters.events_recorded, 0);
}
