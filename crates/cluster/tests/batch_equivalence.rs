//! Property-based equivalence of the batched and per-tuple data paths.
//!
//! The batched dataflow (generator tick batches, one channel send per
//! engine per tick, `process_batch` on the engine) is a pure
//! performance transform: for any workload it must produce the same
//! result multiset, the same final state accounting, and the same
//! journal counter totals as the per-tuple path, on both the simulated
//! and the threaded runtime.

use proptest::prelude::*;

use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

/// Proptest case count, overridable for CI stress runs: an explicit
/// `cases:` in `ProptestConfig` takes precedence over the
/// `PROPTEST_CASES` env var, so read the var ourselves.
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The knobs a single equivalence case explores.
#[derive(Debug, Clone)]
struct CaseParams {
    seed: u64,
    num_partitions: u32,
    tuple_range: u64,
    payload_pad: u32,
    skewed: bool,
    tight_memory: bool,
    active_disk: bool,
    num_engines: usize,
}

fn case_strategy() -> impl Strategy<Value = CaseParams> {
    (
        (0u64..1_000, 8u32..33, 200u64..2401, 0u32..301),
        (any::<bool>(), any::<bool>(), any::<bool>(), 2usize..4),
    )
        .prop_map(
            |(
                (seed, num_partitions, tuple_range, payload_pad),
                (skewed, tight_memory, active_disk, num_engines),
            )| CaseParams {
                seed,
                num_partitions,
                tuple_range,
                payload_pad,
                skewed,
                tight_memory,
                active_disk,
                num_engines,
            },
        )
}

fn build_config(p: &CaseParams, collect: bool) -> SimConfig {
    let mut spec = StreamSetSpec::uniform(
        p.num_partitions,
        p.tuple_range,
        1,
        VirtualDuration::from_millis(30),
    )
    .with_payload_pad(p.payload_pad)
    .with_seed(p.seed);
    if p.skewed {
        let group_a: Vec<PartitionId> = (0..p.num_partitions / 4).map(PartitionId).collect();
        spec = spec.with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 8.0,
            period: VirtualDuration::from_mins(1),
        });
    }
    let engine = if p.tight_memory {
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4)
    } else {
        EngineConfig::three_way(1 << 30, 1 << 29)
    };
    let strategy = if p.active_disk {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        }
    } else {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    let mut cfg = SimConfig::new(p.num_engines, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    if p.num_engines == 2 {
        cfg = cfg.with_placement(PlacementSpec::Fractions(vec![0.7, 0.3]));
    }
    if collect {
        cfg = cfg.collecting();
    }
    cfg
}

fn run_sim(p: &CaseParams, batch: bool, deadline: VirtualTime) -> SimReport {
    let cfg = build_config(p, true).with_batching(batch);
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    driver.finish().unwrap()
}

/// Sorted identity multiset of every result (runtime + cleanup).
fn result_identities(report: &SimReport) -> Vec<Vec<(u8, u64)>> {
    let mut ids = report.runtime_results.as_ref().unwrap().identities();
    ids.extend(report.cleanup_results.as_ref().unwrap().identities());
    ids.sort();
    ids
}

proptest! {
    // Each case runs the full simulation twice; keep the default count
    // small (CI stress runs raise it via PROPTEST_CASES).
    #![proptest_config(ProptestConfig {
        cases: cases(8),
        ..ProptestConfig::default()
    })]

    /// For arbitrary workloads the batched sim run is observationally
    /// identical to the per-tuple sim run: same results, same
    /// adaptation history, same counter totals.
    #[test]
    fn sim_batched_path_equals_per_tuple_path(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let batched = run_sim(&p, true, deadline);
        let per_tuple = run_sim(&p, false, deadline);

        prop_assert_eq!(batched.runtime_output, per_tuple.runtime_output);
        prop_assert_eq!(batched.cleanup_output, per_tuple.cleanup_output);
        prop_assert_eq!(batched.relocations.len(), per_tuple.relocations.len());
        prop_assert_eq!(&batched.spill_counts, &per_tuple.spill_counts);
        prop_assert_eq!(batched.force_spills, per_tuple.force_spills);
        prop_assert_eq!(
            result_identities(&batched),
            result_identities(&per_tuple),
            "result multisets diverge"
        );

        // Journal counter totals must match exactly; the in-flight
        // gauge must drain to zero on both paths.
        let b = batched.journal_counters;
        let t = per_tuple.journal_counters;
        prop_assert_eq!(b.tuples_routed, t.tuples_routed);
        prop_assert_eq!(b.spill_bytes, t.spill_bytes);
        prop_assert_eq!(b.relocation_bytes, t.relocation_bytes);
        prop_assert_eq!(b.buffered_in_flight, 0);
        prop_assert_eq!(t.buffered_in_flight, 0);
    }
}

proptest! {
    // Threaded runs spin up real threads; keep the default count
    // smaller still (CI stress runs raise it via PROPTEST_CASES).
    #![proptest_config(ProptestConfig {
        cases: cases(4),
        ..ProptestConfig::default()
    })]

    /// Threaded runtime: adaptation *timing* is scheduler-dependent,
    /// but totals are not — the batched and per-tuple paths and the
    /// deterministic sim must all produce exactly the same total
    /// output (watermark-driven purging makes this hold for windowed
    /// workloads too; see `count_equivalence.rs`).
    #[test]
    fn threaded_batched_path_preserves_totals(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let batched = run_threaded(build_config(&p, false).with_batching(true), deadline).unwrap();
        let per_tuple = run_threaded(build_config(&p, false).with_batching(false), deadline).unwrap();

        prop_assert_eq!(batched.total_output(), per_tuple.total_output());
        prop_assert_eq!(
            batched.journal_counters.tuples_routed,
            per_tuple.journal_counters.tuples_routed
        );
        prop_assert_eq!(batched.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(per_tuple.journal_counters.buffered_in_flight, 0);

        let sim = run_sim(&p, true, deadline);
        prop_assert_eq!(batched.total_output(), sim.total_output());
    }
}
