//! Elastic runs must compute exactly what static runs compute: a live
//! engine join (scale-out) or drain (scale-in) mid-run may change *how*
//! the cluster spreads its state, never *what* it outputs. Every test
//! pits an elastic run against the generator-level reference count
//! and/or a static run of the identical workload and asserts the output
//! totals (and, where collected, the result multisets) are unchanged —
//! with and without the chaos layer garbling the relocation rounds the
//! drain and join rebalancing ride on.
//!
//! The socket arm lives in `crates/repro/tests/socket_equivalence.rs`,
//! where cargo builds the real `dcape-node` worker binary; here a
//! smoke-level socket run is gated on `DCAPE_NODE_BIN` pointing at a
//! prebuilt worker (CI sets it; local runs without it skip the arm).

use std::collections::HashMap;

use dcape_cluster::coordinator::EngineState;
use dcape_cluster::faults::{FaultConfig, FaultPlan};
use dcape_cluster::runtime::sim::{ScaleEvent, SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::socket::{run_socket, SocketConfig, SocketMode};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_metrics::journal::AdaptEvent;
use dcape_streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

/// Seeds to sweep: CI passes one per job via `DCAPE_CHAOS_SEED`;
/// locally a fixed short list keeps the suite fast.
fn seeds() -> Vec<u64> {
    match std::env::var("DCAPE_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("DCAPE_CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![7, 42, 0x00C0_FFEE],
    }
}

/// Reference join count for a spec consumed up to `deadline`.
fn reference_result_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        let key = t.values()[0].as_int().unwrap();
        *counts.entry((t.stream().0, key)).or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    let mut total = 0u64;
    for key in keys {
        let mut product = 1u64;
        for s in 0..spec.num_streams as u8 {
            product *= counts.get(&(s, key)).copied().unwrap_or(0);
        }
        total += product;
    }
    total
}

/// Alternating skew: relocation pressure for the drain/join rounds to
/// contend with.
fn skewed_workload(seed: u64) -> StreamSetSpec {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 10.0,
            period: VirtualDuration::from_mins(2),
        })
}

/// Overloaded two-engine start: tight memory, spill-heavy — the regime
/// a scale-out is for.
fn overloaded_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    let fractions = match engines {
        2 => vec![0.5, 0.5],
        3 => vec![0.6, 0.2, 0.2],
        n => vec![1.0 / n as f64; n],
    };
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(fractions))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// Roomy engines: relocation-capable but spill-free, so drains finish
/// through relocation rounds rather than forced spills.
fn roomy_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    let fractions = vec![1.0 / engines as f64; engines];
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(fractions))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// When `DCAPE_JOURNAL_DUMP` names a directory, write a run's journal
/// there as JSONL (CI uploads the directory as an artifact on failure).
/// Pid-qualified so parallel test binaries never clobber each other.
fn dump_journal(name: &str, entries: &[dcape_metrics::journal::JournalEntry]) {
    if let Ok(dir) = std::env::var("DCAPE_JOURNAL_DUMP") {
        let path =
            std::path::Path::new(&dir).join(format!("{name}-pid{}.jsonl", std::process::id()));
        if let Err(e) = dcape_metrics::report::write_journal_jsonl(&path, entries) {
            eprintln!("journal dump to {} failed: {e}", path.display());
        }
    }
}

fn count_events(
    journal: &[dcape_metrics::journal::JournalEntry],
    pred: impl Fn(&AdaptEvent) -> bool,
) -> usize {
    journal.iter().filter(|e| pred(&e.event)).count()
}

/// The chaos suite's journal invariants (see `chaos_exactly_once.rs`).
fn assert_chaos_invariants(
    journal: &[dcape_metrics::journal::JournalEntry],
    counters: &dcape_metrics::journal::CountersSnapshot,
) {
    let journaled_faults = count_events(journal, |e| matches!(e, AdaptEvent::FaultInjected { .. }));
    assert_eq!(
        counters.faults_injected, journaled_faults as u64,
        "every injected fault must be journaled exactly once"
    );
    assert_eq!(
        counters.buffered_in_flight, 0,
        "no tuple may stay buffered at a paused split after shutdown"
    );
}

/// Drive an elastic sim run to `deadline`, assert the mid-run membership
/// transitions actually happened, then finish and return the report.
fn run_elastic_sim(
    cfg: SimConfig,
    deadline: VirtualTime,
    label: &str,
    expect_joined: &[EngineId],
    expect_drained: &[EngineId],
) -> SimReport {
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    for e in expect_joined {
        assert_eq!(
            driver.coordinator().engine_state(*e),
            EngineState::Active,
            "{label}: joiner {e} must be active before shutdown"
        );
        assert!(
            !driver.placement().partitions_of(*e).is_empty(),
            "{label}: joiner {e} must own partition groups before shutdown"
        );
    }
    for e in expect_drained {
        assert_eq!(
            driver.coordinator().engine_state(*e),
            EngineState::Drained,
            "{label}: {e} must finish draining before shutdown"
        );
        // The drained engine's books are empty: nothing owned, nothing
        // resident, nothing buffered for it in flight.
        assert!(
            driver.placement().partitions_of(*e).is_empty(),
            "{label}: drained {e} still owns partition groups"
        );
        assert_eq!(
            driver.engines()[e.index()].memory_used(),
            0,
            "{label}: drained {e} still holds resident state"
        );
    }
    let report = driver.finish().unwrap();
    dump_journal(label, &report.journal);
    report
}

// ---- sim ----------------------------------------------------------------

#[test]
fn sim_join_keeps_totals_and_takes_load() {
    let deadline = VirtualTime::from_mins(5);
    let spec = skewed_workload(23).with_pattern(ArrivalPattern::Uniform);
    let reference = reference_result_count(&spec, deadline);

    let static_run = {
        let mut d = SimDriver::new(overloaded_cfg(spec.clone(), 2).collecting()).unwrap();
        d.run_until(deadline).unwrap();
        d.finish().unwrap()
    };
    assert_eq!(static_run.total_output(), reference);
    assert!(
        static_run.spill_counts.iter().sum::<u64>() > 0,
        "the overloaded baseline must spill for the join to matter"
    );

    let elastic = run_elastic_sim(
        overloaded_cfg(spec, 2)
            .collecting()
            .with_scale_events(vec![ScaleEvent::add(VirtualTime::from_secs(90))]),
        deadline,
        "elastic-sim-join",
        &[EngineId(2)],
        &[],
    );
    assert_eq!(
        elastic.total_output(),
        reference,
        "a live join changed the windowed total"
    );
    assert_eq!(
        count_events(&elastic.journal, |e| matches!(
            e,
            AdaptEvent::EngineJoined { .. }
        )),
        1,
        "the join must be journaled exactly once"
    );
    assert!(
        elastic.journal_counters.rebalance_moves > 0,
        "the rebalancing planner must move state toward the joiner"
    );

    // Same input, same answers: the union multiset of runtime + cleanup
    // results is identical between the static and the elastic run.
    let multiset = |r: &SimReport| {
        let mut ids = r.runtime_results.as_ref().unwrap().identities();
        ids.extend(r.cleanup_results.as_ref().unwrap().identities());
        ids.sort();
        ids
    };
    assert_eq!(
        multiset(&static_run),
        multiset(&elastic),
        "a live join changed the result multiset"
    );
}

#[test]
fn sim_drain_retires_engine_empty_and_keeps_totals() {
    let deadline = VirtualTime::from_mins(6);
    let spec = skewed_workload(55);
    let reference = reference_result_count(&spec, deadline);

    let static_run = {
        let mut d = SimDriver::new(roomy_cfg(spec.clone(), 3).collecting()).unwrap();
        d.run_until(deadline).unwrap();
        d.finish().unwrap()
    };
    assert_eq!(static_run.total_output(), reference);

    let elastic = run_elastic_sim(
        roomy_cfg(spec, 3)
            .collecting()
            .with_scale_events(vec![ScaleEvent::drain(VirtualTime::from_mins(2))]),
        deadline,
        "elastic-sim-drain",
        &[],
        &[EngineId(2)],
    );
    assert_eq!(
        elastic.total_output(),
        reference,
        "a live drain changed the windowed total"
    );
    assert_eq!(
        count_events(&elastic.journal, |e| matches!(
            e,
            AdaptEvent::EngineDrained { .. }
        )),
        1,
        "the drain must be journaled exactly once"
    );
    assert_eq!(elastic.journal_counters.buffered_in_flight, 0);

    let multiset = |r: &SimReport| {
        let mut ids = r.runtime_results.as_ref().unwrap().identities();
        ids.extend(r.cleanup_results.as_ref().unwrap().identities());
        ids.sort();
        ids
    };
    assert_eq!(
        multiset(&static_run),
        multiset(&elastic),
        "a live drain changed the result multiset"
    );
}

#[test]
fn sim_elastic_totals_survive_chaos() {
    let deadline = VirtualTime::from_mins(6);
    let spec = skewed_workload(77);
    let reference = reference_result_count(&spec, deadline);
    let events = vec![
        ScaleEvent::add(VirtualTime::from_secs(60)),
        ScaleEvent::drain_engine(VirtualTime::from_mins(3), EngineId(1)),
    ];

    for seed in seeds() {
        let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));
        let report = run_elastic_sim(
            roomy_cfg(spec.clone(), 2)
                .with_scale_events(events.clone())
                .with_faults(plan),
            deadline,
            &format!("elastic-sim-chaos-seed{seed}"),
            &[EngineId(2)],
            &[EngineId(1)],
        );
        assert_eq!(
            report.total_output(),
            reference,
            "seed {seed}: chaos over an elastic run changed the total"
        );
        assert_chaos_invariants(&report.journal, &report.journal_counters);
        assert_eq!(
            count_events(&report.journal, |e| matches!(
                e,
                AdaptEvent::EngineJoined { .. }
            )),
            1,
            "seed {seed}"
        );
        assert_eq!(
            count_events(&report.journal, |e| matches!(
                e,
                AdaptEvent::EngineDrained { .. }
            )),
            1,
            "seed {seed}"
        );
    }
}

// ---- threaded -----------------------------------------------------------

#[test]
fn threaded_join_and_drain_keep_totals() {
    let deadline = VirtualTime::from_mins(5);
    let spec = skewed_workload(91);
    let reference = reference_result_count(&spec, deadline);

    let static_run = run_threaded(roomy_cfg(spec.clone(), 2), deadline).unwrap();
    assert_eq!(static_run.total_output(), reference);

    let elastic = run_threaded(
        roomy_cfg(spec, 2).with_scale_events(vec![
            ScaleEvent::add(VirtualTime::from_secs(60)),
            ScaleEvent::drain_engine(VirtualTime::from_mins(3), EngineId(0)),
        ]),
        deadline,
    )
    .unwrap();
    dump_journal("elastic-threaded", &elastic.journal);
    assert_eq!(
        elastic.total_output(),
        reference,
        "threaded join+drain changed the total"
    );
    assert_eq!(
        count_events(&elastic.journal, |e| matches!(
            e,
            AdaptEvent::EngineJoined { .. }
        )),
        1
    );
    assert_eq!(
        count_events(&elastic.journal, |e| matches!(
            e,
            AdaptEvent::EngineDrained { .. }
        )),
        1
    );
    assert_eq!(elastic.journal_counters.buffered_in_flight, 0);
}

#[test]
fn threaded_elastic_survives_chaos() {
    let deadline = VirtualTime::from_mins(5);
    let spec = skewed_workload(42);
    let reference = reference_result_count(&spec, deadline);
    let seed = seeds()[0];
    let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));

    let report = run_threaded(
        roomy_cfg(spec, 2)
            .with_scale_events(vec![
                ScaleEvent::add(VirtualTime::from_secs(60)),
                ScaleEvent::drain_engine(VirtualTime::from_mins(3), EngineId(1)),
            ])
            .with_faults(plan),
        deadline,
    )
    .unwrap_or_else(|e| panic!("seed {seed}: threaded elastic chaos run failed: {e}"));
    dump_journal(
        &format!("elastic-threaded-chaos-seed{seed}"),
        &report.journal,
    );
    assert_eq!(
        report.total_output(),
        reference,
        "seed {seed}: chaos over a threaded elastic run changed the total"
    );
    assert_chaos_invariants(&report.journal, &report.journal_counters);
}

// ---- socket (smoke; the full matrix lives in socket_equivalence.rs) -----

#[test]
fn socket_elastic_smoke() {
    let Ok(bin) = std::env::var("DCAPE_NODE_BIN") else {
        eprintln!("DCAPE_NODE_BIN not set; skipping the socket elastic smoke run");
        return;
    };
    let deadline = VirtualTime::from_mins(4);
    let spec = skewed_workload(7);
    let reference = reference_result_count(&spec, deadline);

    let report = run_socket(
        SocketConfig {
            sim: roomy_cfg(spec, 2).with_scale_events(vec![
                ScaleEvent::add(VirtualTime::from_secs(60)),
                ScaleEvent::drain_engine(VirtualTime::from_mins(2), EngineId(0)),
            ]),
            mode: SocketMode::Spawn {
                node_bin: bin.into(),
            },
            kill: None,
        },
        deadline,
    )
    .unwrap();
    dump_journal("elastic-socket-smoke", &report.journal);
    assert_eq!(
        report.total_output(),
        reference,
        "socket join+drain changed the total"
    );
    assert_eq!(
        count_events(&report.journal, |e| matches!(
            e,
            AdaptEvent::EngineJoined { .. }
        )),
        1
    );
    assert_eq!(
        count_events(&report.journal, |e| matches!(
            e,
            AdaptEvent::EngineDrained { .. }
        )),
        1
    );
    assert_eq!(report.journal_counters.buffered_in_flight, 0);
}
