//! The chaos suite: deterministic fault injection must never change
//! *what* the cluster computes, only *how long* it takes.
//!
//! Every test runs the same workload twice — once fault-free, once with
//! the seeded chaos layer dropping / duplicating / delaying / garbling
//! protocol messages and crash-restarting engines mid-install — and
//! asserts the windowed join totals (and, where collected, the result
//! multisets) are identical, on both the simulated and the threaded
//! runtime. Journal invariants tie the books together: every injected
//! fault is journaled and counted, retries and aborts are accounted,
//! and no tuple is left buffered at shutdown.
//!
//! The seed sweep honours `DCAPE_CHAOS_SEED` (CI sets it from a fixed
//! 8-seed matrix plus one randomized seed); without it a built-in
//! 3-seed list keeps local runs fast.

use std::collections::HashMap;

use dcape_cluster::faults::{FaultConfig, FaultPlan};
use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_metrics::journal::AdaptEvent;
use dcape_streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

/// Seeds to sweep: the CI matrix passes one per job via
/// `DCAPE_CHAOS_SEED`; locally a fixed short list.
fn seeds() -> Vec<u64> {
    match std::env::var("DCAPE_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("DCAPE_CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![7, 42, 0x00C0_FFEE],
    }
}

/// Reference join count for a spec consumed up to `deadline`.
fn reference_result_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        let key = t.values()[0].as_int().unwrap();
        *counts.entry((t.stream().0, key)).or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    let mut total = 0u64;
    for key in keys {
        let mut product = 1u64;
        for s in 0..spec.num_streams as u8 {
            product *= counts.get(&(s, key)).copied().unwrap_or(0);
        }
        total += product;
    }
    total
}

/// Alternating skew on roomy engines: a relocation-heavy, spill-free
/// regime — the protocol under attack is the 8-step relocation.
fn relocation_workload(seed: u64) -> StreamSetSpec {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 10.0,
            period: VirtualDuration::from_mins(2),
        })
}

fn relocation_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![
        1.0 / engines as f64;
        engines
    ]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// Tight memory on a skewed cluster: spills, relocations, and a real
/// cleanup phase — the regime where the multiset oracle bites. The
/// first engine starts with 60% of the partitions, the rest share the
/// remainder evenly (the 3-engine instance is Figure 11's [0.6, 0.2,
/// 0.2] placement).
fn mixed_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    assert!(engines >= 2);
    let mut fractions = vec![0.4 / (engines - 1) as f64; engines];
    fractions[0] = 0.6;
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(fractions))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// When `DCAPE_JOURNAL_DUMP` names a directory, write a run's journal
/// there as JSONL (CI uploads the directory as an artifact on failure).
/// Pid-qualified: socket-runtime workers share the directory, and two
/// test binaries running in parallel must not clobber each other.
fn dump_journal(name: &str, entries: &[dcape_metrics::journal::JournalEntry]) {
    if let Ok(dir) = std::env::var("DCAPE_JOURNAL_DUMP") {
        let path =
            std::path::Path::new(&dir).join(format!("{name}-pid{}.jsonl", std::process::id()));
        if let Err(e) = dcape_metrics::report::write_journal_jsonl(&path, entries) {
            eprintln!("journal dump to {} failed: {e}", path.display());
        }
    }
}

fn run_sim(cfg: SimConfig, deadline: VirtualTime, label: &str) -> SimReport {
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let report = driver.finish().unwrap();
    dump_journal(label, &report.journal);
    report
}

/// The journal's fault schedule: every injected fault in order, as
/// recorded — the bit-for-bit reproducibility oracle.
fn fault_schedule(report: &SimReport) -> Vec<(u64, &'static str, &'static str, u64, u32)> {
    report
        .journal
        .iter()
        .filter_map(|e| match e.event {
            AdaptEvent::FaultInjected {
                fault,
                edge,
                round,
                attempt,
            } => Some((e.at.as_millis(), fault, edge, round, attempt)),
            _ => None,
        })
        .collect()
}

/// Shared journal invariants for a chaos run (either runtime):
/// every fault journaled is counted, retries/aborts tie out, and
/// nothing is left buffered.
fn assert_chaos_invariants(
    journal: &[dcape_metrics::journal::JournalEntry],
    counters: &dcape_metrics::journal::CountersSnapshot,
) {
    let journaled_faults = journal
        .iter()
        .filter(|e| matches!(e.event, AdaptEvent::FaultInjected { .. }))
        .count() as u64;
    assert_eq!(
        counters.faults_injected, journaled_faults,
        "every injected fault must be journaled exactly once"
    );
    let retries = journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "phase_timeout_retry"),
        )
        .count() as u64;
    assert_eq!(counters.msgs_retried, retries, "retry accounting");
    let aborts = journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "round_aborted"),
        )
        .count() as u64;
    assert_eq!(counters.rounds_aborted, aborts, "abort accounting");
    assert!(
        counters.watermark_released_on_abort <= counters.rounds_aborted,
        "a watermark release needs an abort"
    );
    assert_eq!(
        counters.buffered_in_flight, 0,
        "no tuple may stay buffered at a paused split after shutdown"
    );
}

#[test]
fn sim_relocation_totals_survive_chaos() {
    let deadline = VirtualTime::from_mins(6);
    let spec = relocation_workload(23);
    let reference = reference_result_count(&spec, deadline);

    let baseline = run_sim(
        relocation_cfg(spec.clone(), 2),
        deadline,
        "sim-relocation-baseline",
    );
    assert!(
        !baseline.relocations.is_empty(),
        "the fault-free run must relocate for this suite to bite"
    );
    assert_eq!(baseline.total_output(), reference);
    assert_eq!(baseline.journal_counters.faults_injected, 0);

    for seed in seeds() {
        for rate in [0.1, 0.3] {
            let plan = FaultPlan::new(seed, FaultConfig::uniform(rate));
            let report = run_sim(
                relocation_cfg(spec.clone(), 2).with_faults(plan),
                deadline,
                &format!("sim-relocation-seed{seed}-rate{rate}"),
            );
            assert_eq!(
                report.total_output(),
                reference,
                "seed {seed} rate {rate}: chaos changed the windowed total"
            );
            assert_chaos_invariants(&report.journal, &report.journal_counters);
        }
    }
}

#[test]
fn sim_spill_cleanup_multisets_survive_chaos() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(55).with_pattern(ArrivalPattern::Uniform);
    let reference = reference_result_count(&spec, deadline);

    let baseline = run_sim(
        mixed_cfg(spec.clone(), 3).collecting(),
        deadline,
        "sim-mixed-baseline",
    );
    assert!(
        baseline.spill_counts.iter().sum::<u64>() > 0,
        "the fault-free run must spill for the cleanup oracle to bite"
    );
    assert_eq!(baseline.total_output(), reference);
    let mut baseline_ids = baseline.runtime_results.as_ref().unwrap().identities();
    baseline_ids.extend(baseline.cleanup_results.as_ref().unwrap().identities());
    baseline_ids.sort();

    for seed in seeds() {
        let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));
        let report = run_sim(
            mixed_cfg(spec.clone(), 3).with_faults(plan).collecting(),
            deadline,
            &format!("sim-mixed-seed{seed}"),
        );
        assert_eq!(report.total_output(), reference, "seed {seed}");
        let mut ids = report.runtime_results.as_ref().unwrap().identities();
        ids.extend(report.cleanup_results.as_ref().unwrap().identities());
        let n = ids.len();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n, "seed {seed}: duplicate results under chaos");
        assert_eq!(
            ids, baseline_ids,
            "seed {seed}: chaos changed the result multiset"
        );
        assert_chaos_invariants(&report.journal, &report.journal_counters);
    }
}

#[test]
fn same_seed_reproduces_the_same_fault_schedule() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(23);
    let seed = seeds()[0];
    let run = || {
        run_sim(
            relocation_cfg(spec.clone(), 2)
                .with_faults(FaultPlan::new(seed, FaultConfig::uniform(0.3))),
            deadline,
            &format!("sim-repro-seed{seed}"),
        )
    };
    let a = run();
    let b = run();
    assert!(
        a.journal_counters.faults_injected > 0,
        "rate 0.3 over a relocating run must inject something"
    );
    assert_eq!(
        fault_schedule(&a),
        fault_schedule(&b),
        "the fault schedule must be a pure function of the seed"
    );
    assert_eq!(a.total_output(), b.total_output());
    assert_eq!(a.journal_counters, b.journal_counters);
}

#[test]
fn different_seeds_give_different_schedules() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(23);
    let run = |seed: u64| {
        run_sim(
            relocation_cfg(spec.clone(), 2)
                .with_faults(FaultPlan::new(seed, FaultConfig::uniform(0.3))),
            deadline,
            &format!("sim-distinct-seed{seed}"),
        )
    };
    let a = run(1);
    let b = run(2);
    // Schedules are seed-keyed; two seeds colliding on the identical
    // schedule would mean the key never entered the PRNG.
    assert_ne!(
        fault_schedule(&a),
        fault_schedule(&b),
        "distinct seeds should not share a fault schedule"
    );
    // ... while the computed answer doesn't care about the seed.
    assert_eq!(a.total_output(), b.total_output());
}

#[test]
fn threaded_totals_survive_chaos() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(77);
    let reference = reference_result_count(&spec, deadline);

    let baseline = run_threaded(relocation_cfg(spec.clone(), 2), deadline).unwrap();
    assert!(baseline.relocations > 0, "baseline must relocate");
    assert_eq!(baseline.total_output(), reference);

    for seed in seeds() {
        let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));
        let report = run_threaded(relocation_cfg(spec.clone(), 2).with_faults(plan), deadline)
            .unwrap_or_else(|e| panic!("seed {seed}: threaded chaos run failed: {e}"));
        assert_eq!(
            report.total_output(),
            reference,
            "seed {seed}: threaded chaos changed the total"
        );
        assert_chaos_invariants(&report.journal, &report.journal_counters);
    }
}

#[test]
fn threaded_spill_cleanup_survives_chaos() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(91).with_pattern(ArrivalPattern::Uniform);
    let reference = reference_result_count(&spec, deadline);

    let baseline = run_threaded(mixed_cfg(spec.clone(), 3), deadline).unwrap();
    assert!(baseline.spill_counts.iter().sum::<u64>() > 0);
    assert_eq!(baseline.total_output(), reference);

    let seed = seeds()[0];
    let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));
    let report = run_threaded(mixed_cfg(spec, 3).with_faults(plan), deadline).unwrap();
    assert_eq!(report.total_output(), reference, "seed {seed}");
    assert_chaos_invariants(&report.journal, &report.journal_counters);
}
