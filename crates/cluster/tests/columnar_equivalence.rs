//! Property-based equivalence of the columnar and row state layouts,
//! and of the two spill codecs.
//!
//! The struct-of-arrays partition-group layout and the column-block
//! spill codec are pure performance transforms: for any workload —
//! windowed or not, skewed or not, with real blob payloads, spills,
//! relocations, and chaos faults — they must produce the same result
//! multiset, the same per-group `P_output`, the same adaptation
//! history, and the same journal byte-volume totals as the row layout
//! with the verbatim row codec, on both the simulated and the threaded
//! runtime.

use proptest::prelude::*;

use dcape_cluster::faults::{FaultConfig, FaultPlan};
use dcape_cluster::runtime::sim::{SimConfig, SimDriver, SimReport};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::{EngineConfig, StateLayout};
use dcape_storage::SegmentCodec;
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

/// Proptest case count, overridable for CI stress runs (see
/// `count_equivalence.rs` for why the env var is read by hand).
fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The knobs a single equivalence case explores.
#[derive(Debug, Clone)]
struct CaseParams {
    seed: u64,
    num_partitions: u32,
    tuple_range: u64,
    /// Real blob payload bytes (0 = none) — exercises the payload
    /// arena and the dictionary column encoder.
    payload_blob: u32,
    skewed: bool,
    tight_memory: bool,
    active_disk: bool,
    num_engines: usize,
    window_ms: Option<u64>,
}

fn case_strategy() -> impl Strategy<Value = CaseParams> {
    (
        (0u64..1_000, 8u32..33, 200u64..2401, 0u32..513),
        (any::<bool>(), any::<bool>(), any::<bool>(), 2usize..4),
        (any::<bool>(), 200u64..120_000),
    )
        .prop_map(
            |(
                (seed, num_partitions, tuple_range, payload_blob),
                (skewed, tight_memory, active_disk, num_engines),
                (windowed, window_raw),
            )| CaseParams {
                seed,
                num_partitions,
                tuple_range,
                payload_blob,
                skewed,
                tight_memory,
                active_disk,
                num_engines,
                window_ms: windowed.then_some(window_raw),
            },
        )
}

fn build_config(p: &CaseParams, layout: StateLayout, codec: SegmentCodec) -> SimConfig {
    let mut spec = StreamSetSpec::uniform(
        p.num_partitions,
        p.tuple_range,
        1,
        VirtualDuration::from_millis(30),
    )
    .with_payload_blob(p.payload_blob)
    .with_seed(p.seed);
    if p.skewed {
        let group_a: Vec<PartitionId> = (0..p.num_partitions / 4).map(PartitionId).collect();
        spec = spec.with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 8.0,
            period: VirtualDuration::from_mins(1),
        });
    }
    let mut engine = if p.tight_memory {
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4)
    } else {
        EngineConfig::three_way(1 << 30, 1 << 29)
    };
    engine = engine.with_layout(layout).with_spill_codec(codec);
    if let Some(w) = p.window_ms {
        engine.join = engine.join.with_window(VirtualDuration::from_millis(w));
    }
    let strategy = if p.active_disk {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        }
    } else {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    let mut cfg = SimConfig::new(p.num_engines, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    if p.num_engines == 2 {
        cfg = cfg.with_placement(PlacementSpec::Fractions(vec![0.7, 0.3]));
    }
    cfg
}

/// Per-engine `(pid, bytes, P_output)` triples of every resident group —
/// the layout must leave memory accounting and productivity untouched.
type GroupOutputs = Vec<Vec<(PartitionId, usize, u64)>>;

fn group_outputs(driver: &SimDriver) -> GroupOutputs {
    driver
        .engines()
        .iter()
        .map(|e| {
            e.join()
                .group_stats()
                .iter()
                .map(|g| (g.pid, g.bytes, g.output))
                .collect()
        })
        .collect()
}

fn run_sim(cfg: SimConfig, deadline: VirtualTime) -> (SimReport, GroupOutputs) {
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let groups = group_outputs(&driver);
    (driver.finish().unwrap(), groups)
}

/// Sorted multiset of collected result identities (`(stream, seq)`
/// per joined part) for exact comparison.
fn result_multiset(report: &SimReport) -> Vec<Vec<(u8, u64)>> {
    let mut all: Vec<Vec<(u8, u64)>> = report
        .runtime_results
        .iter()
        .chain(report.cleanup_results.iter())
        .flat_map(|c| c.identities())
        .collect();
    all.sort_unstable();
    all
}

proptest! {
    // Each case runs the full simulation several times; keep the
    // default count small (CI stress runs raise it via PROPTEST_CASES).
    #![proptest_config(ProptestConfig {
        cases: cases(6),
        ..ProptestConfig::default()
    })]

    /// For arbitrary workloads the columnar sim run is observationally
    /// identical to the row-layout run: same result multiset, same
    /// per-group `P_output` and accounted bytes, same adaptation
    /// history, same spill multiset (counts and byte volumes), and the
    /// same journal byte-volume counters — including the encoded
    /// spill/transfer volumes, since both layouts snapshot identical
    /// rows in identical order.
    #[test]
    fn sim_columnar_equals_row(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let (row, row_groups) = run_sim(
            build_config(&p, StateLayout::Row, SegmentCodec::Columns).collecting(),
            deadline,
        );
        let (col, col_groups) = run_sim(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Columns).collecting(),
            deadline,
        );

        prop_assert_eq!(row.runtime_output, col.runtime_output);
        prop_assert_eq!(row.cleanup_output, col.cleanup_output);
        prop_assert_eq!(row_groups, col_groups, "per-group stats diverge");
        prop_assert_eq!(row.relocations.len(), col.relocations.len());
        prop_assert_eq!(&row.spill_counts, &col.spill_counts);
        prop_assert_eq!(row.force_spills, col.force_spills);
        prop_assert_eq!(
            result_multiset(&row),
            result_multiset(&col),
            "result multisets diverge"
        );

        let r = row.journal_counters;
        let c = col.journal_counters;
        prop_assert_eq!(r.tuples_routed, c.tuples_routed);
        prop_assert_eq!(r.spill_bytes, c.spill_bytes);
        prop_assert_eq!(r.spill_bytes_written, c.spill_bytes_written);
        prop_assert_eq!(r.spill_bytes_read, c.spill_bytes_read);
        prop_assert_eq!(r.relocation_bytes, c.relocation_bytes);
        prop_assert_eq!(r.transfer_bytes, c.transfer_bytes);
        prop_assert_eq!(r.buffered_in_flight, 0);
        prop_assert_eq!(c.buffered_in_flight, 0);
    }

    /// The spill codec is invisible to results: the verbatim row codec
    /// and the column-block codec agree on every output and on the
    /// accounted (pre-encoding) byte counters; only the encoded volume
    /// differs, and with real low-cardinality payloads the column
    /// blocks never write more than the row codec.
    #[test]
    fn sim_codec_choice_only_changes_encoded_bytes(p in case_strategy()) {
        // Force the spill-heavy regime so the codecs actually run.
        let p = CaseParams { tight_memory: true, payload_blob: p.payload_blob.max(64), ..p };
        let deadline = VirtualTime::from_mins(2);
        let (rows, rows_groups) = run_sim(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Rows),
            deadline,
        );
        let (cols, cols_groups) = run_sim(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Columns),
            deadline,
        );

        prop_assert_eq!(rows.runtime_output, cols.runtime_output);
        prop_assert_eq!(rows.cleanup_output, cols.cleanup_output);
        prop_assert_eq!(rows_groups, cols_groups, "per-group stats diverge across codecs");
        let r = rows.journal_counters;
        let c = cols.journal_counters;
        prop_assert_eq!(r.spill_bytes, c.spill_bytes, "accounted volume must not depend on codec");
        if r.spill_bytes_written > 0 {
            prop_assert!(c.spill_bytes_written > 0, "columns arm must spill too");
            prop_assert!(
                c.spill_bytes_written <= r.spill_bytes_written,
                "column blocks wrote more than verbatim rows: {} > {}",
                c.spill_bytes_written,
                r.spill_bytes_written
            );
        }
    }
}

proptest! {
    // Threaded and chaos runs are slower; keep the default count
    // smaller still.
    #![proptest_config(ProptestConfig {
        cases: cases(4),
        ..ProptestConfig::default()
    })]

    /// Threaded runtime: adaptation timing is scheduler-dependent but
    /// totals are not — the columnar and row layouts must produce
    /// exactly the same total output as each other and as the
    /// deterministic sim.
    #[test]
    fn threaded_columnar_preserves_totals(p in case_strategy()) {
        let deadline = VirtualTime::from_mins(3);
        let row = run_threaded(
            build_config(&p, StateLayout::Row, SegmentCodec::Columns),
            deadline,
        )
        .unwrap();
        let col = run_threaded(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Columns),
            deadline,
        )
        .unwrap();

        prop_assert_eq!(row.total_output(), col.total_output());
        prop_assert_eq!(
            row.journal_counters.tuples_routed,
            col.journal_counters.tuples_routed
        );
        prop_assert_eq!(row.journal_counters.buffered_in_flight, 0);
        prop_assert_eq!(col.journal_counters.buffered_in_flight, 0);

        let (sim, _) = run_sim(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Columns),
            deadline,
        );
        prop_assert_eq!(col.total_output(), sim.total_output());
    }

    /// Chaos seeds: with deterministic faults active on the relocation
    /// protocol (drops, duplicates, delays, corrupt lengths), both
    /// layouts ride the same fault schedule in the deterministic sim
    /// and must still agree exactly — on results and on the fault
    /// bookkeeping itself.
    #[test]
    fn sim_columnar_equals_row_under_chaos(
        p in case_strategy(),
        chaos_seed in 0u64..1_000,
    ) {
        let p = CaseParams { skewed: true, ..p };
        let deadline = VirtualTime::from_mins(2);
        let plan = || FaultPlan::new(chaos_seed, FaultConfig::uniform(0.2));
        let (row, row_groups) = run_sim(
            build_config(&p, StateLayout::Row, SegmentCodec::Columns).with_faults(plan()),
            deadline,
        );
        let (col, col_groups) = run_sim(
            build_config(&p, StateLayout::Columnar, SegmentCodec::Columns).with_faults(plan()),
            deadline,
        );

        prop_assert_eq!(row.runtime_output, col.runtime_output);
        prop_assert_eq!(row.cleanup_output, col.cleanup_output);
        prop_assert_eq!(row_groups, col_groups, "chaos per-group stats diverge");
        let r = row.journal_counters;
        let c = col.journal_counters;
        prop_assert_eq!(r.faults_injected, c.faults_injected);
        prop_assert_eq!(r.rounds_aborted, c.rounds_aborted);
        prop_assert_eq!(r.msgs_retried, c.msgs_retried);
        prop_assert_eq!(r.relocation_bytes, c.relocation_bytes);
        prop_assert_eq!(r.transfer_bytes, c.transfer_bytes);
        prop_assert_eq!(r.buffered_in_flight, 0);
        prop_assert_eq!(c.buffered_in_flight, 0);
    }
}
