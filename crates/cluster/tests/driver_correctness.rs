//! End-to-end correctness of the cluster drivers.
//!
//! The paper's protocol promise (§4.1): *no operator states should be
//! missing or corrupted* across adaptations. The verifiable consequence:
//! run-time results + cleanup results together equal the reference join
//! of the full input, no matter how many spills and relocations happened
//! in between, on both the simulated and the threaded driver.

use std::collections::HashMap;

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

/// Count the reference-join results for a spec consumed up to `deadline`:
/// for every (partition-respecting) join value, the product of the
/// per-stream multiplicities.
fn reference_result_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        let key = t.values()[0].as_int().unwrap();
        *counts.entry((t.stream().0, key)).or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    let mut total = 0u64;
    for key in keys {
        let mut product = 1u64;
        for s in 0..spec.num_streams as u8 {
            product *= counts.get(&(s, key)).copied().unwrap_or(0);
        }
        total += product;
    }
    total
}

fn small_workload(seed: u64) -> StreamSetSpec {
    StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(seed)
}

/// Engine config tight enough to force several spills during the run.
fn tight_engine() -> EngineConfig {
    EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4)
}

#[test]
fn sim_lazy_disk_no_loss_no_duplication() {
    let deadline = VirtualTime::from_mins(5);
    let spec = small_workload(11);
    let reference = reference_result_count(&spec, deadline);
    assert!(reference > 0);

    let cfg = SimConfig::new(
        3,
        tight_engine(),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .collecting();
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let report = driver.finish().unwrap();

    assert!(
        report.spill_counts.iter().sum::<u64>() > 0,
        "workload must be memory constrained for this test to bite"
    );
    assert_eq!(
        report.total_output(),
        reference,
        "runtime {} + cleanup {} != reference {reference}",
        report.runtime_output,
        report.cleanup_output
    );

    // No duplicates among collected results.
    let mut ids = report.runtime_results.unwrap().identities();
    ids.extend(report.cleanup_results.unwrap().identities());
    let n = ids.len();
    ids.sort();
    ids.dedup();
    assert_eq!(ids.len(), n, "duplicate results detected");
}

#[test]
fn sim_relocations_happen_under_skew_and_preserve_results() {
    let deadline = VirtualTime::from_mins(8);
    let group_a: Vec<dcape_common::ids::PartitionId> =
        (0..6).map(dcape_common::ids::PartitionId).collect();
    let spec = small_workload(23).with_pattern(ArrivalPattern::AlternatingSkew {
        group_a,
        ratio: 10.0,
        period: VirtualDuration::from_mins(2),
    });
    let reference = reference_result_count(&spec, deadline);

    // Roomy memory: relocation-only regime (no spill).
    let engine = EngineConfig::three_way(1 << 30, 1 << 29);
    let cfg = SimConfig::new(
        2,
        engine,
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(30));
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let relocations = driver.relocations().len();
    let report = driver.finish().unwrap();

    assert!(relocations > 0, "alternating skew must trigger relocations");
    assert_eq!(report.spill_counts.iter().sum::<u64>(), 0);
    assert_eq!(report.cleanup_output, 0, "nothing spilled, nothing missed");
    assert_eq!(report.runtime_output, reference);
}

#[test]
fn sim_active_disk_preserves_results_with_force_spills() {
    use dcape_streamgen::{ClassAssignment, PartitionClass};
    let deadline = VirtualTime::from_mins(5);
    let mut spec = small_workload(37);
    // Productivity gap: first half of partitions join rate 4, rest 1.
    spec.classes = vec![
        PartitionClass {
            assignment: ClassAssignment::Fraction(0.5),
            join_rate: 4,
            tuple_range: 2400,
        },
        PartitionClass {
            assignment: ClassAssignment::Fraction(0.5),
            join_rate: 1,
            tuple_range: 2400,
        },
    ];
    let reference = reference_result_count(&spec, deadline);

    let cfg = SimConfig::new(
        3,
        tight_engine(),
        spec,
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        },
    )
    .with_stats_interval(VirtualDuration::from_secs(30));
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let report = driver.finish().unwrap();
    assert_eq!(report.total_output(), reference);
}

#[test]
fn sim_is_deterministic() {
    let deadline = VirtualTime::from_mins(4);
    let run = || {
        let cfg = SimConfig::new(
            2,
            tight_engine(),
            small_workload(5),
            StrategyConfig::lazy_default(),
        );
        let mut d = SimDriver::new(cfg).unwrap();
        d.run_until(deadline).unwrap();
        let r = d.finish().unwrap();
        (
            r.runtime_output,
            r.cleanup_output,
            r.relocations.len(),
            r.spill_counts.clone(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn threaded_driver_matches_reference_and_sim_total() {
    let deadline = VirtualTime::from_mins(5);
    let spec = small_workload(42);
    let reference = reference_result_count(&spec, deadline);

    let make_cfg = || {
        SimConfig::new(
            3,
            tight_engine(),
            spec.clone(),
            StrategyConfig::LazyDisk {
                theta_r: 0.8,
                tau_m: VirtualDuration::from_secs(45),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]))
        .with_stats_interval(VirtualDuration::from_secs(30))
    };

    let threaded = run_threaded(make_cfg(), deadline).unwrap();
    assert_eq!(
        threaded.total_output(),
        reference,
        "threaded driver lost or duplicated results"
    );

    let mut sim = SimDriver::new(make_cfg()).unwrap();
    sim.run_until(deadline).unwrap();
    let sim_report = sim.finish().unwrap();
    assert_eq!(
        sim_report.total_output(),
        threaded.total_output(),
        "sim and threaded drivers disagree on the total"
    );
}

#[test]
fn threaded_driver_relocates_under_skew() {
    let deadline = VirtualTime::from_mins(5);
    let group_a: Vec<dcape_common::ids::PartitionId> =
        (0..6).map(dcape_common::ids::PartitionId).collect();
    let spec = small_workload(77).with_pattern(ArrivalPattern::AlternatingSkew {
        group_a,
        ratio: 10.0,
        period: VirtualDuration::from_mins(2),
    });
    let reference = reference_result_count(&spec, deadline);
    let cfg = SimConfig::new(
        2,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
    .with_stats_interval(VirtualDuration::from_secs(30));
    let report = run_threaded(cfg, deadline).unwrap();
    assert!(report.relocations > 0, "skew should force relocations");
    assert_eq!(report.total_output(), reference);
}

#[test]
fn global_rebalance_scheme_preserves_results_across_four_engines() {
    let deadline = VirtualTime::from_mins(6);
    let spec = small_workload(91);
    let reference = reference_result_count(&spec, deadline);
    // Heavily skewed four-engine placement; global rebalance plans
    // multiple pair moves per trigger.
    let cfg = SimConfig::new(
        4,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDiskRebalance {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![0.55, 0.25, 0.15, 0.05]))
    .with_stats_interval(VirtualDuration::from_secs(30));
    let mut driver = SimDriver::new(cfg).unwrap();
    driver.run_until(deadline).unwrap();
    let relocations = driver.relocations().len();
    let report = driver.finish().unwrap();
    assert!(relocations >= 2, "rebalance should move multiple pairs");
    assert_eq!(report.runtime_output, reference);

    // Memory ends up better balanced than it started.
    let mems: Vec<u64> = driver_mems(&report);
    let max = *mems.iter().max().unwrap();
    let min = *mems.iter().min().unwrap();
    assert!(
        (min as f64) / (max.max(1) as f64) > 0.3,
        "final loads should be balanced-ish: {mems:?}"
    );
}

/// Final per-engine memory from the recorded series.
fn driver_mems(report: &dcape_cluster::runtime::sim::SimReport) -> Vec<u64> {
    (0..4u16)
        .filter_map(|i| {
            report
                .recorder
                .series(&format!("mem/QE{i}"))
                .and_then(|s| s.last())
                .map(|(_, v)| v as u64)
        })
        .collect()
}

#[test]
fn threaded_active_disk_preserves_results() {
    let deadline = VirtualTime::from_mins(5);
    let spec = small_workload(123);
    let reference = reference_result_count(&spec, deadline);
    let cfg = SimConfig::new(
        3,
        tight_engine(),
        spec,
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        },
    )
    .with_stats_interval(VirtualDuration::from_secs(30));
    let report = run_threaded(cfg, deadline).unwrap();
    assert_eq!(
        report.total_output(),
        reference,
        "threaded active-disk lost or duplicated results"
    );
}

#[test]
fn runtime_reactivation_reduces_cleanup_debt_and_stays_exact() {
    let deadline = VirtualTime::from_mins(6);
    let spec = small_workload(55);
    let reference = reference_result_count(&spec, deadline);

    let run = |reactivate: bool| {
        let mut engine = tight_engine();
        if reactivate {
            engine = engine.with_reactivation(0.5);
        }
        let cfg = SimConfig::new(
            3,
            engine,
            spec.clone(),
            StrategyConfig::LazyDisk {
                theta_r: 0.8,
                tau_m: VirtualDuration::from_secs(45),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]))
        .with_stats_interval(VirtualDuration::from_secs(30));
        let mut driver = SimDriver::new(cfg).unwrap();
        driver.run_until(deadline).unwrap();
        driver.finish().unwrap()
    };

    let plain = run(false);
    let reactivating = run(true);
    assert!(plain.spill_counts.iter().sum::<u64>() > 0);
    // Exactness holds either way.
    assert_eq!(plain.total_output(), reference);
    assert_eq!(reactivating.total_output(), reference);
    // Reactivation pays the merge during the run, leaving less (or at
    // most equal) debt for the post-run cleanup phase.
    assert!(
        reactivating.cleanup_output <= plain.cleanup_output,
        "reactivation should shrink post-run cleanup: {} vs {}",
        reactivating.cleanup_output,
        plain.cleanup_output
    );
}
