//! Property-based robustness of the relocation protocol and the
//! placement map: arbitrary (including invalid) event sequences must
//! never panic, must reject out-of-order events, and must never lose or
//! duplicate buffered tuples.

use proptest::prelude::*;

use dcape_cluster::faults::{FaultConfig, FaultPlan};
use dcape_cluster::placement::{PlacementMap, PlacementSpec, Route};
use dcape_cluster::relocation::{Action, Phase, RelocationRound};
use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::ids::{EngineId, PartitionId, StreamId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::TupleBuilder;
use dcape_engine::config::EngineConfig;
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

/// An abstract protocol event for fuzzing.
#[derive(Debug, Clone)]
enum Event {
    Ptv {
        from: u16,
        round: u64,
        parts: Vec<u32>,
    },
    Ack {
        from: u16,
        round: u64,
    },
}

fn event_strategy() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0u16..4, 0u64..3, proptest::collection::vec(0u32..16, 0..5))
            .prop_map(|(from, round, parts)| Event::Ptv { from, round, parts }),
        (0u16..4, 0u64..3).prop_map(|(from, round)| Event::Ack { from, round }),
    ]
}

proptest! {
    /// Random event sequences never panic, and the machine only reaches
    /// `Done` through the legal order (ptv-from-sender then
    /// ack-from-receiver, matching round ids).
    #[test]
    fn relocation_round_never_panics_and_orders_strictly(
        events in proptest::collection::vec(event_strategy(), 1..12)
    ) {
        let mut round = RelocationRound::begin(1, EngineId(0), EngineId(1), 100).unwrap();
        let mut legal_ptv_seen = false;
        for e in events {
            match e {
                Event::Ptv { from, round: r, parts } => {
                    let parts: Vec<PartitionId> = parts.into_iter().map(PartitionId).collect();
                    let was_wait_ptv = *round.phase() == Phase::WaitPtv;
                    let ok = round.on_ptv(EngineId(from), r, parts.clone(), VirtualTime::ZERO);
                    let legal = was_wait_ptv && from == 0 && r == 1;
                    prop_assert_eq!(ok.is_ok(), legal, "ptv legality mismatch");
                    if legal {
                        legal_ptv_seen = true;
                        if parts.is_empty() {
                            prop_assert_eq!(ok.unwrap(), Action::Abort);
                        }
                    }
                }
                Event::Ack { from, round: r } => {
                    let was_wait_ack = *round.phase() == Phase::WaitAck;
                    let ok = round.on_transfer_ack(EngineId(from), r);
                    let legal = was_wait_ack && from == 1 && r == 1;
                    prop_assert_eq!(ok.is_ok(), legal, "ack legality mismatch");
                }
            }
        }
        if round.is_done() && !round.parts().is_empty() {
            prop_assert!(legal_ptv_seen);
        }
    }

    /// Buffered-tuple conservation: for any interleaving of routing,
    /// pausing, and remapping, every routed tuple is either delivered
    /// exactly once or returned exactly once by remap_and_release.
    #[test]
    fn placement_conserves_every_tuple(
        ops in proptest::collection::vec(
            prop_oneof![
                // Route a tuple to a random partition.
                (0u32..8).prop_map(|p| (0u8, p)),
                // Pause a partition.
                (0u32..8).prop_map(|p| (1u8, p)),
                // Remap (and release) a partition to engine 1.
                (0u32..8).prop_map(|p| (2u8, p)),
            ],
            1..40,
        )
    ) {
        let mut map = PlacementMap::new(&PlacementSpec::RoundRobin, 8, 2).unwrap();
        let mut seq = 0u64;
        let mut delivered = 0u64;
        let mut released = 0u64;
        let mut routed = 0u64;
        for (kind, p) in ops {
            let pid = PartitionId(p);
            match kind {
                0 => {
                    let t = TupleBuilder::new(StreamId(0)).seq(seq).value(1i64).build();
                    seq += 1;
                    routed += 1;
                    match map.route(pid, t).unwrap() {
                        Route::Deliver(_, _) => delivered += 1,
                        Route::Buffered => {}
                    }
                }
                1 => {
                    // Double pause must error, first pause must succeed.
                    let was_paused = map.paused_partitions().contains(&pid);
                    let r = map.pause(&[pid]);
                    prop_assert_eq!(r.is_err(), was_paused);
                }
                _ => {
                    let was_paused = map.paused_partitions().contains(&pid);
                    let r = map.remap_and_release(&[pid], EngineId(1));
                    prop_assert_eq!(r.is_ok(), was_paused);
                    if let Ok(out) = r {
                        for (_, tuples) in out {
                            released += tuples.len() as u64;
                        }
                    }
                }
            }
        }
        // Whatever is still buffered accounts for the difference.
        let still_buffered: u64 = map
            .paused_partitions()
            .into_iter()
            .map(|pid| {
                // Drain by remapping; counts the leftover buffers.
                map.remap_and_release(&[pid], EngineId(0))
                    .unwrap()
                    .into_iter()
                    .map(|(_, v)| v.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        prop_assert_eq!(delivered + released + still_buffered, routed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6, // each case is a full (small) chaos cluster run
        ..ProptestConfig::default()
    })]

    /// Injected duplicates, drops, delays, corruptions, crashes and
    /// stalls — at any rate, under any seed — must never panic the
    /// protocol stack (errors are fine; panics are not), and whatever
    /// survives must still produce the exact join: the driver itself
    /// asserts per-engine accounting at shutdown, and the totals are
    /// compared against the fault-free run of the same workload.
    #[test]
    fn chaos_at_any_rate_never_panics_and_keeps_totals(
        seed in 0u64..10_000,
        rate_pct in 0u32..101,
    ) {
        let rate = f64::from(rate_pct) / 100.0;
        let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
        let spec = StreamSetSpec::uniform(12, 1200, 1, VirtualDuration::from_millis(30))
            .with_payload_pad(64)
            .with_seed(seed)
            .with_pattern(ArrivalPattern::AlternatingSkew {
                group_a,
                ratio: 10.0,
                period: VirtualDuration::from_mins(1),
            });
        let deadline = VirtualTime::from_mins(3);
        let cfg = |faults: FaultPlan| {
            SimConfig::new(
                2,
                EngineConfig::three_way(1 << 30, 1 << 29),
                spec.clone(),
                StrategyConfig::LazyDisk {
                    theta_r: 0.9,
                    tau_m: VirtualDuration::from_secs(30),
                },
            )
            .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
            .with_stats_interval(VirtualDuration::from_secs(20))
            .with_faults(faults)
        };
        let run = |faults: FaultPlan| -> u64 {
            let mut driver = SimDriver::new(cfg(faults)).unwrap();
            driver.run_until(deadline).unwrap();
            driver.finish().unwrap().total_output()
        };
        let clean = run(FaultPlan::disabled());
        let chaotic = run(FaultPlan::new(seed, FaultConfig::uniform(rate)));
        prop_assert_eq!(chaotic, clean, "chaos at rate {} changed the total", rate);
    }
}
