//! The split operator (§2, Figure 2).
//!
//! "A split operator is inserted in front of each input stream of such a
//! partitioned operator. This split operator partitions an input stream
//! and sends the appropriate partitions to each machine that houses an
//! instance of this partitioned operator."
//!
//! A [`SplitOperator`] owns the *classification* step — join-column
//! extraction + partitioner — shared by every input stream of one
//! partitioned operator (per-stream join columns supported). The
//! *routing* step (partition → engine, with pause/buffer during
//! relocations) lives in [`PlacementMap`](crate::placement::PlacementMap),
//! which all splits of an operator share; both drivers compose the two.

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::PartitionId;
use dcape_common::partition::Partitioner;
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;

/// Classifies tuples of a partitioned operator's input streams into
/// partition IDs.
#[derive(Debug, Clone)]
pub struct SplitOperator {
    partitioner: Partitioner,
    /// Join-column index per input stream.
    join_columns: Vec<usize>,
    classified: u64,
    /// Highest timestamp admitted so far — the split-layer low
    /// watermark. Stream generators emit nondecreasing timestamps, so
    /// every tuple classified after this point carries `ts >=
    /// admitted_watermark()`.
    admitted_watermark: VirtualTime,
}

impl SplitOperator {
    /// Build a split for an operator with the given per-stream join
    /// columns.
    pub fn new(partitioner: Partitioner, join_columns: Vec<usize>) -> Result<Self> {
        if join_columns.is_empty() {
            return Err(DcapeError::config("split needs at least one stream"));
        }
        Ok(SplitOperator {
            partitioner,
            join_columns,
            classified: 0,
            admitted_watermark: VirtualTime::ZERO,
        })
    }

    /// The partition the tuple belongs to (by its stream's join column).
    pub fn classify(&mut self, tuple: &Tuple) -> Result<PartitionId> {
        let s = tuple.stream().index();
        let column = *self
            .join_columns
            .get(s)
            .ok_or_else(|| DcapeError::state(format!("stream {} not in split", tuple.stream())))?;
        let key = tuple
            .get(column)
            .ok_or_else(|| DcapeError::state("tuple lacks join column"))?;
        self.classified += 1;
        self.admitted_watermark = self.admitted_watermark.max(tuple.ts());
        Ok(self.partitioner.partition_of(key))
    }

    /// Tuples classified so far.
    pub fn classified(&self) -> u64 {
        self.classified
    }

    /// The per-stream low watermark admitted through this split: the
    /// highest timestamp classified so far. Drivers combine it with
    /// [`PlacementMap::purge_horizon`](crate::placement::PlacementMap::purge_horizon)
    /// to derive the watermark-driven purge horizon
    /// `min(admitted watermark, oldest buffered in-flight)`.
    pub fn admitted_watermark(&self) -> VirtualTime {
        self.admitted_watermark
    }

    /// The underlying partitioner.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    #[test]
    fn classifies_by_per_stream_column() {
        // Stream 0 joins on column 0; stream 1 on column 1.
        let mut split = SplitOperator::new(Partitioner::modulo(8), vec![0, 1]).unwrap();
        let t0 = TupleBuilder::new(StreamId(0))
            .value(5i64)
            .value(99i64)
            .build();
        let t1 = TupleBuilder::new(StreamId(1))
            .value(99i64)
            .value(5i64)
            .build();
        assert_eq!(split.classify(&t0).unwrap(), PartitionId(5));
        assert_eq!(split.classify(&t1).unwrap(), PartitionId(5));
        assert_eq!(split.classified(), 2);
        assert_eq!(split.partitioner().num_partitions(), 8);
    }

    #[test]
    fn admitted_watermark_tracks_classified_timestamps() {
        use dcape_common::time::VirtualTime;
        let mut split = SplitOperator::new(Partitioner::modulo(8), vec![0]).unwrap();
        assert_eq!(split.admitted_watermark(), VirtualTime::ZERO);
        let t = TupleBuilder::new(StreamId(0))
            .ts(VirtualTime::from_millis(120))
            .value(1i64)
            .build();
        split.classify(&t).unwrap();
        assert_eq!(split.admitted_watermark(), VirtualTime::from_millis(120));
        // Nondecreasing: an equal-or-later tuple advances, never regresses.
        let t2 = TupleBuilder::new(StreamId(0))
            .ts(VirtualTime::from_millis(150))
            .value(2i64)
            .build();
        split.classify(&t2).unwrap();
        assert_eq!(split.admitted_watermark(), VirtualTime::from_millis(150));
    }

    #[test]
    fn rejects_unknown_stream_and_missing_column() {
        let mut split = SplitOperator::new(Partitioner::modulo(4), vec![0]).unwrap();
        let bad_stream = TupleBuilder::new(StreamId(3)).value(1i64).build();
        assert!(split.classify(&bad_stream).is_err());
        let mut split2 = SplitOperator::new(Partitioner::modulo(4), vec![2]).unwrap();
        let short = TupleBuilder::new(StreamId(0)).value(1i64).build();
        assert!(split2.classify(&short).is_err());
    }

    #[test]
    fn empty_split_rejected() {
        assert!(SplitOperator::new(Partitioner::modulo(4), vec![]).is_err());
    }
}
