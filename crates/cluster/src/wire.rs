//! Binary wire format for the socket runtime.
//!
//! Every protocol message of [`crate::messages`] — plus the session
//! frames the socket runtime adds (`Hello`, `Welcome`, `Relay`) — has a
//! hand-rolled encoding built from the same primitives as the spill
//! segment format (`dcape-storage::codec`): little-endian scalars and
//! LEB128 varints, no external serialization dependency.
//!
//! ## Framing
//!
//! ```text
//! frame   := len:u32le payload trailer:u32le
//! payload := seq:varint kind:u8 body
//! trailer := len ^ LEN_CHECK
//! ```
//!
//! The trailer is the PR-5 corruption-detection idea applied to the
//! transport: the receiver re-derives the expected trailer from the
//! header it acted on, so a torn or misframed stream is detected at the
//! frame boundary instead of desynchronizing the decoder. (The chaos
//! layer's *semantic* corrupt-length fault still rides inside
//! `InstallStates::declared_bytes`, exactly as on the threaded runtime —
//! a trailer mismatch means real transport corruption and is fatal for
//! the connection.)
//!
//! `seq` is the coordinator's per-engine frame sequence number (1-based;
//! `0` marks unsequenced worker→coordinator traffic). The coordinator
//! retains every sequenced frame it ever sent, so a respawned worker can
//! be replayed deterministically from the beginning — see
//! [`crate::runtime::socket`].

use std::io::{Read, Write};

use bytes::Buf;

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;
use dcape_engine::config::{CostModel, EngineConfig, MJoinConfig, StateLayout};
use dcape_engine::spill::policy::VictimPolicy;
use dcape_engine::state::productivity::ProductivityEstimator;
use dcape_engine::stats::EngineStatsReport;
use dcape_metrics::journal::{AdaptEvent, CountersSnapshot, JournalEntry, SpillTrigger};
use dcape_storage::codec::{decode_tuple, encode_tuple, get_varint, put_varint};
use dcape_storage::{DiskModel, SegmentCodec, SpilledGroup};

use crate::faults::FaultConfig;
use crate::messages::{FromEngine, GroupTransfer, ToEngine};

/// XOR mask for the frame trailer, so an all-zero stream does not parse
/// as an endless run of empty frames.
pub const LEN_CHECK: u32 = 0xA5C3_3C5A;

/// Upper bound on one frame's payload; anything larger is treated as a
/// desynchronized or corrupted stream.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// Process exit code a worker uses for a chaos-injected crash-restart;
/// the coordinator respawns workers that die with it (or by signal) and
/// fails the run on anything else but a clean exit.
pub const CRASH_EXIT: i32 = 86;

// Frame kind tags. Coordinator → worker (sequenced):
const K_DATA: u8 = 0x01;
const K_DATA_BATCH: u8 = 0x02;
const K_CPTV: u8 = 0x03;
const K_SEND_STATES: u8 = 0x04;
const K_INSTALL_STATES: u8 = 0x05;
const K_ABORT_ROUND: u8 = 0x06;
const K_RESUME: u8 = 0x07;
const K_START_SPILL: u8 = 0x08;
const K_REPORT_STATS: u8 = 0x09;
const K_TICK: u8 = 0x0A;
const K_PREPARE_CLEANUP: u8 = 0x0B;
const K_FORWARDED_SEGMENTS: u8 = 0x0C;
const K_START_CLEANUP: u8 = 0x0D;
const K_BEGIN_DRAIN: u8 = 0x0E;
const K_FENCE_NOTICE: u8 = 0x0F;
// Worker → coordinator (unsequenced):
const K_PTV: u8 = 0x20;
const K_TRANSFER_ACK: u8 = 0x21;
const K_STATS: u8 = 0x22;
const K_CLEANUP_READY: u8 = 0x23;
const K_CLEANUP_DONE: u8 = 0x24;
const K_DRAIN_STATE: u8 = 0x25;
const K_JOIN_READY: u8 = 0x26;
// Session:
const K_HELLO: u8 = 0x30;
const K_WELCOME: u8 = 0x31;
const K_RELAY: u8 = 0x32;

/// Worker → coordinator handshake, first frame on every connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// The engine this worker hosts.
    pub engine: EngineId,
    /// Highest frame sequence number the worker has already applied
    /// (always 0 today: a respawned worker starts from scratch and the
    /// coordinator replays its full history).
    pub resume_from: u64,
}

/// Coordinator → worker handshake reply: the full engine configuration,
/// so `dcape-node` needs nothing on its command line beyond an address
/// and an engine id.
#[derive(Debug, Clone)]
pub struct Welcome {
    /// The engine id the coordinator expects on this connection.
    pub engine: EngineId,
    /// Cluster size (diagnostics only — relayed peer messages carry
    /// explicit targets).
    pub num_engines: u16,
    /// The engine configuration to instantiate.
    pub config: EngineConfig,
    /// Whether to keep an adaptation-event journal.
    pub journal: bool,
    /// Whether results are counted span-wise (count-first sink).
    pub count_first: bool,
    /// Seed of the deterministic fault plan.
    pub fault_seed: u64,
    /// Rates of the deterministic fault plan.
    pub faults: FaultConfig,
    /// Frames with `seq <= replay_until` are replayed history: the
    /// worker must process them *without* consulting the fault plan, or
    /// a crash-restart fault would deterministically re-fire on every
    /// respawn and the worker could never get past it.
    pub replay_until: u64,
}

/// Anything that can travel in one frame.
#[derive(Debug)]
pub enum WireMsg {
    /// A coordinator → worker protocol message.
    Engine(ToEngine),
    /// A worker → coordinator protocol message.
    Coord(FromEngine),
    /// Worker handshake.
    Hello(Hello),
    /// Coordinator handshake reply.
    Welcome(Box<Welcome>),
    /// A worker-originated peer message (`InstallStates`,
    /// `ForwardedSegments`), relayed through the coordinator's star
    /// topology to engine `to`.
    Relay {
        /// Destination engine.
        to: EngineId,
        /// The peer message.
        msg: ToEngine,
    },
}

// ---------------------------------------------------------------------
// Primitive helpers.

fn put_bool(buf: &mut Vec<u8>, v: bool) {
    buf.push(v as u8);
}

fn get_bool(buf: &mut &[u8]) -> Result<bool> {
    if buf.is_empty() {
        return Err(DcapeError::codec("wire: unexpected end of input"));
    }
    let b = buf[0];
    buf.advance(1);
    Ok(b != 0)
}

fn get_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(DcapeError::codec("wire: unexpected end of input"));
    }
    let b = buf[0];
    buf.advance(1);
    Ok(b)
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(buf: &mut &[u8]) -> Result<f64> {
    if buf.len() < 8 {
        return Err(DcapeError::codec("wire: unexpected end of input"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[..8]);
    buf.advance(8);
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

fn put_time(buf: &mut Vec<u8>, t: VirtualTime) {
    put_varint(buf, t.as_millis());
}

fn get_time(buf: &mut &[u8]) -> Result<VirtualTime> {
    Ok(VirtualTime::from_millis(get_varint(buf)?))
}

fn put_dur(buf: &mut Vec<u8>, d: VirtualDuration) {
    put_varint(buf, d.as_millis());
}

fn get_dur(buf: &mut &[u8]) -> Result<VirtualDuration> {
    Ok(VirtualDuration::from_millis(get_varint(buf)?))
}

fn put_engine(buf: &mut Vec<u8>, e: EngineId) {
    put_varint(buf, e.0 as u64);
}

fn get_engine(buf: &mut &[u8]) -> Result<EngineId> {
    let v = get_varint(buf)?;
    u16::try_from(v)
        .map(EngineId)
        .map_err(|_| DcapeError::codec("wire: engine id out of range"))
}

fn put_pid(buf: &mut Vec<u8>, p: PartitionId) {
    put_varint(buf, p.0 as u64);
}

fn get_pid(buf: &mut &[u8]) -> Result<PartitionId> {
    let v = get_varint(buf)?;
    u32::try_from(v)
        .map(PartitionId)
        .map_err(|_| DcapeError::codec("wire: partition id out of range"))
}

fn get_count(buf: &mut &[u8], what: &str) -> Result<usize> {
    let n = get_varint(buf)? as usize;
    // Every counted element encodes to at least one byte; a count that
    // exceeds the remaining payload is garbage, not a huge message.
    if n > buf.len() {
        return Err(DcapeError::codec(format!("wire: implausible {what} count")));
    }
    Ok(n)
}

fn put_parts(buf: &mut Vec<u8>, parts: &[PartitionId]) {
    put_varint(buf, parts.len() as u64);
    for p in parts {
        put_pid(buf, *p);
    }
}

fn get_parts(buf: &mut &[u8]) -> Result<Vec<PartitionId>> {
    let n = get_count(buf, "partition")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_pid(buf)?);
    }
    Ok(out)
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String> {
    let n = get_count(buf, "string byte")?;
    let s = std::str::from_utf8(&buf[..n])
        .map_err(|_| DcapeError::codec("wire: invalid utf-8 string"))?
        .to_owned();
    buf.advance(n);
    Ok(s)
}

/// Journal events carry `&'static str` codes; known codes decode to the
/// program's own literals (pointer-stable, allocation-free), unknown
/// ones — a newer peer, a fuzzer — are leaked once and kept.
fn intern(s: String) -> &'static str {
    const KNOWN: &[&str] = &[
        // Fault names (FaultDecision::fault_name + stall/crash).
        "drop",
        "duplicate",
        "delay",
        "corrupt_length",
        "stall",
        "crash_restart",
        // Edge names (FaultEdge::name).
        "cptv",
        "ptv",
        "send_states",
        "install_states",
        "transfer_ack",
        "cleanup_segments",
        // Protocol warning codes.
        "corrupt_transfer_discarded",
        "drain_degraded_to_spill",
        "drain_remainder_remapped",
        "drain_started",
        "duplicate_install",
        "duplicate_join_ready",
        "peer_declared_dead",
        "phase_timeout_retry",
        "relocation_degraded_to_spill",
        "round_aborted",
        "round_unwound",
        "send_to_fenced_dropped",
        "stale_ack_after_quiesce",
        "stale_cptv",
        "stale_drain_state",
        "stale_ptv_after_quiesce",
        "stale_send_states",
        "stale_transfer_ack",
        "worker_respawned",
    ];
    for k in KNOWN {
        if *k == s {
            return k;
        }
    }
    Box::leak(s.into_boxed_str())
}

fn get_static_str(buf: &mut &[u8]) -> Result<&'static str> {
    Ok(intern(get_str(buf)?))
}

// ---------------------------------------------------------------------
// Composite helpers.

fn put_tuple(buf: &mut Vec<u8>, t: &Tuple) {
    encode_tuple(buf, t);
}

fn get_tuple(buf: &mut &[u8]) -> Result<Tuple> {
    decode_tuple(buf)
}

fn put_group(buf: &mut Vec<u8>, g: &SpilledGroup) {
    let bytes = g.encode();
    put_varint(buf, bytes.len() as u64);
    buf.extend_from_slice(&bytes);
}

fn get_group(buf: &mut &[u8]) -> Result<SpilledGroup> {
    let n = get_count(buf, "segment byte")?;
    let g = SpilledGroup::decode(bytes::Bytes::copy_from_slice(&buf[..n]))?;
    buf.advance(n);
    Ok(g)
}

fn put_transfer(buf: &mut Vec<u8>, g: &GroupTransfer) {
    put_group(buf, &g.snapshot);
    put_varint(buf, g.output_count);
    put_bool(buf, g.purge_protect);
}

fn get_transfer(buf: &mut &[u8]) -> Result<GroupTransfer> {
    Ok(GroupTransfer {
        snapshot: get_group(buf)?,
        output_count: get_varint(buf)?,
        purge_protect: get_bool(buf)?,
    })
}

fn put_stats_report(buf: &mut Vec<u8>, r: &EngineStatsReport) {
    put_engine(buf, r.engine);
    put_time(buf, r.at);
    put_varint(buf, r.memory_used);
    put_varint(buf, r.memory_budget);
    put_varint(buf, r.num_groups as u64);
    put_varint(buf, r.window_output);
    put_varint(buf, r.total_output);
    put_f64(buf, r.avg_productivity_rate);
    put_varint(buf, r.spilled_bytes);
    put_varint(buf, r.spill_count);
}

fn get_stats_report(buf: &mut &[u8]) -> Result<EngineStatsReport> {
    Ok(EngineStatsReport {
        engine: get_engine(buf)?,
        at: get_time(buf)?,
        memory_used: get_varint(buf)?,
        memory_budget: get_varint(buf)?,
        num_groups: get_varint(buf)? as usize,
        window_output: get_varint(buf)?,
        total_output: get_varint(buf)?,
        avg_productivity_rate: get_f64(buf)?,
        spilled_bytes: get_varint(buf)?,
        spill_count: get_varint(buf)?,
    })
}

fn put_counters(buf: &mut Vec<u8>, c: &CountersSnapshot) {
    for v in [
        c.tuples_routed,
        c.spill_bytes,
        c.spill_bytes_written,
        c.spill_bytes_read,
        c.relocation_bytes,
        c.transfer_bytes,
        c.buffered_in_flight,
        c.purges_deferred,
        c.watermark_held_ms,
        c.replayed_in_order,
        c.faults_injected,
        c.msgs_retried,
        c.rounds_aborted,
        c.watermark_released_on_abort,
        c.rebalance_moves,
        c.events_recorded,
        c.events_dropped,
    ] {
        put_varint(buf, v);
    }
}

fn get_counters(buf: &mut &[u8]) -> Result<CountersSnapshot> {
    Ok(CountersSnapshot {
        tuples_routed: get_varint(buf)?,
        spill_bytes: get_varint(buf)?,
        spill_bytes_written: get_varint(buf)?,
        spill_bytes_read: get_varint(buf)?,
        relocation_bytes: get_varint(buf)?,
        transfer_bytes: get_varint(buf)?,
        buffered_in_flight: get_varint(buf)?,
        purges_deferred: get_varint(buf)?,
        watermark_held_ms: get_varint(buf)?,
        replayed_in_order: get_varint(buf)?,
        faults_injected: get_varint(buf)?,
        msgs_retried: get_varint(buf)?,
        rounds_aborted: get_varint(buf)?,
        watermark_released_on_abort: get_varint(buf)?,
        rebalance_moves: get_varint(buf)?,
        events_recorded: get_varint(buf)?,
        events_dropped: get_varint(buf)?,
    })
}

fn put_event(buf: &mut Vec<u8>, e: &AdaptEvent) {
    match e {
        AdaptEvent::SpillDecision {
            engine,
            trigger,
            groups,
            state_bytes,
            encoded_bytes,
            memory_used,
            memory_budget,
        } => {
            buf.push(0);
            put_engine(buf, *engine);
            buf.push(match trigger {
                SpillTrigger::MemoryThreshold => 0,
                SpillTrigger::Forced => 1,
            });
            put_parts(buf, groups);
            put_varint(buf, *state_bytes);
            put_varint(buf, *encoded_bytes);
            put_varint(buf, *memory_used);
            put_varint(buf, *memory_budget);
        }
        AdaptEvent::RelocationStep {
            round,
            step,
            sender,
            receiver,
            parts,
            bytes,
            buffered_tuples,
            load_ratio,
        } => {
            buf.push(1);
            put_varint(buf, *round);
            buf.push(*step);
            put_engine(buf, *sender);
            put_engine(buf, *receiver);
            put_parts(buf, parts);
            put_varint(buf, *bytes);
            put_varint(buf, *buffered_tuples);
            put_f64(buf, *load_ratio);
        }
        AdaptEvent::CleanupPhase {
            engine,
            group,
            missing_results,
            scanned_tuples,
            disk_bytes_read,
        } => {
            buf.push(2);
            put_engine(buf, *engine);
            put_pid(buf, *group);
            put_varint(buf, *missing_results);
            put_varint(buf, *scanned_tuples);
            put_varint(buf, *disk_bytes_read);
        }
        AdaptEvent::StatsSample {
            engines,
            max_load,
            min_load,
            load_ratio,
            productivity_ratio,
            memory_used,
            memory_budget,
        } => {
            buf.push(3);
            put_varint(buf, *engines as u64);
            put_f64(buf, *max_load);
            put_f64(buf, *min_load);
            put_f64(buf, *load_ratio);
            put_f64(buf, *productivity_ratio);
            put_varint(buf, *memory_used);
            put_varint(buf, *memory_budget);
        }
        AdaptEvent::MemoryPressure {
            engine,
            used,
            budget,
        } => {
            buf.push(4);
            put_engine(buf, *engine);
            put_varint(buf, *used);
            put_varint(buf, *budget);
        }
        AdaptEvent::FaultInjected {
            fault,
            edge,
            round,
            attempt,
        } => {
            buf.push(5);
            put_str(buf, fault);
            put_str(buf, edge);
            put_varint(buf, *round);
            put_varint(buf, *attempt as u64);
        }
        AdaptEvent::ProtocolWarning {
            code,
            engine,
            round,
            detail,
        } => {
            buf.push(6);
            put_str(buf, code);
            put_engine(buf, *engine);
            put_varint(buf, *round);
            put_varint(buf, *detail);
        }
        AdaptEvent::EngineJoined { engine, members } => {
            buf.push(7);
            put_engine(buf, *engine);
            put_varint(buf, *members as u64);
        }
        AdaptEvent::EngineDrained { engine, moves } => {
            buf.push(8);
            put_engine(buf, *engine);
            put_varint(buf, *moves);
        }
    }
}

fn get_event(buf: &mut &[u8]) -> Result<AdaptEvent> {
    Ok(match get_u8(buf)? {
        0 => AdaptEvent::SpillDecision {
            engine: get_engine(buf)?,
            trigger: match get_u8(buf)? {
                0 => SpillTrigger::MemoryThreshold,
                1 => SpillTrigger::Forced,
                t => return Err(DcapeError::codec(format!("wire: bad spill trigger {t}"))),
            },
            groups: get_parts(buf)?,
            state_bytes: get_varint(buf)?,
            encoded_bytes: get_varint(buf)?,
            memory_used: get_varint(buf)?,
            memory_budget: get_varint(buf)?,
        },
        1 => AdaptEvent::RelocationStep {
            round: get_varint(buf)?,
            step: get_u8(buf)?,
            sender: get_engine(buf)?,
            receiver: get_engine(buf)?,
            parts: get_parts(buf)?,
            bytes: get_varint(buf)?,
            buffered_tuples: get_varint(buf)?,
            load_ratio: get_f64(buf)?,
        },
        2 => AdaptEvent::CleanupPhase {
            engine: get_engine(buf)?,
            group: get_pid(buf)?,
            missing_results: get_varint(buf)?,
            scanned_tuples: get_varint(buf)?,
            disk_bytes_read: get_varint(buf)?,
        },
        3 => AdaptEvent::StatsSample {
            engines: get_varint(buf)? as u32,
            max_load: get_f64(buf)?,
            min_load: get_f64(buf)?,
            load_ratio: get_f64(buf)?,
            productivity_ratio: get_f64(buf)?,
            memory_used: get_varint(buf)?,
            memory_budget: get_varint(buf)?,
        },
        4 => AdaptEvent::MemoryPressure {
            engine: get_engine(buf)?,
            used: get_varint(buf)?,
            budget: get_varint(buf)?,
        },
        5 => AdaptEvent::FaultInjected {
            fault: get_static_str(buf)?,
            edge: get_static_str(buf)?,
            round: get_varint(buf)?,
            attempt: get_varint(buf)? as u32,
        },
        6 => AdaptEvent::ProtocolWarning {
            code: get_static_str(buf)?,
            engine: get_engine(buf)?,
            round: get_varint(buf)?,
            detail: get_varint(buf)?,
        },
        7 => AdaptEvent::EngineJoined {
            engine: get_engine(buf)?,
            members: get_varint(buf)? as u32,
        },
        8 => AdaptEvent::EngineDrained {
            engine: get_engine(buf)?,
            moves: get_varint(buf)?,
        },
        t => return Err(DcapeError::codec(format!("wire: bad event tag {t}"))),
    })
}

fn put_journal(buf: &mut Vec<u8>, entries: &[JournalEntry]) {
    put_varint(buf, entries.len() as u64);
    for e in entries {
        put_time(buf, e.at);
        put_varint(buf, e.seq);
        put_event(buf, &e.event);
    }
}

fn get_journal(buf: &mut &[u8]) -> Result<Vec<JournalEntry>> {
    let n = get_count(buf, "journal entry")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(JournalEntry {
            at: get_time(buf)?,
            seq: get_varint(buf)?,
            event: get_event(buf)?,
        });
    }
    Ok(out)
}

fn put_engine_config(buf: &mut Vec<u8>, c: &EngineConfig) {
    put_varint(buf, c.join.num_streams as u64);
    put_varint(buf, c.join.join_columns.len() as u64);
    for col in &c.join.join_columns {
        put_varint(buf, *col as u64);
    }
    match c.join.window {
        None => put_bool(buf, false),
        Some(w) => {
            put_bool(buf, true);
            put_dur(buf, w);
        }
    }
    put_varint(buf, c.memory_budget);
    put_varint(buf, c.spill_threshold);
    put_f64(buf, c.spill_fraction);
    buf.push(match c.victim_policy {
        VictimPolicy::Random => 0,
        VictimPolicy::LargestFirst => 1,
        VictimPolicy::SmallestFirst => 2,
        VictimPolicy::LeastProductive => 3,
        VictimPolicy::MostProductive => 4,
    });
    put_dur(buf, c.ss_timer);
    put_varint(buf, c.cost.cleanup_scan_us_per_tuple);
    put_varint(buf, c.cost.cleanup_emit_us_per_result);
    put_varint(buf, c.cost.disk.seek_ms);
    put_varint(buf, c.cost.disk.bytes_per_ms);
    match c.estimator {
        ProductivityEstimator::Cumulative => buf.push(0),
        ProductivityEstimator::Decaying { alpha } => {
            buf.push(1);
            put_f64(buf, alpha);
        }
    }
    match c.reactivate_watermark {
        None => put_bool(buf, false),
        Some(w) => {
            put_bool(buf, true);
            put_f64(buf, w);
        }
    }
    buf.push(match c.join.layout {
        StateLayout::Row => 0,
        StateLayout::Columnar => 1,
    });
    buf.push(match c.spill_codec {
        SegmentCodec::Rows => 0,
        SegmentCodec::Columns => 1,
    });
}

fn get_engine_config(buf: &mut &[u8]) -> Result<EngineConfig> {
    let num_streams = get_varint(buf)? as usize;
    let ncols = get_count(buf, "join column")?;
    let mut join_columns = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        join_columns.push(get_varint(buf)? as usize);
    }
    let window = if get_bool(buf)? {
        Some(get_dur(buf)?)
    } else {
        None
    };
    let memory_budget = get_varint(buf)?;
    let spill_threshold = get_varint(buf)?;
    let spill_fraction = get_f64(buf)?;
    let victim_policy = match get_u8(buf)? {
        0 => VictimPolicy::Random,
        1 => VictimPolicy::LargestFirst,
        2 => VictimPolicy::SmallestFirst,
        3 => VictimPolicy::LeastProductive,
        4 => VictimPolicy::MostProductive,
        t => return Err(DcapeError::codec(format!("wire: bad victim policy {t}"))),
    };
    let ss_timer = get_dur(buf)?;
    let cost = CostModel {
        cleanup_scan_us_per_tuple: get_varint(buf)?,
        cleanup_emit_us_per_result: get_varint(buf)?,
        disk: DiskModel {
            seek_ms: get_varint(buf)?,
            bytes_per_ms: get_varint(buf)?,
        },
    };
    let estimator = match get_u8(buf)? {
        0 => ProductivityEstimator::Cumulative,
        1 => ProductivityEstimator::Decaying {
            alpha: get_f64(buf)?,
        },
        t => return Err(DcapeError::codec(format!("wire: bad estimator tag {t}"))),
    };
    let reactivate_watermark = if get_bool(buf)? {
        Some(get_f64(buf)?)
    } else {
        None
    };
    let layout = match get_u8(buf)? {
        0 => StateLayout::Row,
        1 => StateLayout::Columnar,
        t => return Err(DcapeError::codec(format!("wire: bad state layout {t}"))),
    };
    let spill_codec = match get_u8(buf)? {
        0 => SegmentCodec::Rows,
        1 => SegmentCodec::Columns,
        t => return Err(DcapeError::codec(format!("wire: bad spill codec {t}"))),
    };
    Ok(EngineConfig {
        join: MJoinConfig {
            num_streams,
            join_columns,
            window,
            layout,
        },
        memory_budget,
        spill_threshold,
        spill_fraction,
        victim_policy,
        ss_timer,
        cost,
        estimator,
        reactivate_watermark,
        spill_codec,
    })
}

fn put_fault_config(buf: &mut Vec<u8>, c: &FaultConfig) {
    put_f64(buf, c.drop_rate);
    put_f64(buf, c.duplicate_rate);
    put_f64(buf, c.delay_rate);
    put_f64(buf, c.corrupt_rate);
    put_f64(buf, c.crash_rate);
    put_f64(buf, c.stall_rate);
    put_varint(buf, c.max_delay_ms);
}

fn get_fault_config(buf: &mut &[u8]) -> Result<FaultConfig> {
    Ok(FaultConfig {
        drop_rate: get_f64(buf)?,
        duplicate_rate: get_f64(buf)?,
        delay_rate: get_f64(buf)?,
        corrupt_rate: get_f64(buf)?,
        crash_rate: get_f64(buf)?,
        stall_rate: get_f64(buf)?,
        max_delay_ms: get_varint(buf)?,
    })
}

// ---------------------------------------------------------------------
// Message bodies.

fn put_to_engine(buf: &mut Vec<u8>, msg: &ToEngine) {
    match msg {
        ToEngine::Data { pid, tuple } => {
            buf.push(K_DATA);
            put_pid(buf, *pid);
            put_tuple(buf, tuple);
        }
        ToEngine::DataBatch { tuples } => {
            buf.push(K_DATA_BATCH);
            put_varint(buf, tuples.len() as u64);
            for (pid, tuple) in tuples {
                put_pid(buf, *pid);
                put_tuple(buf, tuple);
            }
        }
        ToEngine::Cptv {
            round,
            amount,
            attempt,
        } => {
            buf.push(K_CPTV);
            put_varint(buf, *round);
            put_varint(buf, *amount);
            put_varint(buf, *attempt as u64);
        }
        ToEngine::SendStates {
            round,
            parts,
            receiver,
            attempt,
        } => {
            buf.push(K_SEND_STATES);
            put_varint(buf, *round);
            put_parts(buf, parts);
            put_engine(buf, *receiver);
            put_varint(buf, *attempt as u64);
        }
        ToEngine::InstallStates {
            round,
            sender,
            groups,
            attempt,
            declared_bytes,
        } => {
            buf.push(K_INSTALL_STATES);
            put_varint(buf, *round);
            put_engine(buf, *sender);
            put_varint(buf, groups.len() as u64);
            for g in groups {
                put_transfer(buf, g);
            }
            put_varint(buf, *attempt as u64);
            put_varint(buf, *declared_bytes);
        }
        ToEngine::AbortRound { round } => {
            buf.push(K_ABORT_ROUND);
            put_varint(buf, *round);
        }
        ToEngine::Resume { round, watermark } => {
            buf.push(K_RESUME);
            put_varint(buf, *round);
            put_time(buf, *watermark);
        }
        ToEngine::StartSpill { amount } => {
            buf.push(K_START_SPILL);
            put_varint(buf, *amount);
        }
        ToEngine::ReportStats { now } => {
            buf.push(K_REPORT_STATS);
            put_time(buf, *now);
        }
        ToEngine::Tick { now, horizon } => {
            buf.push(K_TICK);
            put_time(buf, *now);
            put_time(buf, *horizon);
        }
        ToEngine::PrepareCleanup { owners } => {
            buf.push(K_PREPARE_CLEANUP);
            put_varint(buf, owners.len() as u64);
            for o in owners {
                put_engine(buf, *o);
            }
        }
        ToEngine::ForwardedSegments { pid, segments } => {
            buf.push(K_FORWARDED_SEGMENTS);
            put_pid(buf, *pid);
            put_varint(buf, segments.len() as u64);
            for s in segments {
                put_group(buf, s);
            }
        }
        ToEngine::StartCleanup => buf.push(K_START_CLEANUP),
        ToEngine::BeginDrain => buf.push(K_BEGIN_DRAIN),
        ToEngine::FenceNotice { engine } => {
            buf.push(K_FENCE_NOTICE);
            put_engine(buf, *engine);
        }
    }
}

fn get_to_engine(kind: u8, buf: &mut &[u8]) -> Result<ToEngine> {
    Ok(match kind {
        K_DATA => ToEngine::Data {
            pid: get_pid(buf)?,
            tuple: get_tuple(buf)?,
        },
        K_DATA_BATCH => {
            let n = get_count(buf, "batch tuple")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                let pid = get_pid(buf)?;
                items.push((pid, get_tuple(buf)?));
            }
            ToEngine::DataBatch {
                tuples: items.into(),
            }
        }
        K_CPTV => ToEngine::Cptv {
            round: get_varint(buf)?,
            amount: get_varint(buf)?,
            attempt: get_varint(buf)? as u32,
        },
        K_SEND_STATES => ToEngine::SendStates {
            round: get_varint(buf)?,
            parts: get_parts(buf)?,
            receiver: get_engine(buf)?,
            attempt: get_varint(buf)? as u32,
        },
        K_INSTALL_STATES => {
            let round = get_varint(buf)?;
            let sender = get_engine(buf)?;
            let n = get_count(buf, "group transfer")?;
            let mut groups = Vec::with_capacity(n);
            for _ in 0..n {
                groups.push(get_transfer(buf)?);
            }
            ToEngine::InstallStates {
                round,
                sender,
                groups,
                attempt: get_varint(buf)? as u32,
                declared_bytes: get_varint(buf)?,
            }
        }
        K_ABORT_ROUND => ToEngine::AbortRound {
            round: get_varint(buf)?,
        },
        K_RESUME => ToEngine::Resume {
            round: get_varint(buf)?,
            watermark: get_time(buf)?,
        },
        K_START_SPILL => ToEngine::StartSpill {
            amount: get_varint(buf)?,
        },
        K_REPORT_STATS => ToEngine::ReportStats {
            now: get_time(buf)?,
        },
        K_TICK => ToEngine::Tick {
            now: get_time(buf)?,
            horizon: get_time(buf)?,
        },
        K_PREPARE_CLEANUP => {
            let n = get_count(buf, "owner")?;
            let mut owners = Vec::with_capacity(n);
            for _ in 0..n {
                owners.push(get_engine(buf)?);
            }
            ToEngine::PrepareCleanup { owners }
        }
        K_FORWARDED_SEGMENTS => {
            let pid = get_pid(buf)?;
            let n = get_count(buf, "segment")?;
            let mut segments = Vec::with_capacity(n);
            for _ in 0..n {
                segments.push(get_group(buf)?);
            }
            ToEngine::ForwardedSegments { pid, segments }
        }
        K_START_CLEANUP => ToEngine::StartCleanup,
        K_BEGIN_DRAIN => ToEngine::BeginDrain,
        K_FENCE_NOTICE => ToEngine::FenceNotice {
            engine: get_engine(buf)?,
        },
        t => return Err(DcapeError::codec(format!("wire: bad ToEngine kind {t:#x}"))),
    })
}

fn put_from_engine(buf: &mut Vec<u8>, msg: &FromEngine) {
    match msg {
        FromEngine::Ptv {
            round,
            engine,
            parts,
        } => {
            buf.push(K_PTV);
            put_varint(buf, *round);
            put_engine(buf, *engine);
            put_parts(buf, parts);
        }
        FromEngine::TransferAck {
            round,
            engine,
            bytes,
        } => {
            buf.push(K_TRANSFER_ACK);
            put_varint(buf, *round);
            put_engine(buf, *engine);
            put_varint(buf, *bytes);
        }
        FromEngine::Stats(report) => {
            buf.push(K_STATS);
            put_stats_report(buf, report);
        }
        FromEngine::CleanupReady { engine, forwarded } => {
            buf.push(K_CLEANUP_READY);
            put_engine(buf, *engine);
            put_varint(buf, *forwarded as u64);
        }
        FromEngine::CleanupDone {
            engine,
            runtime_output,
            cleanup_output,
            spill_count,
            cleanup_cost_ms,
            journal,
            journal_counters,
        } => {
            buf.push(K_CLEANUP_DONE);
            put_engine(buf, *engine);
            put_varint(buf, *runtime_output);
            put_varint(buf, *cleanup_output);
            put_varint(buf, *spill_count);
            put_varint(buf, *cleanup_cost_ms);
            put_journal(buf, journal);
            put_counters(buf, journal_counters);
        }
        FromEngine::DrainState {
            engine,
            resident_bytes,
        } => {
            buf.push(K_DRAIN_STATE);
            put_engine(buf, *engine);
            put_varint(buf, *resident_bytes);
        }
        FromEngine::JoinReady { engine } => {
            buf.push(K_JOIN_READY);
            put_engine(buf, *engine);
        }
    }
}

fn get_from_engine(kind: u8, buf: &mut &[u8]) -> Result<FromEngine> {
    Ok(match kind {
        K_PTV => FromEngine::Ptv {
            round: get_varint(buf)?,
            engine: get_engine(buf)?,
            parts: get_parts(buf)?,
        },
        K_TRANSFER_ACK => FromEngine::TransferAck {
            round: get_varint(buf)?,
            engine: get_engine(buf)?,
            bytes: get_varint(buf)?,
        },
        K_STATS => FromEngine::Stats(get_stats_report(buf)?),
        K_CLEANUP_READY => FromEngine::CleanupReady {
            engine: get_engine(buf)?,
            forwarded: get_varint(buf)? as usize,
        },
        K_CLEANUP_DONE => FromEngine::CleanupDone {
            engine: get_engine(buf)?,
            runtime_output: get_varint(buf)?,
            cleanup_output: get_varint(buf)?,
            spill_count: get_varint(buf)?,
            cleanup_cost_ms: get_varint(buf)?,
            journal: get_journal(buf)?,
            journal_counters: get_counters(buf)?,
        },
        K_DRAIN_STATE => FromEngine::DrainState {
            engine: get_engine(buf)?,
            resident_bytes: get_varint(buf)?,
        },
        K_JOIN_READY => FromEngine::JoinReady {
            engine: get_engine(buf)?,
        },
        t => {
            return Err(DcapeError::codec(format!(
                "wire: bad FromEngine kind {t:#x}"
            )))
        }
    })
}

/// Encode one message (kind byte + body) into `buf`.
pub fn encode_msg(msg: &WireMsg, buf: &mut Vec<u8>) {
    match msg {
        WireMsg::Engine(m) => put_to_engine(buf, m),
        WireMsg::Coord(m) => put_from_engine(buf, m),
        WireMsg::Hello(h) => {
            buf.push(K_HELLO);
            put_engine(buf, h.engine);
            put_varint(buf, h.resume_from);
        }
        WireMsg::Welcome(w) => {
            buf.push(K_WELCOME);
            put_engine(buf, w.engine);
            put_varint(buf, w.num_engines as u64);
            put_engine_config(buf, &w.config);
            put_bool(buf, w.journal);
            put_bool(buf, w.count_first);
            buf.extend_from_slice(&w.fault_seed.to_le_bytes());
            put_fault_config(buf, &w.faults);
            put_varint(buf, w.replay_until);
        }
        WireMsg::Relay { to, msg } => {
            buf.push(K_RELAY);
            put_engine(buf, *to);
            put_to_engine(buf, msg);
        }
    }
}

/// Decode one message (kind byte + body) from `buf`, advancing it.
pub fn decode_msg(buf: &mut &[u8]) -> Result<WireMsg> {
    let kind = get_u8(buf)?;
    Ok(match kind {
        K_DATA..=K_FENCE_NOTICE => WireMsg::Engine(get_to_engine(kind, buf)?),
        K_PTV..=K_JOIN_READY => WireMsg::Coord(get_from_engine(kind, buf)?),
        K_HELLO => WireMsg::Hello(Hello {
            engine: get_engine(buf)?,
            resume_from: get_varint(buf)?,
        }),
        K_WELCOME => {
            let engine = get_engine(buf)?;
            let num_engines = u16::try_from(get_varint(buf)?)
                .map_err(|_| DcapeError::codec("wire: engine count out of range"))?;
            let config = get_engine_config(buf)?;
            let journal = get_bool(buf)?;
            let count_first = get_bool(buf)?;
            if buf.len() < 8 {
                return Err(DcapeError::codec("wire: unexpected end of input"));
            }
            let mut seed = [0u8; 8];
            seed.copy_from_slice(&buf[..8]);
            buf.advance(8);
            let fault_seed = u64::from_le_bytes(seed);
            let faults = get_fault_config(buf)?;
            let replay_until = get_varint(buf)?;
            WireMsg::Welcome(Box::new(Welcome {
                engine,
                num_engines,
                config,
                journal,
                count_first,
                fault_seed,
                faults,
                replay_until,
            }))
        }
        K_RELAY => {
            let to = get_engine(buf)?;
            let inner_kind = get_u8(buf)?;
            if !(K_DATA..=K_FENCE_NOTICE).contains(&inner_kind) {
                return Err(DcapeError::codec(format!(
                    "wire: bad relayed kind {inner_kind:#x}"
                )));
            }
            WireMsg::Relay {
                to,
                msg: get_to_engine(inner_kind, buf)?,
            }
        }
        t => return Err(DcapeError::codec(format!("wire: bad frame kind {t:#x}"))),
    })
}

// ---------------------------------------------------------------------
// Framing.

/// Encode a complete frame — header, `seq`-prefixed payload, trailer —
/// ready to be written to a stream in one `write_all`.
pub fn frame_bytes(seq: u64, msg: &WireMsg) -> Result<Vec<u8>> {
    let mut payload = Vec::with_capacity(64);
    put_varint(&mut payload, seq);
    encode_msg(msg, &mut payload);
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(DcapeError::codec("wire: frame exceeds MAX_FRAME_LEN"));
    }
    let len = payload.len() as u32;
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(&payload);
    out.extend_from_slice(&(len ^ LEN_CHECK).to_le_bytes());
    Ok(out)
}

/// Write one frame to `w` (no internal buffering; callers batch via
/// `BufWriter` if they care).
pub fn write_frame(w: &mut impl Write, seq: u64, msg: &WireMsg) -> Result<()> {
    let bytes = frame_bytes(seq, msg)?;
    w.write_all(&bytes).map_err(DcapeError::Io)?;
    w.flush().map_err(DcapeError::Io)
}

/// Read one frame from `r`. Returns `Ok(None)` on a clean end-of-stream
/// (the peer closed between frames); any mid-frame truncation, oversized
/// header, or trailer mismatch is an error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<(u64, WireMsg)>> {
    let mut hdr = [0u8; 4];
    let mut filled = 0usize;
    while filled < 4 {
        match r.read(&mut hdr[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(DcapeError::codec("wire: truncated frame header"));
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DcapeError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME_LEN {
        return Err(DcapeError::codec(format!(
            "wire: implausible frame length {len}"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(DcapeError::Io)?;
    let mut trailer = [0u8; 4];
    r.read_exact(&mut trailer).map_err(DcapeError::Io)?;
    if u32::from_le_bytes(trailer) != len ^ LEN_CHECK {
        return Err(DcapeError::codec(
            "wire: frame trailer mismatch (transport corruption)",
        ));
    }
    let mut slice = payload.as_slice();
    let seq = get_varint(&mut slice)?;
    let msg = decode_msg(&mut slice)?;
    if !slice.is_empty() {
        return Err(DcapeError::codec("wire: trailing bytes in frame"));
    }
    Ok(Some((seq, msg)))
}

/// Short lowercase tag for frame logs (`DCAPE_FRAME_LOG` artifacts).
pub fn msg_kind_name(msg: &WireMsg) -> &'static str {
    match msg {
        WireMsg::Engine(m) => match m {
            ToEngine::Data { .. } => "data",
            ToEngine::DataBatch { .. } => "data_batch",
            ToEngine::Cptv { .. } => "cptv",
            ToEngine::SendStates { .. } => "send_states",
            ToEngine::InstallStates { .. } => "install_states",
            ToEngine::AbortRound { .. } => "abort_round",
            ToEngine::Resume { .. } => "resume",
            ToEngine::StartSpill { .. } => "start_spill",
            ToEngine::ReportStats { .. } => "report_stats",
            ToEngine::Tick { .. } => "tick",
            ToEngine::PrepareCleanup { .. } => "prepare_cleanup",
            ToEngine::ForwardedSegments { .. } => "forwarded_segments",
            ToEngine::StartCleanup => "start_cleanup",
            ToEngine::BeginDrain => "begin_drain",
            ToEngine::FenceNotice { .. } => "fence_notice",
        },
        WireMsg::Coord(m) => match m {
            FromEngine::Ptv { .. } => "ptv",
            FromEngine::TransferAck { .. } => "transfer_ack",
            FromEngine::Stats(_) => "stats",
            FromEngine::CleanupReady { .. } => "cleanup_ready",
            FromEngine::CleanupDone { .. } => "cleanup_done",
            FromEngine::DrainState { .. } => "drain_state",
            FromEngine::JoinReady { .. } => "join_ready",
        },
        WireMsg::Hello(_) => "hello",
        WireMsg::Welcome(_) => "welcome",
        WireMsg::Relay { .. } => "relay",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn tuple(stream: u8, seq: u64) -> Tuple {
        TupleBuilder::new(StreamId(stream))
            .seq(seq)
            .ts(VirtualTime::from_millis(seq * 30))
            .value(seq as i64)
            .pad(128)
            .build()
    }

    fn group() -> SpilledGroup {
        let mut g = SpilledGroup::empty(PartitionId(7), 3);
        for s in 0..3u8 {
            for i in 0..4u64 {
                g.per_stream[s as usize].push(tuple(s, i));
            }
        }
        g
    }

    fn round_trip(msg: &WireMsg, seq: u64) -> (u64, WireMsg) {
        let bytes = frame_bytes(seq, msg).unwrap();
        let mut cursor = bytes.as_slice();
        let got = read_frame(&mut cursor).unwrap().unwrap();
        assert!(cursor.is_empty(), "frame must consume exactly its bytes");
        got
    }

    fn sample_to_engine() -> Vec<ToEngine> {
        let mut batch = dcape_common::batch::TupleBatch::new();
        batch.push(PartitionId(1), tuple(0, 1));
        batch.push(PartitionId(2), tuple(1, 2));
        vec![
            ToEngine::Data {
                pid: PartitionId(3),
                tuple: tuple(2, 9),
            },
            ToEngine::DataBatch { tuples: batch },
            ToEngine::Cptv {
                round: 5,
                amount: 1 << 20,
                attempt: 2,
            },
            ToEngine::SendStates {
                round: 5,
                parts: vec![PartitionId(1), PartitionId(9)],
                receiver: EngineId(1),
                attempt: 1,
            },
            ToEngine::InstallStates {
                round: 5,
                sender: EngineId(0),
                groups: vec![GroupTransfer {
                    snapshot: group(),
                    output_count: 321,
                    purge_protect: true,
                }],
                attempt: 1,
                declared_bytes: 9999,
            },
            ToEngine::AbortRound { round: 6 },
            ToEngine::Resume {
                round: 5,
                watermark: VirtualTime::from_secs(90),
            },
            ToEngine::StartSpill { amount: 4096 },
            ToEngine::ReportStats {
                now: VirtualTime::from_secs(30),
            },
            ToEngine::Tick {
                now: VirtualTime::from_secs(31),
                horizon: VirtualTime::from_secs(29),
            },
            ToEngine::PrepareCleanup {
                owners: vec![EngineId(0), EngineId(1), EngineId(0)],
            },
            ToEngine::ForwardedSegments {
                pid: PartitionId(7),
                segments: vec![group(), SpilledGroup::empty(PartitionId(7), 3)],
            },
            ToEngine::StartCleanup,
            ToEngine::BeginDrain,
            ToEngine::FenceNotice {
                engine: EngineId(2),
            },
        ]
    }

    #[test]
    fn to_engine_round_trips() {
        for (i, msg) in sample_to_engine().into_iter().enumerate() {
            let debug = format!("{msg:?}");
            let (seq, got) = round_trip(&WireMsg::Engine(msg), i as u64 + 1);
            assert_eq!(seq, i as u64 + 1);
            match got {
                WireMsg::Engine(m) => assert_eq!(format!("{m:?}"), debug),
                other => panic!("expected Engine, got {other:?}"),
            }
        }
    }

    #[test]
    fn relay_round_trips() {
        for msg in sample_to_engine() {
            let debug = format!("{msg:?}");
            let (_, got) = round_trip(
                &WireMsg::Relay {
                    to: EngineId(2),
                    msg,
                },
                0,
            );
            match got {
                WireMsg::Relay { to, msg } => {
                    assert_eq!(to, EngineId(2));
                    assert_eq!(format!("{msg:?}"), debug);
                }
                other => panic!("expected Relay, got {other:?}"),
            }
        }
    }

    #[test]
    fn from_engine_round_trips() {
        let msgs = vec![
            FromEngine::Ptv {
                round: 3,
                engine: EngineId(1),
                parts: vec![PartitionId(0), PartitionId(23)],
            },
            FromEngine::TransferAck {
                round: 3,
                engine: EngineId(1),
                bytes: 123_456,
            },
            FromEngine::Stats(EngineStatsReport {
                engine: EngineId(2),
                at: VirtualTime::from_secs(45),
                memory_used: 1 << 21,
                memory_budget: 1 << 22,
                num_groups: 12,
                window_output: 400,
                total_output: 9_000,
                avg_productivity_rate: 3.75,
                spilled_bytes: 512,
                spill_count: 2,
            }),
            FromEngine::CleanupReady {
                engine: EngineId(0),
                forwarded: 4,
            },
            FromEngine::CleanupDone {
                engine: EngineId(0),
                runtime_output: 100,
                cleanup_output: 20,
                spill_count: 3,
                cleanup_cost_ms: 4_200,
                journal: vec![
                    JournalEntry {
                        at: VirtualTime::from_secs(10),
                        seq: 1,
                        event: AdaptEvent::FaultInjected {
                            fault: "drop",
                            edge: "ptv",
                            round: 2,
                            attempt: 0,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(11),
                        seq: 2,
                        event: AdaptEvent::ProtocolWarning {
                            code: "duplicate_install",
                            engine: EngineId(0),
                            round: 2,
                            detail: 5,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(12),
                        seq: 3,
                        event: AdaptEvent::SpillDecision {
                            engine: EngineId(0),
                            trigger: SpillTrigger::Forced,
                            groups: vec![PartitionId(4)],
                            state_bytes: 100,
                            encoded_bytes: 90,
                            memory_used: 1000,
                            memory_budget: 2000,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(13),
                        seq: 4,
                        event: AdaptEvent::StatsSample {
                            engines: 3,
                            max_load: 0.9,
                            min_load: 0.1,
                            load_ratio: 0.111,
                            productivity_ratio: 2.0,
                            memory_used: 10,
                            memory_budget: 20,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(14),
                        seq: 5,
                        event: AdaptEvent::RelocationStep {
                            round: 2,
                            step: 4,
                            sender: EngineId(0),
                            receiver: EngineId(1),
                            parts: vec![PartitionId(3)],
                            bytes: 77,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(15),
                        seq: 6,
                        event: AdaptEvent::CleanupPhase {
                            engine: EngineId(0),
                            group: PartitionId(3),
                            missing_results: 5,
                            scanned_tuples: 50,
                            disk_bytes_read: 500,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(16),
                        seq: 7,
                        event: AdaptEvent::MemoryPressure {
                            engine: EngineId(0),
                            used: 99,
                            budget: 100,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(17),
                        seq: 8,
                        event: AdaptEvent::EngineJoined {
                            engine: EngineId(2),
                            members: 3,
                        },
                    },
                    JournalEntry {
                        at: VirtualTime::from_secs(18),
                        seq: 9,
                        event: AdaptEvent::EngineDrained {
                            engine: EngineId(1),
                            moves: 4,
                        },
                    },
                ],
                journal_counters: CountersSnapshot {
                    tuples_routed: 1,
                    spill_bytes: 2,
                    spill_bytes_written: 14,
                    spill_bytes_read: 15,
                    relocation_bytes: 3,
                    transfer_bytes: 16,
                    buffered_in_flight: 4,
                    purges_deferred: 5,
                    watermark_held_ms: 6,
                    replayed_in_order: 7,
                    faults_injected: 8,
                    msgs_retried: 9,
                    rounds_aborted: 10,
                    watermark_released_on_abort: 11,
                    rebalance_moves: 17,
                    events_recorded: 12,
                    events_dropped: 13,
                },
            },
            FromEngine::DrainState {
                engine: EngineId(1),
                resident_bytes: 1 << 20,
            },
            FromEngine::JoinReady {
                engine: EngineId(2),
            },
        ];
        for msg in msgs {
            let debug = format!("{msg:?}");
            let (seq, got) = round_trip(&WireMsg::Coord(msg), 0);
            assert_eq!(seq, 0);
            match got {
                WireMsg::Coord(m) => assert_eq!(format!("{m:?}"), debug),
                other => panic!("expected Coord, got {other:?}"),
            }
        }
    }

    #[test]
    fn interned_codes_are_program_literals() {
        let entry = JournalEntry {
            at: VirtualTime::ZERO,
            seq: 0,
            event: AdaptEvent::FaultInjected {
                fault: "crash_restart",
                edge: "install_states",
                round: 0,
                attempt: 0,
            },
        };
        let mut buf = Vec::new();
        put_journal(&mut buf, &[entry]);
        let got = get_journal(&mut buf.as_slice()).unwrap();
        match &got[0].event {
            AdaptEvent::FaultInjected { fault, edge, .. } => {
                assert_eq!(*fault, "crash_restart");
                assert_eq!(*edge, "install_states");
                // Known codes come back pointer-stable (no per-decode leak).
                assert!(std::ptr::eq(*fault, intern("crash_restart".into())));
                assert!(std::ptr::eq(*edge, intern("install_states".into())));
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn handshake_round_trips() {
        let (_, got) = round_trip(
            &WireMsg::Hello(Hello {
                engine: EngineId(3),
                resume_from: 0,
            }),
            0,
        );
        match got {
            WireMsg::Hello(h) => {
                assert_eq!(h.engine, EngineId(3));
                assert_eq!(h.resume_from, 0);
            }
            other => panic!("expected Hello, got {other:?}"),
        }

        let welcome = Welcome {
            engine: EngineId(1),
            num_engines: 3,
            config: EngineConfig::three_way(1 << 22, 600 << 10)
                .with_spill_fraction(0.4)
                .with_estimator(ProductivityEstimator::Decaying { alpha: 0.5 })
                .with_reactivation(0.25),
            journal: true,
            count_first: false,
            fault_seed: 0xDEAD_BEEF,
            faults: FaultConfig::uniform(0.2),
            replay_until: 417,
        };
        let (_, got) = round_trip(&WireMsg::Welcome(Box::new(welcome.clone())), 9);
        match got {
            WireMsg::Welcome(w) => assert_eq!(format!("{w:?}"), format!("{welcome:?}")),
            other => panic!("expected Welcome, got {other:?}"),
        }

        // A windowed config survives too.
        let mut windowed = welcome;
        windowed.config.join.window = Some(VirtualDuration::from_secs(60));
        let (_, got) = round_trip(&WireMsg::Welcome(Box::new(windowed.clone())), 9);
        match got {
            WireMsg::Welcome(w) => assert_eq!(format!("{w:?}"), format!("{windowed:?}")),
            other => panic!("expected Welcome, got {other:?}"),
        }
    }

    #[test]
    fn trailer_mismatch_rejected() {
        let mut bytes = frame_bytes(1, &WireMsg::Engine(ToEngine::StartCleanup)).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40;
        assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn clean_eof_is_none_mid_frame_eof_is_error() {
        let bytes = frame_bytes(1, &WireMsg::Engine(ToEngine::StartCleanup)).unwrap();
        assert!(read_frame(&mut &bytes[..0]).unwrap().is_none());
        for cut in 1..bytes.len() {
            assert!(
                read_frame(&mut &bytes[..cut]).is_err(),
                "cut at {cut} should fail"
            );
        }
    }

    #[test]
    fn oversized_header_rejected() {
        let mut bytes = vec![0u8; 12];
        bytes[..4].copy_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn trailing_payload_bytes_rejected() {
        // Extend the payload of a valid frame by one byte, fixing up
        // header and trailer: decode must reject the leftovers.
        let mut payload = Vec::new();
        put_varint(&mut payload, 1u64);
        encode_msg(&WireMsg::Engine(ToEngine::StartCleanup), &mut payload);
        payload.push(0xEE);
        let len = payload.len() as u32;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&(len ^ LEN_CHECK).to_le_bytes());
        assert!(read_frame(&mut bytes.as_slice()).is_err());
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(
            msg_kind_name(&WireMsg::Engine(ToEngine::StartCleanup)),
            "start_cleanup"
        );
        assert_eq!(
            msg_kind_name(&WireMsg::Hello(Hello {
                engine: EngineId(0),
                resume_from: 0
            })),
            "hello"
        );
    }
}

#[cfg(test)]
mod fuzz_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Decoding arbitrary bytes must never panic.
        #[test]
        fn decode_msg_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = decode_msg(&mut data.as_slice());
        }

        /// Reading arbitrary bytes as a frame must never panic.
        #[test]
        fn read_frame_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = read_frame(&mut data.as_slice());
        }

        /// Corrupting any single byte of a valid frame either fails or
        /// round-trips (the flip may hit a don't-care bit) — never panics.
        #[test]
        fn frame_bit_flips_never_panic(idx in 0usize..10_000, flip in 1u8..255) {
            let msg = WireMsg::Engine(ToEngine::SendStates {
                round: 3,
                parts: vec![dcape_common::ids::PartitionId(5)],
                receiver: dcape_common::ids::EngineId(1),
                attempt: 0,
            });
            let mut bytes = frame_bytes(7, &msg).unwrap();
            let idx = idx % bytes.len();
            bytes[idx] ^= flip;
            let _ = read_frame(&mut bytes.as_slice());
        }
    }
}
