//! Engine-side protocol logic shared by the [`super::threaded`] and
//! [`super::socket`] drivers.
//!
//! An [`EngineCore`] wraps one [`QueryEngine`] plus the message-handling
//! state machine of the Figure 8 protocol: data processing, the
//! engine-side relocation steps (`Ptv`, state extraction,
//! `InstallStates`, `TransferAck`, abort/commit), spill commands, and
//! the two-phase distributed cleanup. The driver-specific part — how a
//! reply reaches the coordinator or a peer engine — is abstracted behind
//! [`EngineTx`], so the same `handle` body runs on a crossbeam channel
//! (threaded driver) and on a framed TCP connection (`dcape-node`
//! worker process).
//!
//! The fault plan is passed per message, not stored: the socket worker
//! substitutes an inactive plan while replaying history after a
//! crash-restart, so a deterministically scheduled fault cannot re-fire
//! on every respawn.

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_engine::controller::Mode;
use dcape_engine::engine::QueryEngine;
use dcape_engine::probe::ProbeSpans;
use dcape_engine::sink::{CountingSink, EnumeratingSink, ResultSink};
use dcape_metrics::journal::{AdaptEvent, JournalHandle};

use crate::faults::{FaultDecision, FaultEdge, FaultPlan};
use crate::messages::{FromEngine, GroupTransfer, ToEngine};
use crate::runtime::driver::edge_decision;

/// How an engine sends its replies: to the global coordinator or to a
/// peer engine (`InstallStates`, `ForwardedSegments`).
///
/// Implementations may not fail the engine loop on transport errors —
/// the threaded driver ignores a closed channel (shutdown race), the
/// socket worker treats a broken connection as fatal separately.
pub(crate) trait EngineTx {
    /// Send a message to the global coordinator.
    fn to_gc(&mut self, m: FromEngine) -> Result<()>;
    /// Send a message to peer engine `target`.
    fn to_peer(&mut self, target: EngineId, m: ToEngine) -> Result<()>;
}

/// What the caller's loop should do after one handled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EngineFlow {
    /// Keep receiving.
    Continue,
    /// A chaos crash-restart fired (already journaled): the threaded
    /// driver warm-restarts the in-process engine, the socket worker
    /// exits the OS process and is respawned by the coordinator.
    CrashRequested,
    /// `CleanupDone` was sent; the engine is finished.
    Finished,
}

/// The engine's counting sink, honoring `SimConfig::count_first`:
/// either the span-based fast path (product counting / window pruning)
/// or the per-combination enumerating baseline, so the two arms can be
/// benchmarked and proven equivalent on the concurrent drivers too.
#[derive(Debug)]
pub(crate) enum EngineSink {
    CountFirst(CountingSink),
    PerCombination(EnumeratingSink<CountingSink>),
}

impl EngineSink {
    pub(crate) fn new(count_first: bool) -> Self {
        if count_first {
            EngineSink::CountFirst(CountingSink::new())
        } else {
            EngineSink::PerCombination(EnumeratingSink(CountingSink::new()))
        }
    }

    pub(crate) fn count(&self) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.count(),
            EngineSink::PerCombination(s) => s.0.count(),
        }
    }
}

impl ResultSink for EngineSink {
    #[inline]
    fn wants_rows(&self) -> bool {
        match self {
            EngineSink::CountFirst(s) => s.wants_rows(),
            EngineSink::PerCombination(s) => s.wants_rows(),
        }
    }

    #[inline]
    fn emit(&mut self, parts: &[&dcape_common::tuple::Tuple]) {
        match self {
            EngineSink::CountFirst(s) => s.emit(parts),
            EngineSink::PerCombination(s) => s.emit(parts),
        }
    }

    #[inline]
    fn emit_product(&mut self, spans: &ProbeSpans<'_, '_>) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.emit_product(spans),
            EngineSink::PerCombination(s) => s.emit_product(spans),
        }
    }
}

/// An engine-held message the chaos layer delayed; released once a
/// `Tick` advances the engine's virtual clock past the due time.
enum Held {
    ToGc(FromEngine),
    ToPeer(EngineId, ToEngine),
}

/// One query engine plus its protocol state, independent of transport.
pub(crate) struct EngineCore {
    pub(crate) id: EngineId,
    pub(crate) qe: QueryEngine,
    pub(crate) sink: EngineSink,
    pub(crate) last_now: VirtualTime,
    held: Vec<(VirtualTime, Held)>,
    count_first: bool,
    /// Peers announced as fenced (draining/drained): relocation state
    /// must never be shipped toward them, however stale the command.
    fenced_peers: Vec<EngineId>,
}

impl EngineCore {
    pub(crate) fn new(
        id: EngineId,
        cfg: EngineConfig,
        journal_on: bool,
        count_first: bool,
    ) -> Result<Self> {
        let mut qe = QueryEngine::in_memory(id, cfg)?;
        if journal_on {
            qe.set_journal(JournalHandle::enabled());
        }
        Ok(EngineCore {
            id,
            qe,
            sink: EngineSink::new(count_first),
            last_now: VirtualTime::ZERO,
            held: Vec::new(),
            count_first,
            fenced_peers: Vec::new(),
        })
    }

    /// Release engine-held delayed messages that are due (insertion
    /// order among equal due times).
    fn release_held(&mut self, now: VirtualTime, tx: &mut dyn EngineTx) -> Result<()> {
        while let Some(idx) = self
            .held
            .iter()
            .enumerate()
            .filter(|(_, (due, _))| now >= *due)
            .min_by_key(|(i, (due, _))| (*due, *i))
            .map(|(i, _)| i)
        {
            match self.held.remove(idx).1 {
                Held::ToGc(m) => tx.to_gc(m)?,
                Held::ToPeer(target, m) => tx.to_peer(target, m)?,
            }
        }
        Ok(())
    }

    /// Handle one protocol message. `plan` decides the chaos faults on
    /// the edges this engine sends (`Ptv`, `InstallStates`,
    /// `TransferAck`); pass [`FaultPlan::disabled`] to replay history
    /// fault-free.
    pub(crate) fn handle(
        &mut self,
        msg: ToEngine,
        plan: &FaultPlan,
        tx: &mut dyn EngineTx,
    ) -> Result<EngineFlow> {
        let id = self.id;
        match msg {
            ToEngine::Data { pid, tuple } => {
                self.qe.process(pid, tuple, &mut self.sink)?;
            }
            ToEngine::DataBatch { tuples } => {
                self.qe.process_batch(tuples, &mut self.sink)?;
            }
            ToEngine::Tick { now, horizon } => {
                self.last_now = now;
                self.release_held(now, tx)?;
                self.qe.tick_with_horizon(now, horizon)?;
            }
            ToEngine::ReportStats { now } => {
                self.last_now = now;
                let report = self.qe.report(now);
                tx.to_gc(FromEngine::Stats(report))?;
            }
            ToEngine::Cptv {
                round,
                amount,
                attempt,
            } => {
                if self.qe.is_stale_round(round) {
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "stale_cptv",
                            engine: id,
                            round,
                            detail: 1,
                        },
                    );
                } else {
                    self.qe.set_mode(Mode::Relocation);
                    let parts = self.qe.select_parts_to_move(amount);
                    // Step 2 rides the faultable Ptv edge: the
                    // coordinator's phase timeout covers a lost
                    // reply by re-issuing Cptv with a new attempt.
                    match edge_decision(
                        plan,
                        self.qe.journal(),
                        self.last_now,
                        FaultEdge::Ptv,
                        round,
                        attempt,
                    ) {
                        FaultDecision::Deliver => {
                            tx.to_gc(FromEngine::Ptv {
                                round,
                                engine: id,
                                parts,
                            })?;
                        }
                        FaultDecision::Drop | FaultDecision::CorruptLength => {}
                        FaultDecision::Duplicate => {
                            tx.to_gc(FromEngine::Ptv {
                                round,
                                engine: id,
                                parts: parts.clone(),
                            })?;
                            tx.to_gc(FromEngine::Ptv {
                                round,
                                engine: id,
                                parts,
                            })?;
                        }
                        FaultDecision::Delay(ms) => self.held.push((
                            self.last_now + VirtualDuration::from_millis(ms),
                            Held::ToGc(FromEngine::Ptv {
                                round,
                                engine: id,
                                parts,
                            }),
                        )),
                    }
                }
            }
            ToEngine::SendStates {
                round,
                parts,
                receiver,
                attempt,
            } => {
                if self.qe.is_stale_round(round) {
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "stale_send_states",
                            engine: id,
                            round,
                            detail: 4,
                        },
                    );
                    return Ok(EngineFlow::Continue);
                }
                if self.fenced_peers.contains(&receiver) {
                    // A chaos-delayed copy naming a now-fenced receiver
                    // must not re-populate a draining engine; the
                    // coordinator's phase timeout aborts the round.
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "send_to_fenced_dropped",
                            engine: receiver,
                            round,
                            detail: 4,
                        },
                    );
                    return Ok(EngineFlow::Continue);
                }
                let fresh = !self.qe.outbound_pending(round);
                let groups_raw = self.qe.begin_outbound(round, &parts);
                let bytes: u64 = groups_raw
                    .iter()
                    .map(|(g, _, _)| g.state_bytes() as u64)
                    .sum();
                if fresh {
                    // Journal the extraction once; retries re-ship
                    // the retained copy and must not inflate the
                    // relocation volume.
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 4,
                            sender: id,
                            receiver,
                            parts: parts.clone(),
                            bytes,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    self.qe.journal().add_relocation_bytes(bytes);
                    // Wire volume in encoded (column-block) form — what
                    // the transfer actually costs on the network.
                    let codec = self.qe.config().spill_codec;
                    let encoded: u64 = groups_raw
                        .iter()
                        .map(|(g, _, _)| g.encode_with(codec).len() as u64)
                        .sum();
                    self.qe.journal().add_transfer_bytes(encoded);
                }
                // A stall keeps the transfer from landing for a
                // while; a delay fault adds on top of it.
                let mut declared_bytes = bytes;
                let mut delay_ms = plan.stall_ms(FaultEdge::InstallStates, round, attempt);
                if delay_ms > 0 {
                    self.qe.journal().add_faults_injected(1);
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::FaultInjected {
                            fault: "stall",
                            edge: FaultEdge::InstallStates.name(),
                            round,
                            attempt,
                        },
                    );
                }
                let mut copies = 1u32;
                match edge_decision(
                    plan,
                    self.qe.journal(),
                    self.last_now,
                    FaultEdge::InstallStates,
                    round,
                    attempt,
                ) {
                    FaultDecision::Deliver => {}
                    FaultDecision::Drop => copies = 0,
                    FaultDecision::CorruptLength => {
                        declared_bytes = FaultPlan::corrupt_length(bytes);
                    }
                    FaultDecision::Delay(ms) => delay_ms += ms,
                    FaultDecision::Duplicate => copies = 2,
                }
                for _ in 0..copies {
                    let groups: Vec<GroupTransfer> = groups_raw
                        .iter()
                        .cloned()
                        .map(|(snapshot, output_count, purge_protect)| GroupTransfer {
                            snapshot,
                            output_count,
                            purge_protect,
                        })
                        .collect();
                    let m = ToEngine::InstallStates {
                        round,
                        sender: id,
                        groups,
                        attempt,
                        declared_bytes,
                    };
                    if delay_ms > 0 {
                        self.held.push((
                            self.last_now + VirtualDuration::from_millis(delay_ms),
                            Held::ToPeer(receiver, m),
                        ));
                    } else {
                        tx.to_peer(receiver, m)?;
                    }
                }
            }
            ToEngine::InstallStates {
                round,
                sender,
                groups,
                attempt,
                declared_bytes,
            } => {
                let bytes: u64 = groups.iter().map(|g| g.snapshot.state_bytes() as u64).sum();
                // Corrupt-length detection: recompute the payload
                // size, discard on mismatch and send no ack — the
                // sender's phase timeout re-sends the transfer.
                if declared_bytes != bytes {
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "corrupt_transfer_discarded",
                            engine: id,
                            round,
                            detail: declared_bytes,
                        },
                    );
                    return Ok(EngineFlow::Continue);
                }
                if plan.crash_during_install(round, attempt) {
                    self.qe.journal().add_faults_injected(1);
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::FaultInjected {
                            fault: "crash_restart",
                            edge: FaultEdge::InstallStates.name(),
                            round,
                            attempt,
                        },
                    );
                    return Ok(EngineFlow::CrashRequested);
                }
                self.qe.set_mode(Mode::Relocation);
                let parts: Vec<PartitionId> = groups.iter().map(|g| g.snapshot.partition).collect();
                let installed = self.qe.install_groups_for_round(
                    round,
                    groups
                        .into_iter()
                        .map(|g| (g.snapshot, g.output_count, g.purge_protect))
                        .collect(),
                )?;
                if installed {
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 5,
                            sender,
                            receiver: id,
                            parts,
                            bytes,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                } else {
                    // Duplicate (or stale) install: a no-op, but
                    // the ack must still go out — the first one
                    // may have been lost.
                    self.qe.journal().record(
                        self.last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "duplicate_install",
                            engine: id,
                            round,
                            detail: 5,
                        },
                    );
                    if self.qe.is_stale_round(round) {
                        self.qe.set_mode(Mode::Normal);
                    }
                }
                match edge_decision(
                    plan,
                    self.qe.journal(),
                    self.last_now,
                    FaultEdge::TransferAck,
                    round,
                    attempt,
                ) {
                    FaultDecision::Deliver => {
                        tx.to_gc(FromEngine::TransferAck {
                            round,
                            engine: id,
                            bytes,
                        })?;
                    }
                    FaultDecision::Drop | FaultDecision::CorruptLength => {}
                    FaultDecision::Duplicate => {
                        for _ in 0..2 {
                            tx.to_gc(FromEngine::TransferAck {
                                round,
                                engine: id,
                                bytes,
                            })?;
                        }
                    }
                    FaultDecision::Delay(ms) => self.held.push((
                        self.last_now + VirtualDuration::from_millis(ms),
                        Held::ToGc(FromEngine::TransferAck {
                            round,
                            engine: id,
                            bytes,
                        }),
                    )),
                }
            }
            ToEngine::AbortRound { round } => {
                // Retries exhausted: unwind whichever side of the
                // round this engine played. The sender reinstalls
                // its retained copy (this message precedes any
                // replayed tuples on the same FIFO channel); the
                // receiver discards the uncommitted installation.
                let discarded = self.qe.abort_inbound(round)?;
                let reinstalled = self.qe.abort_outbound(round)?;
                self.qe.journal().record(
                    self.last_now,
                    AdaptEvent::ProtocolWarning {
                        code: "round_unwound",
                        engine: id,
                        round,
                        detail: (discarded + reinstalled) as u64,
                    },
                );
                self.qe.set_mode(Mode::Normal);
            }
            ToEngine::Resume { round, watermark } => {
                // The round completed: the sender drops its
                // retained copy, the receiver makes the
                // installation permanent, and both close the round
                // so stragglers become stale no-ops.
                self.qe.commit_outbound(round);
                self.qe.commit_inbound(round);
                self.qe.set_mode(Mode::Normal);
                // Catch-up purge: the round's replay (if any) sits
                // earlier in this FIFO inbox, so it has been
                // processed; everything arriving later carries
                // `ts >= watermark`. Purge-only — no spill-trigger
                // side effects between protocol steps.
                self.qe.purge_at(watermark);
            }
            ToEngine::StartSpill { amount } => {
                self.qe.force_spill(amount, self.last_now)?;
            }
            ToEngine::BeginDrain => {
                // Reliable-channel drain poll: report how much movable
                // state is still resident. Idempotent by construction.
                tx.to_gc(FromEngine::DrainState {
                    engine: id,
                    resident_bytes: self.qe.memory_used(),
                })?;
            }
            ToEngine::FenceNotice { engine } => {
                if !self.fenced_peers.contains(&engine) {
                    self.fenced_peers.push(engine);
                }
            }
            ToEngine::PrepareCleanup { owners } => {
                // Forward segments of partitions owned elsewhere.
                let mut forwarded = 0usize;
                for pid in self.qe.spilled_partitions() {
                    let owner = owners
                        .get(pid.index())
                        .copied()
                        .ok_or_else(|| DcapeError::state(format!("no owner for {pid}")))?;
                    if owner == id {
                        continue;
                    }
                    let segments = self.qe.take_spilled_segments(pid)?;
                    forwarded += segments.len();
                    tx.to_peer(owner, ToEngine::ForwardedSegments { pid, segments })?;
                }
                tx.to_gc(FromEngine::CleanupReady {
                    engine: id,
                    forwarded,
                })?;
            }
            ToEngine::ForwardedSegments { segments, .. } => {
                self.qe.import_segments(segments)?;
            }
            ToEngine::StartCleanup => {
                // Local parallel merge over owned partitions.
                let mut sink = EngineSink::new(self.count_first);
                let report = self.qe.cleanup(&mut sink)?;
                tx.to_gc(FromEngine::CleanupDone {
                    engine: id,
                    runtime_output: self.qe.total_output(),
                    cleanup_output: sink.count(),
                    spill_count: self.qe.spill_history().len() as u64,
                    cleanup_cost_ms: report.virtual_cost.as_millis(),
                    journal: self.qe.journal().snapshot(),
                    journal_counters: self
                        .qe
                        .journal()
                        .counters()
                        .map(|c| c.snapshot())
                        .unwrap_or_default(),
                })?;
                return Ok(EngineFlow::Finished);
            }
        }
        Ok(EngineFlow::Continue)
    }
}
