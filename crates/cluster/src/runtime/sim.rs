//! The deterministic virtual-time cluster driver.
//!
//! Replays a whole experiment — stream generation, routing through the
//! split operators' placement map, per-engine symmetric joins, the
//! `ss_timer` spill pulse, the coordinator's periodic evaluation, and
//! the full relocation protocol with tuple buffering — on a single
//! thread against the virtual clock. Relocation transfers take modeled
//! network time: tuples arriving for the affected partitions while the
//! transfer is in flight are buffered at the splits and redelivered to
//! the new owner afterwards, exactly as §4.1 describes.
//!
//! Determinism: same [`SimConfig`] ⇒ bit-identical run. That is what
//! lets the repro harness regenerate the paper's figures reproducibly.

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{PeriodicTimer, VirtualDuration, VirtualTime};
use dcape_common::tuple::Tuple;
use dcape_engine::config::EngineConfig;
use dcape_engine::engine::QueryEngine;
use dcape_engine::sink::{CollectingSink, ResultSink};
use dcape_engine::spill::cleanup::merge_segments_windowed;
use dcape_metrics::journal::{
    merge_journals, AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle,
};
use dcape_metrics::Recorder;
use dcape_storage::SpilledGroup;
use dcape_streamgen::{StreamSetGenerator, StreamSetSpec};

use crate::split::SplitOperator;

use crate::coordinator::{DrainStep, GlobalCoordinator, RetryPolicy, TimeoutAction};
use crate::faults::{FaultDecision, FaultEdge, FaultPlan};
use crate::netmodel::NetworkModel;
use crate::placement::{PlacementMap, PlacementSpec, Route};
use crate::relocation::Action;
use crate::strategy::{Decision, StrategyConfig};

use dcape_engine::controller::Mode;

/// An elastic membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleAction {
    /// Admit a new engine (scale-out). It gets the next dense id; the
    /// rebalance planner moves state toward it.
    AddEngine,
    /// Drain an engine (scale-in): fence it and relocate its state away
    /// until it owns nothing, then let it exit. `None` picks the
    /// highest-id active engine at fire time.
    DrainEngine(Option<EngineId>),
}

/// A scheduled membership change, applied when the virtual clock
/// reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleEvent {
    /// Virtual time of the change.
    pub at: VirtualTime,
    /// What happens.
    pub action: ScaleAction,
}

impl ScaleEvent {
    /// A join at `at`.
    pub fn add(at: VirtualTime) -> Self {
        ScaleEvent {
            at,
            action: ScaleAction::AddEngine,
        }
    }

    /// A drain of the highest-id active engine at `at`.
    pub fn drain(at: VirtualTime) -> Self {
        ScaleEvent {
            at,
            action: ScaleAction::DrainEngine(None),
        }
    }

    /// A drain of a specific engine at `at`.
    pub fn drain_engine(at: VirtualTime, engine: EngineId) -> Self {
        ScaleEvent {
            at,
            action: ScaleAction::DrainEngine(Some(engine)),
        }
    }
}

/// Configuration of one simulated cluster run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Number of query engines ("machines").
    pub num_engines: usize,
    /// Per-engine configuration (memory budget, spill knobs, join).
    pub engine: EngineConfig,
    /// Input workload.
    pub workload: StreamSetSpec,
    /// Initial partition placement.
    pub placement: PlacementSpec,
    /// Global adaptation strategy.
    pub strategy: StrategyConfig,
    /// How often engines report statistics and the coordinator
    /// evaluates (`sr_timer` / `lb_timer`).
    pub stats_interval: VirtualDuration,
    /// How often the recorder samples throughput/memory series.
    pub sample_interval: VirtualDuration,
    /// Network model for relocation transfers.
    pub network: NetworkModel,
    /// Collect full results (tests); otherwise results are only counted.
    pub collect_results: bool,
    /// Record a structured adaptation-event journal (merged into the
    /// report); off by default.
    pub journal: bool,
    /// Use the batched dataflow (one routed batch per engine per tick)
    /// instead of per-tuple delivery. On by default; results, state and
    /// journal totals are identical either way — the flag exists so the
    /// equivalence can be tested and benchmarked.
    pub batch: bool,
    /// Resolve whole probe products without enumeration when results
    /// are only being counted (product counting + window pruning). On
    /// by default; counts, state and journal totals are identical
    /// either way — the flag exists so the equivalence can be tested
    /// and benchmarked. Ignored when `collect_results` is set (full
    /// results force enumeration).
    pub count_first: bool,
    /// Deterministic fault injection over the relocation protocol's
    /// message edges (see [`crate::faults`]). Disabled by default; an
    /// active plan also arms the coordinator's per-phase
    /// timeout/retry/abort policy.
    pub faults: FaultPlan,
    /// Scheduled elastic membership changes (joins and drains), applied
    /// when the virtual clock reaches each event's time. Empty by
    /// default (a static engine set).
    pub scale_events: Vec<ScaleEvent>,
}

impl SimConfig {
    /// Sensible defaults around a workload: 45 s stats interval, 60 s
    /// sampling, gigabit network, round-robin placement.
    pub fn new(
        num_engines: usize,
        engine: EngineConfig,
        workload: StreamSetSpec,
        strategy: StrategyConfig,
    ) -> Self {
        SimConfig {
            num_engines,
            engine,
            workload,
            placement: PlacementSpec::RoundRobin,
            strategy,
            stats_interval: VirtualDuration::from_secs(45),
            sample_interval: VirtualDuration::from_secs(60),
            network: NetworkModel::gigabit(),
            collect_results: false,
            journal: false,
            batch: true,
            count_first: true,
            faults: FaultPlan::disabled(),
            scale_events: Vec::new(),
        }
    }

    /// Builder-style: inject deterministic faults from the given plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Builder-style: enable or disable the batched dataflow.
    pub fn with_batching(mut self, batch: bool) -> Self {
        self.batch = batch;
        self
    }

    /// Builder-style: enable or disable count-first result delivery.
    pub fn with_count_first(mut self, count_first: bool) -> Self {
        self.count_first = count_first;
        self
    }

    /// Builder-style: set the initial placement.
    pub fn with_placement(mut self, placement: PlacementSpec) -> Self {
        self.placement = placement;
        self
    }

    /// Builder-style: set the stats interval.
    pub fn with_stats_interval(mut self, interval: VirtualDuration) -> Self {
        self.stats_interval = interval;
        self
    }

    /// Builder-style: set the sample interval.
    pub fn with_sample_interval(mut self, interval: VirtualDuration) -> Self {
        self.sample_interval = interval;
        self
    }

    /// Builder-style: collect full results.
    pub fn collecting(mut self) -> Self {
        self.collect_results = true;
        self
    }

    /// Builder-style: record the adaptation-event journal.
    pub fn with_journal(mut self) -> Self {
        self.journal = true;
        self
    }

    /// Builder-style: schedule elastic membership changes.
    pub fn with_scale_events(mut self, events: Vec<ScaleEvent>) -> Self {
        self.scale_events = events;
        self
    }

    /// Peak engine-slot count this run can reach: the initial engines
    /// plus every scheduled join. Runtimes provision channel fabrics,
    /// outboxes and counters at this capacity up front so joins never
    /// reshape shared structures mid-run.
    pub fn capacity(&self) -> usize {
        self.num_engines
            + self
                .scale_events
                .iter()
                .filter(|e| e.action == ScaleAction::AddEngine)
                .count()
    }
}

/// One completed relocation, for reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelocationEvent {
    /// When the transfer completed.
    pub at: VirtualTime,
    /// Sender engine.
    pub sender: EngineId,
    /// Receiver engine.
    pub receiver: EngineId,
    /// Partitions moved.
    pub parts: usize,
    /// Accounted bytes moved.
    pub bytes: u64,
    /// Tuples buffered at the splits during the transfer.
    pub buffered_tuples: usize,
}

/// Aggregated result of a simulated run.
#[derive(Debug)]
pub struct SimReport {
    /// Results produced during the run-time phase.
    pub runtime_output: u64,
    /// Missing results produced by the cleanup phase.
    pub cleanup_output: u64,
    /// Per-engine modeled cleanup costs (ms of virtual time).
    pub cleanup_cost_ms: Vec<u64>,
    /// Completed relocations.
    pub relocations: Vec<RelocationEvent>,
    /// Forced spills issued by the coordinator.
    pub force_spills: u64,
    /// Local spill adaptations per engine.
    pub spill_counts: Vec<u64>,
    /// Recorded time series (throughput, memory, …).
    pub recorder: Recorder,
    /// Collected results, if `collect_results` was set: run-time phase.
    pub runtime_results: Option<CollectingSink>,
    /// Collected results, if `collect_results` was set: cleanup phase.
    pub cleanup_results: Option<CollectingSink>,
    /// Adaptation-event journal, merged across the driver and every
    /// engine by virtual time (empty unless `journal` was set).
    pub journal: Vec<JournalEntry>,
    /// Final counter values (driver-level tallies plus per-engine ring
    /// accounting; zeros unless `journal` was set).
    pub journal_counters: CountersSnapshot,
}

impl SimReport {
    /// Total results across both phases.
    pub fn total_output(&self) -> u64 {
        self.runtime_output + self.cleanup_output
    }

    /// Cluster cleanup wall time under per-engine parallelism: the
    /// maximum per-engine cost (the paper's Figure 12 comparison).
    pub fn cleanup_wall_ms(&self) -> u64 {
        self.cleanup_cost_ms.iter().copied().max().unwrap_or(0)
    }

    /// A ready-to-print run summary: one row per engine plus totals.
    pub fn summary_table(&self) -> dcape_metrics::Table {
        let mut table =
            dcape_metrics::Table::new(&["engine", "final output", "spills", "cleanup cost (ms)"]);
        for (i, (spills, cost)) in self
            .spill_counts
            .iter()
            .zip(&self.cleanup_cost_ms)
            .enumerate()
        {
            let out = self
                .recorder
                .series(&format!("output/QE{i}"))
                .and_then(|s| s.last())
                .map(|(_, v)| v as u64)
                .unwrap_or(0);
            table.row(vec![
                format!("QE{i}"),
                format!("{out}"),
                format!("{spills}"),
                format!("{cost}"),
            ]);
        }
        table.row(vec![
            "total".into(),
            format!("{}", self.runtime_output),
            format!("{}", self.spill_counts.iter().sum::<u64>()),
            format!("{} (wall)", self.cleanup_wall_ms()),
        ]);
        table
    }
}

/// A relocation transfer in flight (between steps 5 and 6). With the
/// chaos layer there can be several at once (a duplicated
/// `InstallStates` is two copies of the same payload in flight).
#[derive(Debug)]
struct InFlightTransfer {
    round: u64,
    receiver: EngineId,
    parts: Vec<PartitionId>,
    groups: Vec<(SpilledGroup, u64, bool)>,
    sender: EngineId,
    bytes: u64,
    /// Byte length the sender declared; differs from `bytes` when the
    /// corrupt-length fault hit this copy — the receiver discards it.
    declared_bytes: u64,
    /// Delivery attempt the driving `SendStates` carried.
    attempt: u32,
    complete_at: VirtualTime,
}

/// A control message the chaos layer delayed: redelivered from
/// [`SimDriver::on_clock`] once the virtual clock passes its due time.
#[derive(Debug)]
enum DelayedEvent {
    /// Step 1 toward the sender.
    Cptv {
        round: u64,
        sender: EngineId,
        amount: u64,
        attempt: u32,
    },
    /// Step 2 toward the coordinator.
    Ptv {
        round: u64,
        sender: EngineId,
        parts: Vec<PartitionId>,
    },
    /// Step 4 toward the sender.
    SendStates {
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        parts: Vec<PartitionId>,
        attempt: u32,
    },
    /// Step 6 toward the coordinator.
    TransferAck {
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        bytes: u64,
    },
}

/// Counting/collecting output sink.
#[derive(Debug, Default)]
struct SimSink {
    count: u64,
    collect: Option<CollectingSink>,
    /// Take the count-only fast path for whole probe products. Forced
    /// off while collecting (materializing results needs enumeration).
    count_first: bool,
}

impl ResultSink for SimSink {
    fn wants_rows(&self) -> bool {
        // Mirror of the count-fast-path condition in `emit_product`:
        // when whole products are only counted, columnar state may skip
        // materializing rows entirely.
        !(self.count_first && self.collect.is_none())
    }

    fn emit(&mut self, parts: &[&Tuple]) {
        self.count += 1;
        if let Some(c) = &mut self.collect {
            c.emit(parts);
        }
    }

    fn emit_product(&mut self, spans: &dcape_engine::probe::ProbeSpans<'_, '_>) -> u64 {
        if self.count_first && self.collect.is_none() {
            let n = spans.count_valid();
            self.count += n;
            n
        } else {
            let mut n = 0u64;
            spans.for_each_valid(|parts| {
                self.emit(parts);
                n += 1;
            });
            n
        }
    }
}

/// The simulated cluster.
#[derive(Debug)]
pub struct SimDriver {
    cfg: SimConfig,
    engines: Vec<QueryEngine>,
    placement: PlacementMap,
    split: SplitOperator,
    gc: GlobalCoordinator,
    gen: StreamSetGenerator,
    stats_timer: PeriodicTimer,
    sample_timer: PeriodicTimer,
    recorder: Recorder,
    sink: SimSink,
    in_flight: Vec<InFlightTransfer>,
    /// Chaos-delayed control messages, delivered once due (insertion
    /// order among equal due times — deterministic).
    pending: Vec<(VirtualTime, DelayedEvent)>,
    relocations: Vec<RelocationEvent>,
    journal: JournalHandle,
    /// Engine spill bytes already mirrored into the driver journal's
    /// counters (strategies read cluster-wide totals mid-run).
    mirrored_spill_bytes: u64,
    /// Encoded spill write volume already mirrored (see above).
    mirrored_spill_written: u64,
    /// Encoded spill read-back volume already mirrored (see above).
    mirrored_spill_read: u64,
    /// Reusable one-tick generator buffer (batched dataflow).
    tick_buf: Vec<Tuple>,
    /// Reusable per-engine routed batches (batched dataflow).
    engine_batches: Vec<TupleBatch>,
    /// Scheduled membership changes, sorted by time; `next_scale`
    /// indexes the first not-yet-applied one.
    scale_events: Vec<ScaleEvent>,
    next_scale: usize,
    now: VirtualTime,
}

impl SimDriver {
    /// Build a driver; validates the whole configuration.
    pub fn new(cfg: SimConfig) -> Result<Self> {
        if cfg.num_engines == 0 {
            return Err(DcapeError::config("need at least one engine"));
        }
        if cfg.workload.num_streams != cfg.engine.join.num_streams {
            return Err(DcapeError::config(
                "workload stream count must match the join's",
            ));
        }
        let gen = StreamSetGenerator::new(cfg.workload.clone())?;
        let split = SplitOperator::new(
            gen.partitioner(),
            vec![StreamSetGenerator::JOIN_COLUMN; cfg.workload.num_streams],
        )?;
        let placement =
            PlacementMap::new(&cfg.placement, cfg.workload.num_partitions, cfg.num_engines)?;
        let mut engines = (0..cfg.num_engines)
            .map(|i| QueryEngine::in_memory(EngineId(i as u16), cfg.engine.clone()))
            .collect::<Result<Vec<_>>>()?;
        let mut gc = GlobalCoordinator::new(&cfg.strategy);
        gc.init_membership(cfg.num_engines, cfg.capacity());
        let mut scale_events = cfg.scale_events.clone();
        scale_events.sort_by_key(|e| e.at);
        // Each engine keeps its own journal; the driver, coordinator and
        // strategy share one more. `finish` merges them by virtual time.
        let journal = if cfg.journal {
            for e in &mut engines {
                e.set_journal(JournalHandle::enabled());
            }
            let handle = JournalHandle::enabled();
            gc.set_journal(handle.clone());
            handle
        } else {
            JournalHandle::disabled()
        };
        // An active fault plan implies bounded patience: arm the
        // per-phase timeout/retry/abort ladder so dropped messages
        // cannot wedge a round forever.
        if cfg.faults.is_active() {
            gc.set_retry_policy(RetryPolicy::default());
        }
        let collect = cfg.collect_results.then(CollectingSink::new);
        Ok(SimDriver {
            stats_timer: PeriodicTimer::new(cfg.stats_interval, VirtualTime::ZERO),
            sample_timer: PeriodicTimer::new(cfg.sample_interval, VirtualTime::ZERO),
            recorder: Recorder::new(),
            sink: SimSink {
                count: 0,
                collect,
                count_first: cfg.count_first,
            },
            in_flight: Vec::new(),
            pending: Vec::new(),
            relocations: Vec::new(),
            journal,
            mirrored_spill_bytes: 0,
            mirrored_spill_written: 0,
            mirrored_spill_read: 0,
            tick_buf: Vec::new(),
            engine_batches: (0..cfg.num_engines).map(|_| TupleBatch::new()).collect(),
            scale_events,
            next_scale: 0,
            now: VirtualTime::ZERO,
            cfg,
            engines,
            placement,
            split,
            gc,
            gen,
        })
    }

    /// Current virtual time.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// The recorder (read access while running).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The placement map (read access for tests).
    pub fn placement(&self) -> &PlacementMap {
        &self.placement
    }

    /// The engines (read access for tests).
    pub fn engines(&self) -> &[QueryEngine] {
        &self.engines
    }

    /// Completed relocations so far.
    pub fn relocations(&self) -> &[RelocationEvent] {
        &self.relocations
    }

    /// The global coordinator (read access for tests).
    pub fn coordinator(&self) -> &GlobalCoordinator {
        &self.gc
    }

    /// Run until the virtual deadline.
    pub fn run_until(&mut self, deadline: VirtualTime) -> Result<()> {
        if self.cfg.batch {
            return self.run_until_batched(deadline);
        }
        while self.gen.now() < deadline {
            let batch = self.gen.generate_ticks(1);
            self.now = batch.first().map(Tuple::ts).unwrap_or(self.now);
            self.on_clock()?;
            for tuple in batch {
                self.route_and_process(tuple)?;
            }
        }
        self.now = deadline;
        self.on_clock()?;
        Ok(())
    }

    /// Batched variant of [`SimDriver::run_until`]: one reused tick
    /// buffer, tuples routed into per-engine batches, one
    /// `process_batch` call per engine per tick. Bit-identical results:
    /// the clock/pulse ordering is unchanged, engines are independent of
    /// each other, and within one engine the batch preserves arrival
    /// order per partition.
    fn run_until_batched(&mut self, deadline: VirtualTime) -> Result<()> {
        while self.gen.now() < deadline {
            let mut tick = std::mem::take(&mut self.tick_buf);
            self.now = self.gen.tick_batch(&mut tick);
            self.on_clock()?;
            self.journal.add_tuples_routed(tick.len() as u64);
            for tuple in tick.drain(..) {
                let pid = self.split.classify(&tuple)?;
                match self.placement.route(pid, tuple)? {
                    Route::Buffered => {
                        self.journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        self.engine_batches[engine.index()].push(pid, tuple);
                    }
                }
            }
            self.tick_buf = tick;
            for i in 0..self.engines.len() {
                if self.engine_batches[i].is_empty() {
                    continue;
                }
                let batch = std::mem::take(&mut self.engine_batches[i]);
                self.engines[i].process_batch(batch, &mut self.sink)?;
            }
        }
        self.now = deadline;
        self.on_clock()?;
        Ok(())
    }

    /// Everything that reacts to the clock, independent of data:
    /// transfer completion, engine `ss_timer`s, coordinator evaluation,
    /// series sampling.
    fn on_clock(&mut self) -> Result<()> {
        self.process_scale_events()?;
        self.pump_protocol()?;
        self.pump_drain()?;
        // Local spill pulses + opportunistic reactivation. Window
        // purges run at the watermark-driven horizon, not the clock:
        // tuples buffered at paused splits hold the horizon back, so a
        // relocation can never purge the partners of tuples it is
        // holding.
        let watermark = self.split.admitted_watermark();
        let horizon = self.placement.purge_horizon(watermark);
        if self.cfg.engine.join.window.is_some() && horizon < watermark {
            self.journal.add_purges_deferred(1);
        }
        for e in &mut self.engines {
            e.tick_with_horizon(self.now, horizon)?;
            // A fenced engine is being emptied: reactivating spilled
            // state back into memory would race the drain (and after
            // the final remap would strand tuples outside the cleanup
            // gather). Its segments stay on disk instead.
            if !self.placement.is_fenced(e.id()) {
                e.maybe_reactivate(&mut self.sink)?;
            }
        }
        self.mirror_engine_spills();
        // Coordinator evaluation.
        if self.stats_timer.expired(self.now) {
            self.stats_timer.reset(self.now);
            self.evaluate_coordinator()?;
        }
        // Series sampling.
        if self.sample_timer.expired(self.now) {
            self.sample_timer.reset(self.now);
            self.sample_series();
            // Debug builds recompute memory accounting from scratch at
            // every sample — any drift in the incremental bookkeeping
            // fails the run immediately instead of skewing decisions.
            #[cfg(debug_assertions)]
            for e in &self.engines {
                e.assert_accounting_consistent()?;
            }
        }
        Ok(())
    }

    fn route_and_process(&mut self, tuple: Tuple) -> Result<()> {
        let pid = self.split.classify(&tuple)?;
        self.journal.add_tuples_routed(1);
        match self.placement.route(pid, tuple)? {
            Route::Buffered => {
                self.journal.add_buffered_in_flight(1);
                Ok(())
            }
            Route::Deliver(engine, tuple) => {
                self.engines[engine.index()].process(pid, tuple, &mut self.sink)?;
                Ok(())
            }
        }
    }

    /// Apply scheduled membership changes whose time has come.
    fn process_scale_events(&mut self) -> Result<()> {
        while self.next_scale < self.scale_events.len()
            && self.scale_events[self.next_scale].at <= self.now
        {
            let event = self.scale_events[self.next_scale];
            self.next_scale += 1;
            match event.action {
                ScaleAction::AddEngine => {
                    let id = self.placement.add_engine()?;
                    let mut qe = QueryEngine::in_memory(id, self.cfg.engine.clone())?;
                    if self.journal.is_enabled() {
                        qe.set_journal(JournalHandle::enabled());
                    }
                    self.engines.push(qe);
                    self.engine_batches.push(TupleBatch::new());
                    self.gc.admit_engine(id, self.now)?;
                    // In-process joiners are ready the instant they
                    // exist — the rebalance planner may target them
                    // from the next evaluation on.
                    self.gc.on_join_ready(id, self.now);
                }
                ScaleAction::DrainEngine(target) => {
                    let engine = match target {
                        Some(e) => e,
                        None => self
                            .gc
                            .active_engines()
                            .into_iter()
                            .max()
                            .ok_or_else(|| DcapeError::config("no active engine to drain"))?,
                    };
                    if self.gc.request_drain(engine, self.now)? {
                        self.placement.fence_engine(engine)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Advance an in-progress drain: promote a deferred drain once the
    /// round blocking it closed, then poll the draining engine's
    /// resident state and execute the resulting step. The socket and
    /// threaded runtimes do the same over `BeginDrain`/`DrainState`
    /// messages; here the poll is a direct call.
    fn pump_drain(&mut self) -> Result<()> {
        if let Some(engine) = self.gc.poll_pending_drain(self.now) {
            self.placement.fence_engine(engine)?;
        }
        let Some(engine) = self.gc.draining_engine() else {
            return Ok(());
        };
        if self.gc.relocation_active() {
            return Ok(());
        }
        let resident = self.engines[engine.index()].memory_used();
        match self.gc.on_drain_state(engine, resident, self.now)? {
            DrainStep::Wait => Ok(()),
            DrainStep::Relocate {
                round,
                sender,
                amount,
                ..
            } => self.send_cptv(round, sender, amount, 0),
            DrainStep::ForceSpill { engine, amount } => {
                self.engines[engine.index()].force_spill(amount, self.now)?;
                Ok(())
            }
            DrainStep::FinalizeRemap { engine, receiver } => self.finalize_drain(engine, receiver),
        }
    }

    /// The draining engine's resident state hit zero: remap whatever
    /// zero-state partitions it still owns straight to `receiver`
    /// (nothing to ship — no 8-step round needed), spill any residual
    /// state to disk and retire the engine. Its segments stay in the
    /// engine vector, so the finish-time cleanup gathers them exactly
    /// like the live runtimes' segment forwarding does.
    fn finalize_drain(&mut self, engine: EngineId, receiver: EngineId) -> Result<()> {
        let parts = self.placement.partitions_of(engine);
        if !parts.is_empty() {
            self.placement.pause(&parts)?;
            let released = self.placement.remap_and_release(&parts, receiver)?;
            for (pid, tuples) in released {
                for tuple in tuples {
                    self.journal.sub_buffered_in_flight(1);
                    self.journal.add_replayed_in_order(1);
                    self.engines[receiver.index()].process(pid, tuple, &mut self.sink)?;
                }
            }
        }
        self.gc.drain_finalized(engine, parts.len(), self.now);
        self.engines[engine.index()].force_spill(u64::MAX, self.now)?;
        self.gc.finish_drain(engine, self.now);
        Ok(())
    }

    /// Mirror engine spill volume into the shared driver journal so the
    /// strategies' counter view is cluster-wide.
    fn mirror_engine_spills(&mut self) {
        if !self.journal.is_enabled() {
            return;
        }
        let (mut total, mut written, mut read) = (0u64, 0u64, 0u64);
        for c in self.engines.iter().filter_map(|e| e.journal().counters()) {
            total += c.spill_bytes();
            written += c.spill_bytes_written();
            read += c.spill_bytes_read();
        }
        let delta = total - self.mirrored_spill_bytes;
        if delta > 0 {
            self.journal.add_spill_bytes(delta);
            self.mirrored_spill_bytes = total;
        }
        let delta = written - self.mirrored_spill_written;
        if delta > 0 {
            self.journal.add_spill_bytes_written(delta);
            self.mirrored_spill_written = written;
        }
        let delta = read - self.mirrored_spill_read;
        if delta > 0 {
            self.journal.add_spill_bytes_read(delta);
            self.mirrored_spill_read = read;
        }
    }

    /// Record a relocation protocol step the driver itself executes
    /// (3–5, 7, 8; the coordinator records 1, 2 and 6).
    #[allow(clippy::too_many_arguments)] // mirrors the event's fields
    fn record_step(
        &self,
        round: u64,
        step: u8,
        sender: EngineId,
        receiver: EngineId,
        parts: &[PartitionId],
        bytes: u64,
        buffered_tuples: u64,
    ) {
        self.journal.record(
            self.now,
            AdaptEvent::RelocationStep {
                round,
                step,
                sender,
                receiver,
                parts: parts.to_vec(),
                bytes,
                buffered_tuples,
                load_ratio: 0.0,
            },
        );
    }

    /// Everything protocol-related the clock drives: due transfers
    /// complete, chaos-delayed control messages deliver, and the
    /// coordinator's phase deadline is polled (retry or abort).
    fn pump_protocol(&mut self) -> Result<()> {
        // Complete due in-flight transfers, in (complete_at, insertion)
        // order — deterministic regardless of how they were queued.
        while let Some(idx) = self
            .in_flight
            .iter()
            .enumerate()
            .filter(|(_, t)| self.now >= t.complete_at)
            .min_by_key(|(i, t)| (t.complete_at, *i))
            .map(|(i, _)| i)
        {
            let t = self.in_flight.remove(idx);
            self.complete_transfer(t)?;
        }
        // Deliver due delayed control messages, same ordering rule.
        while let Some(idx) = self
            .pending
            .iter()
            .enumerate()
            .filter(|(_, (due, _))| self.now >= *due)
            .min_by_key(|(i, (due, _))| (*due, *i))
            .map(|(i, _)| i)
        {
            let (_, event) = self.pending.remove(idx);
            self.deliver_delayed(event)?;
        }
        // Phase deadline: bounded retry, then abort. Each poll either
        // re-arms the deadline in the future or closes the round, so
        // this loop terminates.
        while let Some(action) = self.gc.check_timeout(self.now) {
            self.handle_timeout(action)?;
        }
        Ok(())
    }

    /// Consult the fault plan for one message edge and journal any
    /// injected fault (the `faults_injected` accounting).
    fn edge_decision(&mut self, edge: FaultEdge, round: u64, attempt: u32) -> FaultDecision {
        let decision = self.cfg.faults.decide(edge, round, attempt);
        if let Some(fault) = decision.fault_name() {
            self.journal.add_faults_injected(1);
            self.journal.record(
                self.now,
                AdaptEvent::FaultInjected {
                    fault,
                    edge: edge.name(),
                    round,
                    attempt,
                },
            );
        }
        decision
    }

    fn warn(&self, code: &'static str, engine: EngineId, round: u64, detail: u64) {
        self.journal.record(
            self.now,
            AdaptEvent::ProtocolWarning {
                code,
                engine,
                round,
                detail,
            },
        );
    }

    fn deliver_delayed(&mut self, event: DelayedEvent) -> Result<()> {
        match event {
            DelayedEvent::Cptv {
                round,
                sender,
                amount,
                attempt,
            } => self.deliver_cptv(round, sender, amount, attempt),
            DelayedEvent::Ptv {
                round,
                sender,
                parts,
            } => self.deliver_ptv(round, sender, parts),
            DelayedEvent::SendStates {
                round,
                sender,
                receiver,
                parts,
                attempt,
            } => self.deliver_send_states(round, sender, receiver, parts, attempt),
            DelayedEvent::TransferAck {
                round,
                sender,
                receiver,
                bytes,
            } => self.deliver_transfer_ack(round, sender, receiver, bytes),
        }
    }

    fn handle_timeout(&mut self, action: TimeoutAction) -> Result<()> {
        match action {
            TimeoutAction::RetryCptv {
                round,
                sender,
                amount,
                attempt,
            } => self.send_cptv(round, sender, amount, attempt),
            TimeoutAction::RetrySendStates {
                round,
                sender,
                receiver,
                parts,
                attempt,
            } => self.send_send_states(round, sender, receiver, parts, attempt),
            TimeoutAction::AbortRound {
                round,
                sender,
                receiver,
                parts,
                held_since,
            } => self.abort_round(round, sender, receiver, &parts, held_since),
        }
    }

    /// Step 1 across the faultable channel.
    fn send_cptv(&mut self, round: u64, sender: EngineId, amount: u64, attempt: u32) -> Result<()> {
        match self.edge_decision(FaultEdge::Cptv, round, attempt) {
            FaultDecision::Deliver => self.deliver_cptv(round, sender, amount, attempt),
            // A garbled control message is discarded on receipt — same
            // outcome as a drop; the phase timeout re-sends it.
            FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
            FaultDecision::Duplicate => {
                self.deliver_cptv(round, sender, amount, attempt)?;
                self.deliver_cptv(round, sender, amount, attempt)
            }
            FaultDecision::Delay(ms) => {
                self.pending.push((
                    self.now + VirtualDuration::from_millis(ms),
                    DelayedEvent::Cptv {
                        round,
                        sender,
                        amount,
                        attempt,
                    },
                ));
                Ok(())
            }
        }
    }

    /// Step 1 lands at the sender: compute the partition list and answer
    /// with step 2.
    fn deliver_cptv(
        &mut self,
        round: u64,
        sender: EngineId,
        amount: u64,
        attempt: u32,
    ) -> Result<()> {
        if self.engines[sender.index()].is_stale_round(round) {
            self.warn("stale_cptv", sender, round, 1);
            return Ok(());
        }
        self.engines[sender.index()].set_mode(Mode::Relocation);
        let parts = self.engines[sender.index()].select_parts_to_move(amount);
        self.send_ptv(round, sender, parts, attempt)
    }

    /// Step 2 across the faultable channel (the attempt follows the
    /// `Cptv` that prompted it).
    fn send_ptv(
        &mut self,
        round: u64,
        sender: EngineId,
        parts: Vec<PartitionId>,
        attempt: u32,
    ) -> Result<()> {
        match self.edge_decision(FaultEdge::Ptv, round, attempt) {
            FaultDecision::Deliver => self.deliver_ptv(round, sender, parts),
            FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
            FaultDecision::Duplicate => {
                self.deliver_ptv(round, sender, parts.clone())?;
                self.deliver_ptv(round, sender, parts)
            }
            FaultDecision::Delay(ms) => {
                self.pending.push((
                    self.now + VirtualDuration::from_millis(ms),
                    DelayedEvent::Ptv {
                        round,
                        sender,
                        parts,
                    },
                ));
                Ok(())
            }
        }
    }

    /// Step 2 lands at the coordinator.
    fn deliver_ptv(&mut self, round: u64, sender: EngineId, parts: Vec<PartitionId>) -> Result<()> {
        match self.gc.on_ptv(sender, round, parts, self.now)? {
            None => {
                // Stale or duplicated. If the round it belonged to is
                // gone, the sender must not stay wedged in relocation
                // mode because a late Cptv re-entered it.
                let active_sender = self.gc.active_round_info().map(|(_, s, _, _)| s);
                if active_sender != Some(sender) {
                    self.engines[sender.index()].set_mode(Mode::Normal);
                }
                Ok(())
            }
            Some(Action::Abort) => {
                self.engines[sender.index()].set_mode(Mode::Normal);
                Ok(())
            }
            Some(Action::PauseAndTransfer {
                parts,
                sender,
                receiver,
            }) => {
                // Step 3: pause at the splits.
                self.placement.pause(&parts)?;
                self.record_step(round, 3, sender, receiver, &parts, 0, 0);
                self.engines[receiver.index()].set_mode(Mode::Relocation);
                // Step 4 starts its own attempt ladder (the WaitAck
                // phase was just armed).
                let attempt = self.gc.current_attempt();
                self.send_send_states(round, sender, receiver, parts, attempt)
            }
            Some(Action::RemapAndResume { .. }) => {
                Err(DcapeError::protocol("remap before transfer completed"))
            }
        }
    }

    /// Step 4 across the faultable channel.
    fn send_send_states(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        parts: Vec<PartitionId>,
        attempt: u32,
    ) -> Result<()> {
        match self.edge_decision(FaultEdge::SendStates, round, attempt) {
            FaultDecision::Deliver => {
                self.deliver_send_states(round, sender, receiver, parts, attempt)
            }
            FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
            FaultDecision::Duplicate => {
                self.deliver_send_states(round, sender, receiver, parts.clone(), attempt)?;
                self.deliver_send_states(round, sender, receiver, parts, attempt)
            }
            FaultDecision::Delay(ms) => {
                self.pending.push((
                    self.now + VirtualDuration::from_millis(ms),
                    DelayedEvent::SendStates {
                        round,
                        sender,
                        receiver,
                        parts,
                        attempt,
                    },
                ));
                Ok(())
            }
        }
    }

    /// Step 4 lands at the sender: extract (first time) or re-ship the
    /// retained copy, then put step 5 on the wire.
    fn deliver_send_states(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        parts: Vec<PartitionId>,
        attempt: u32,
    ) -> Result<()> {
        if self.engines[sender.index()].is_stale_round(round) {
            self.warn("stale_send_states", sender, round, 4);
            return Ok(());
        }
        // A chaos-delayed SendStates can name a receiver that was
        // fenced for draining after the round opened; shipping state to
        // it would repopulate an engine being emptied. Drop it — the
        // phase timeout aborts the round.
        if self.placement.is_fenced(receiver) {
            self.warn("send_to_fenced_dropped", receiver, round, 4);
            return Ok(());
        }
        let fresh = !self.engines[sender.index()].outbound_pending(round);
        let groups = self.engines[sender.index()].begin_outbound(round, &parts);
        let bytes: u64 = groups.iter().map(|(g, _, _)| g.state_bytes() as u64).sum();
        if fresh {
            // Journal the extraction once; retries re-ship the same
            // copy and must not inflate the relocation volume.
            self.record_step(round, 4, sender, receiver, &parts, bytes, 0);
            self.journal.add_relocation_bytes(bytes);
            // Wire volume: what the transfer costs in encoded form
            // (the column-block codec typically shrinks this well
            // below the accounted state bytes).
            let encoded: u64 = groups
                .iter()
                .map(|(g, _, _)| g.encode_with(self.cfg.engine.spill_codec).len() as u64)
                .sum();
            self.journal.add_transfer_bytes(encoded);
        }
        // Step 5: the state transfer itself, over modeled network time
        // (the whole round's control chatter is charged here — see
        // `NetworkModel::relocation_round_cost`). A stall fault keeps
        // the receiver unresponsive for a while on top.
        let mut declared_bytes = bytes;
        let mut cost = self.cfg.network.relocation_round_cost(bytes);
        let stall = self
            .cfg
            .faults
            .stall_ms(FaultEdge::InstallStates, round, attempt);
        if stall > 0 {
            self.journal.add_faults_injected(1);
            self.journal.record(
                self.now,
                AdaptEvent::FaultInjected {
                    fault: "stall",
                    edge: FaultEdge::InstallStates.name(),
                    round,
                    attempt,
                },
            );
            cost = cost + VirtualDuration::from_millis(stall);
        }
        let mut copies = 1u32;
        match self.edge_decision(FaultEdge::InstallStates, round, attempt) {
            FaultDecision::Deliver => {}
            FaultDecision::Drop => return Ok(()),
            FaultDecision::CorruptLength => {
                declared_bytes = FaultPlan::corrupt_length(bytes);
            }
            FaultDecision::Delay(ms) => {
                cost = cost + VirtualDuration::from_millis(ms);
            }
            FaultDecision::Duplicate => copies = 2,
        }
        for _ in 0..copies {
            self.in_flight.push(InFlightTransfer {
                round,
                receiver,
                parts: parts.clone(),
                groups: groups.clone(),
                sender,
                bytes,
                declared_bytes,
                attempt,
                complete_at: self.now + cost,
            });
        }
        Ok(())
    }

    /// Step 5 lands at the receiver (transfer completed): verify,
    /// maybe crash, install idempotently, then ack (step 6).
    fn complete_transfer(&mut self, t: InFlightTransfer) -> Result<()> {
        // Corrupt-length detection: the receiver recomputes the payload
        // length and discards on mismatch — equivalent to a drop, healed
        // by the phase timeout re-sending `SendStates`.
        if t.declared_bytes != t.bytes {
            self.warn(
                "corrupt_transfer_discarded",
                t.receiver,
                t.round,
                t.declared_bytes,
            );
            return Ok(());
        }
        // Fenced mid-flight: the receiver started draining while the
        // transfer was on the wire. Discard without acking; the sender's
        // retained copy is reinstalled when the round aborts.
        if self.placement.is_fenced(t.receiver) {
            self.warn("send_to_fenced_dropped", t.receiver, t.round, 5);
            return Ok(());
        }
        // Crash-restart mid-install: the uncommitted installation is
        // lost, no ack goes out; the sender's retained copy stays
        // authoritative and the round retries or aborts.
        if self.cfg.faults.crash_during_install(t.round, t.attempt) {
            self.journal.add_faults_injected(1);
            self.journal.record(
                self.now,
                AdaptEvent::FaultInjected {
                    fault: "crash_restart",
                    edge: FaultEdge::InstallStates.name(),
                    round: t.round,
                    attempt: t.attempt,
                },
            );
            self.engines[t.receiver.index()].crash_restart()?;
            return Ok(());
        }
        let installed =
            self.engines[t.receiver.index()].install_groups_for_round(t.round, t.groups)?;
        if installed {
            self.record_step(t.round, 5, t.sender, t.receiver, &t.parts, t.bytes, 0);
        } else {
            // Duplicate (or stale) install: a no-op, but the ack must
            // still go out — the first one may have been lost.
            self.warn("duplicate_install", t.receiver, t.round, 5);
        }
        self.send_transfer_ack(t.round, t.sender, t.receiver, t.bytes, t.attempt)
    }

    /// Step 6 across the faultable channel.
    fn send_transfer_ack(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        bytes: u64,
        attempt: u32,
    ) -> Result<()> {
        match self.edge_decision(FaultEdge::TransferAck, round, attempt) {
            FaultDecision::Deliver => self.deliver_transfer_ack(round, sender, receiver, bytes),
            FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
            FaultDecision::Duplicate => {
                self.deliver_transfer_ack(round, sender, receiver, bytes)?;
                self.deliver_transfer_ack(round, sender, receiver, bytes)
            }
            FaultDecision::Delay(ms) => {
                self.pending.push((
                    self.now + VirtualDuration::from_millis(ms),
                    DelayedEvent::TransferAck {
                        round,
                        sender,
                        receiver,
                        bytes,
                    },
                ));
                Ok(())
            }
        }
    }

    /// Step 6 lands at the coordinator: close the round (steps 7–8).
    fn deliver_transfer_ack(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        bytes: u64,
    ) -> Result<()> {
        match self.gc.on_transfer_ack(receiver, round, self.now)? {
            // Stale or duplicated ack: already journaled by the
            // coordinator; nothing to execute.
            None => Ok(()),
            Some(Action::RemapAndResume {
                parts,
                receiver,
                held_since,
            }) => self.finish_round(round, sender, receiver, parts, held_since, bytes),
            Some(other) => Err(DcapeError::protocol(format!(
                "unexpected action after ack: {other:?}"
            ))),
        }
    }

    /// Steps 7–8: remap, flush buffered tuples to the new owner, commit
    /// both ends, resume.
    fn finish_round(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        parts: Vec<PartitionId>,
        held_since: VirtualTime,
        bytes: u64,
    ) -> Result<()> {
        // Step 7: remap and flush buffered tuples to the new owner.
        // `remap_and_release` yields per-pid lists in arrival order, so
        // the batched flush is a stable reordering by pid — identical
        // results to the per-tuple flush.
        let released = self.placement.remap_and_release(&parts, receiver)?;
        let mut buffered = 0usize;
        if self.cfg.batch {
            let mut flush = TupleBatch::new();
            for (pid, tuples) in released {
                buffered += tuples.len();
                for tuple in tuples {
                    flush.push(pid, tuple);
                }
            }
            if !flush.is_empty() {
                self.engines[receiver.index()].process_batch(flush, &mut self.sink)?;
            }
        } else {
            for (pid, tuples) in released {
                buffered += tuples.len();
                for tuple in tuples {
                    self.engines[receiver.index()].process(pid, tuple, &mut self.sink)?;
                }
            }
        }
        self.record_step(round, 7, sender, receiver, &parts, 0, buffered as u64);
        self.journal.sub_buffered_in_flight(buffered as u64);
        self.journal.add_replayed_in_order(buffered as u64);
        self.journal
            .add_watermark_held_ms(self.now.as_millis().saturating_sub(held_since.as_millis()));
        // Step 8: resume; the round commits on both ends (the sender
        // drops its retained copy, the receiver's installation becomes
        // permanent, late messages for this round turn stale).
        self.engines[sender.index()].commit_outbound(round);
        self.engines[receiver.index()].commit_inbound(round);
        self.engines[sender.index()].set_mode(Mode::Normal);
        self.engines[receiver.index()].set_mode(Mode::Normal);
        self.record_step(round, 8, sender, receiver, &[], 0, 0);
        // Copies of this round still in flight are moot: the receiver
        // would treat them as duplicates anyway; drop them to keep the
        // in-flight set small.
        self.in_flight.retain(|t| t.round != round);
        self.relocations.push(RelocationEvent {
            at: self.now,
            sender,
            receiver,
            parts: parts.len(),
            bytes,
            buffered_tuples: buffered,
        });
        Ok(())
    }

    /// Retries exhausted: unwind the round. The sender reinstalls its
    /// retained outbound copy, the receiver discards any uncommitted
    /// installation, the paused partitions release **without** an owner
    /// change (their buffered tuples replay to the original owner), and
    /// the held purge watermark is freed.
    fn abort_round(
        &mut self,
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        parts: &[PartitionId],
        held_since: Option<VirtualTime>,
    ) -> Result<()> {
        self.in_flight.retain(|t| t.round != round);
        self.engines[receiver.index()].abort_inbound(round)?;
        self.engines[receiver.index()].set_mode(Mode::Normal);
        let reinstalled = self.engines[sender.index()].abort_outbound(round)?;
        self.engines[sender.index()].set_mode(Mode::Normal);
        self.warn("round_unwound", sender, round, reinstalled as u64);
        if !parts.is_empty() {
            let released = self.placement.release_paused(parts)?;
            let mut buffered = 0usize;
            if self.cfg.batch {
                let mut flush = TupleBatch::new();
                for (pid, tuples) in released {
                    buffered += tuples.len();
                    for tuple in tuples {
                        flush.push(pid, tuple);
                    }
                }
                if !flush.is_empty() {
                    self.engines[sender.index()].process_batch(flush, &mut self.sink)?;
                }
            } else {
                for (pid, tuples) in released {
                    buffered += tuples.len();
                    for tuple in tuples {
                        self.engines[sender.index()].process(pid, tuple, &mut self.sink)?;
                    }
                }
            }
            self.journal.sub_buffered_in_flight(buffered as u64);
            self.journal.add_replayed_in_order(buffered as u64);
            if let Some(held) = held_since {
                self.journal
                    .add_watermark_held_ms(self.now.as_millis().saturating_sub(held.as_millis()));
            }
            self.journal.add_watermark_released_on_abort(1);
        }
        Ok(())
    }

    fn evaluate_coordinator(&mut self) -> Result<()> {
        // Statistics come from active members only — a draining engine
        // must not be picked as a relocation receiver, and a drained
        // one is gone.
        let mut reports = Vec::new();
        for e in self.gc.active_engines() {
            reports.push(self.engines[e.index()].report(self.now));
        }
        let stats = crate::stats::ClusterStats::new(reports);
        match self.gc.evaluate(&stats, self.now)? {
            Decision::None => Ok(()),
            Decision::ForceSpill { engine, amount } => {
                self.engines[engine.index()].force_spill(amount, self.now)?;
                Ok(())
            }
            Decision::Relocate { sender, .. } => {
                // Step 1: Cptv toward the sender, across the (possibly
                // faulty) control channel.
                let (round, s, _r, amount) =
                    self.gc.active_round_info().expect("relocation just opened");
                debug_assert_eq!(s, sender);
                self.send_cptv(round, sender, amount, 0)
            }
        }
    }

    fn sample_series(&mut self) {
        let total: u64 = self.sink.count;
        self.recorder.record("output/total", self.now, total as f64);
        for e in &self.engines {
            let id = e.id();
            self.recorder
                .record(&format!("mem/{id}"), self.now, e.memory_used() as f64);
            self.recorder
                .record(&format!("output/{id}"), self.now, e.total_output() as f64);
        }
    }

    /// Advance virtual time through whatever the protocol still has in
    /// flight — pending transfers, delayed messages, retry ladders —
    /// until every relocation round has committed or aborted. Bounded:
    /// each pass either delivers an event or fires a deadline, and the
    /// retry ladder is finite.
    fn drain_protocol(&mut self) -> Result<()> {
        let mut passes = 0u32;
        while !self.in_flight.is_empty() || !self.pending.is_empty() || self.gc.relocation_active()
        {
            passes += 1;
            if passes > 100_000 {
                return Err(DcapeError::protocol(
                    "relocation protocol failed to quiesce at finish",
                ));
            }
            let next = self
                .in_flight
                .iter()
                .map(|t| t.complete_at)
                .chain(self.pending.iter().map(|(due, _)| *due))
                .chain(self.gc.phase_deadline())
                .min();
            let Some(next) = next else {
                // A round is open but nothing can ever advance it (no
                // retry policy and nothing in flight) — the pre-chaos
                // degenerate case; leave it open.
                break;
            };
            self.now = self.now.max(next);
            self.pump_protocol()?;
        }
        Ok(())
    }

    /// Input ended mid-drain: keep alternating drain polls with
    /// protocol quiescence until the engine is empty and retired. Each
    /// pass either completes a round (moving resident state off), hits
    /// the abort ladder (which bounds to the forced-spill degrade) or
    /// finalizes, so this terminates.
    fn complete_elastic_drain(&mut self) -> Result<()> {
        let mut passes = 0u32;
        while self.gc.drain_in_progress() {
            passes += 1;
            if passes > 10_000 {
                return Err(DcapeError::protocol("drain failed to complete at finish"));
            }
            self.pump_drain()?;
            self.drain_protocol()?;
        }
        Ok(())
    }

    /// Finish the run: drain the relocation protocol, then perform the
    /// cluster-wide cleanup phase and assemble the report.
    pub fn finish(mut self) -> Result<SimReport> {
        self.drain_protocol()?;
        self.complete_elastic_drain()?;
        self.sample_series();
        self.mirror_engine_spills();
        let runtime_output = self.sink.count;
        let runtime_results = self.sink.collect.take();

        // Cluster-wide cleanup: for every partition, gather segments
        // from ALL engines plus the memory-resident group from the
        // current owner, and merge. Costs are attributed to the owner
        // engine (work is executed where the partition lives).
        let mut cleanup_sink = SimSink {
            count: 0,
            collect: self.cfg.collect_results.then(CollectingSink::new),
            count_first: self.cfg.count_first,
        };
        let cost_model = self.cfg.engine.cost;
        let mut cost_ms = vec![0u64; self.engines.len()];
        let join_columns = self.cfg.engine.join.join_columns.clone();

        let mut spilled_pids: Vec<PartitionId> = self
            .engines
            .iter()
            .flat_map(|e| e.spilled_partitions())
            .collect();
        spilled_pids.sort_unstable();
        spilled_pids.dedup();

        for pid in spilled_pids {
            let owner = self.placement.owner(pid)?;
            let mut segments: Vec<SpilledGroup> = Vec::new();
            let mut io_ms = 0u64;
            let mut disk_bytes = 0u64;
            // Chaos: a stalled segment shipment slows this partition's
            // cleanup down (stall-only edge — cleanup messages ride the
            // reliable channel, so content is never lost).
            let stall = self
                .cfg
                .faults
                .stall_ms(FaultEdge::CleanupSegments, u64::from(pid.0), 0);
            if stall > 0 {
                self.journal.add_faults_injected(1);
                self.journal.record(
                    self.now,
                    AdaptEvent::FaultInjected {
                        fault: "stall",
                        edge: FaultEdge::CleanupSegments.name(),
                        round: u64::from(pid.0),
                        attempt: 0,
                    },
                );
                io_ms += stall;
            }
            for e in &mut self.engines {
                for meta in e.spilled_segment_metas(pid) {
                    io_ms += cost_model.disk.io_cost(meta.state_bytes).as_millis();
                    disk_bytes += meta.state_bytes;
                }
                segments.extend(e.take_spilled_segments(pid)?);
            }
            if let Some((resident, _)) = self.engines[owner.index()].extract_resident_group(pid) {
                segments.push(resident);
            }
            let outcome = merge_segments_windowed(
                &join_columns,
                self.cfg.engine.join.window,
                segments,
                &mut cleanup_sink,
            )?;
            self.journal.record(
                self.now,
                AdaptEvent::CleanupPhase {
                    engine: owner,
                    group: pid,
                    missing_results: outcome.missing_results,
                    scanned_tuples: outcome.scanned_tuples,
                    disk_bytes_read: disk_bytes,
                },
            );
            let compute_us = outcome.scanned_tuples * cost_model.cleanup_scan_us_per_tuple
                + outcome.missing_results * cost_model.cleanup_emit_us_per_result;
            cost_ms[owner.index()] += io_ms + compute_us / 1000;
        }

        // Cleanup read the spilled segments back through the engines'
        // journaled spill paths — mirror the final byte volumes.
        self.mirror_engine_spills();

        let journal = if self.journal.is_enabled() {
            let mut rings = vec![self.journal.snapshot()];
            rings.extend(self.engines.iter().map(|e| e.journal().snapshot()));
            merge_journals(rings)
        } else {
            Vec::new()
        };
        let mut journal_counters = self
            .journal
            .counters()
            .map(|c| c.snapshot())
            .unwrap_or_default();
        // Ring accounting is per journal; fold the engines' in.
        for c in self.engines.iter().filter_map(|e| e.journal().counters()) {
            journal_counters.events_recorded += c.events_recorded();
            journal_counters.events_dropped += c.events_dropped();
        }

        Ok(SimReport {
            runtime_output,
            cleanup_output: cleanup_sink.count,
            cleanup_cost_ms: cost_ms,
            relocations: std::mem::take(&mut self.relocations),
            force_spills: self.gc.force_spills_issued(),
            spill_counts: self
                .engines
                .iter()
                .map(|e| e.spill_history().len() as u64)
                .collect(),
            recorder: std::mem::take(&mut self.recorder),
            runtime_results,
            cleanup_results: cleanup_sink.collect,
            journal,
            journal_counters,
        })
    }
}
