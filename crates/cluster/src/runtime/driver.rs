//! Coordinator-side protocol logic shared by the [`super::threaded`] and
//! [`super::socket`] drivers.
//!
//! Both drivers run the same loop — source, splits, global coordinator —
//! and differ only in how a `ToEngine` message reaches its engine (a
//! crossbeam channel vs. a framed TCP connection). Everything here is
//! therefore generic over a `send(engine, msg)` function; the chaos
//! layer (fault decisions, held/delayed messages, timeout recovery) and
//! the coordinator's half of the relocation state machine live on this
//! side of that seam.

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::EngineId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::{AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle};

use dcape_common::ids::PartitionId;

use crate::coordinator::{DrainStep, EngineState, GlobalCoordinator, TimeoutAction};
use crate::faults::{FaultDecision, FaultEdge, FaultPlan};
use crate::messages::{FromEngine, ToEngine};
use crate::placement::PlacementMap;
use crate::relocation::Action;
use crate::stats::ClusterStats;
use crate::strategy::Decision;

/// How a driver puts a message on the wire to one engine.
pub(crate) type SendFn<'a> = dyn FnMut(EngineId, ToEngine) -> Result<()> + 'a;

/// Results folded out of engines that drained and exited *mid-run*
/// (their `CleanupDone` arrives long before the final shutdown merge).
#[derive(Debug, Default)]
pub(crate) struct DrainFold {
    pub(crate) runtime_output: u64,
    pub(crate) cleanup_output: u64,
    pub(crate) cleanup_wall_ms: u64,
    pub(crate) spill_counts: Vec<(EngineId, u64)>,
    pub(crate) journals: Vec<Vec<JournalEntry>>,
    pub(crate) counters: CountersSnapshot,
}

/// Fold one engine's shutdown counters into a cluster-wide snapshot.
/// Spills happen engine-side in the live runtimes (unlike the sim's
/// mirror); the chaos counters fold too: engines inject faults on the
/// edges they send (Ptv, InstallStates, TransferAck).
pub(crate) fn fold_engine_counters(dst: &mut CountersSnapshot, src: &CountersSnapshot) {
    dst.spill_bytes += src.spill_bytes;
    dst.spill_bytes_written += src.spill_bytes_written;
    dst.spill_bytes_read += src.spill_bytes_read;
    dst.transfer_bytes += src.transfer_bytes;
    dst.events_recorded += src.events_recorded;
    dst.events_dropped += src.events_dropped;
    dst.faults_injected += src.faults_injected;
    dst.msgs_retried += src.msgs_retried;
    dst.rounds_aborted += src.rounds_aborted;
    dst.watermark_released_on_abort += src.watermark_released_on_abort;
}

/// Intercept the drain-shutdown handshake of an engine in
/// `DrainCleanup`: its `CleanupReady`/`CleanupDone` arrive mid-run,
/// where the shared coordinator handler treats them as protocol errors.
/// Returns the message back when it is not part of a drain shutdown.
pub(crate) fn intercept_drain_cleanup(
    msg: FromEngine,
    gc: &mut GlobalCoordinator,
    send: &mut impl FnMut(EngineId, ToEngine) -> Result<()>,
    fold: &mut DrainFold,
    now: VirtualTime,
) -> Result<Option<FromEngine>> {
    match msg {
        FromEngine::CleanupReady { engine, .. }
            if gc.engine_state(engine) == EngineState::DrainCleanup =>
        {
            send(engine, ToEngine::StartCleanup)?;
            Ok(None)
        }
        FromEngine::CleanupDone {
            engine,
            runtime_output,
            cleanup_output,
            spill_count,
            cleanup_cost_ms,
            journal,
            journal_counters,
        } if gc.engine_state(engine) == EngineState::DrainCleanup => {
            fold.runtime_output += runtime_output;
            fold.cleanup_output += cleanup_output;
            fold.cleanup_wall_ms = fold.cleanup_wall_ms.max(cleanup_cost_ms);
            fold.spill_counts.push((engine, spill_count));
            fold.journals.push(journal);
            fold_engine_counters(&mut fold.counters, &journal_counters);
            gc.finish_drain(engine, now);
            Ok(None)
        }
        other => Ok(Some(other)),
    }
}

/// Driver-held control messages the chaos layer delayed (`Cptv`,
/// `SendStates`); released into the transport once the virtual clock
/// passes the due time.
pub(crate) type HeldSends = Vec<(VirtualTime, EngineId, ToEngine)>;

/// Consult the fault plan for one message edge, journaling any injected
/// fault (shared by the driver and the engines — both count into
/// `faults_injected`, folded together at shutdown).
pub(crate) fn edge_decision(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
) -> FaultDecision {
    let decision = plan.decide(edge, round, attempt);
    if let Some(fault) = decision.fault_name() {
        journal.add_faults_injected(1);
        journal.record(
            now,
            AdaptEvent::FaultInjected {
                fault,
                edge: edge.name(),
                round,
                attempt,
            },
        );
    }
    decision
}

/// Release driver-held delayed control messages whose due time passed
/// (insertion order among equal due times — FIFO per transport does the
/// rest).
pub(crate) fn release_due(held: &mut HeldSends, now: VirtualTime, send: &mut SendFn) -> Result<()> {
    while let Some(idx) = held
        .iter()
        .enumerate()
        .filter(|(_, (due, _, _))| now >= *due)
        .min_by_key(|(i, (due, _, _))| (*due, *i))
        .map(|(i, _)| i)
    {
        let (_, engine, msg) = held.remove(idx);
        send(engine, msg)?;
    }
    Ok(())
}

/// Put a coordinator-originated control message (`Cptv`, `SendStates`)
/// on the wire through the fault plan: deliver, drop, duplicate, delay
/// or garble it per the seeded schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn chaos_send(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
    target: EngineId,
    make: impl Fn() -> ToEngine,
    send: &mut SendFn,
    held: &mut HeldSends,
) -> Result<()> {
    match edge_decision(plan, journal, now, edge, round, attempt) {
        FaultDecision::Deliver => send(target, make()),
        // A garbled control message is discarded on receipt — same
        // outcome as a drop; the phase timeout re-sends it.
        FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
        FaultDecision::Duplicate => {
            send(target, make())?;
            send(target, make())
        }
        FaultDecision::Delay(ms) => {
            held.push((now + VirtualDuration::from_millis(ms), target, make()));
            Ok(())
        }
    }
}

/// Fence a draining engine: mark it in the placement map, tell every
/// other participant (so stale relocations toward it are dropped), and
/// start the `BeginDrain`/`DrainState` poll loop.
pub(crate) fn start_drain_fencing(
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    engine: EngineId,
) -> Result<()> {
    placement.fence_engine(engine)?;
    for peer in gc.participating_engines() {
        if peer != engine {
            send(peer, ToEngine::FenceNotice { engine })?;
        }
    }
    send(engine, ToEngine::BeginDrain)
}

/// Process a scale-in event: request the drain and, unless it was
/// deferred behind an in-flight round targeting the engine, fence it
/// immediately.
pub(crate) fn begin_drain_event(
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    engine: EngineId,
    now: VirtualTime,
) -> Result<()> {
    if gc.request_drain(engine, now)? {
        start_drain_fencing(gc, placement, send, engine)?;
    }
    Ok(())
}

/// Keep a drain moving after a relocation round ended (completed or
/// aborted): start a deferred drain, or re-poll the draining engine
/// with `BeginDrain` now that the round slot is free.
pub(crate) fn drain_continue(
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    now: VirtualTime,
) -> Result<()> {
    if let Some(engine) = gc.poll_pending_drain(now) {
        return start_drain_fencing(gc, placement, send, engine);
    }
    if !gc.relocation_active() {
        if let Some(engine) = gc.draining_engine() {
            send(engine, ToEngine::BeginDrain)?;
        }
    }
    Ok(())
}

/// Execute [`DrainStep::FinalizeRemap`]: move the draining engine's
/// remaining (zero-state) partitions straight to `receiver` — pause and
/// remap back-to-back, so nothing can buffer in between — then start
/// the cleanup hand-off: flush any residual resident state to disk and
/// have the engine forward every spilled segment to the new owners.
pub(crate) fn finalize_drain_remap(
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    engine: EngineId,
    receiver: EngineId,
    now: VirtualTime,
) -> Result<()> {
    let parts = placement.partitions_of(engine);
    if !parts.is_empty() {
        placement.pause(&parts)?;
        let released = placement.remap_and_release(&parts, receiver)?;
        for (pid, tuples) in released {
            for tuple in tuples {
                send(receiver, ToEngine::Data { pid, tuple })?;
            }
        }
    }
    gc.drain_finalized(engine, parts.len(), now);
    send(engine, ToEngine::StartSpill { amount: u64::MAX })?;
    let owners: Vec<EngineId> = (0..placement.num_partitions())
        .map(|p| placement.owner(PartitionId(p)))
        .collect::<Result<_>>()?;
    send(engine, ToEngine::PrepareCleanup { owners })
}

/// Execute a drain step returned by
/// [`GlobalCoordinator::on_drain_state`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_drain_step(
    step: DrainStep,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    journal: &JournalHandle,
    now: VirtualTime,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    match step {
        DrainStep::Wait => Ok(()),
        DrainStep::ForceSpill { engine, amount } => {
            // The spill and the re-poll ride the reliable channel in
            // order, so the next DrainState reflects the spill.
            send(engine, ToEngine::StartSpill { amount })?;
            send(engine, ToEngine::BeginDrain)
        }
        DrainStep::Relocate {
            round,
            sender,
            amount,
            ..
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::Cptv,
            round,
            0,
            sender,
            || ToEngine::Cptv {
                round,
                amount,
                attempt: 0,
            },
            send,
            held,
        ),
        DrainStep::FinalizeRemap { engine, receiver } => {
            finalize_drain_remap(gc, placement, send, engine, receiver, now)
        }
    }
}

/// Execute a phase-timeout recovery decision: re-send the phase's
/// message (again through the fault plan — a retry can be unlucky
/// twice) or unwind the round.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_timeout_action(
    action: TimeoutAction,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    journal: &JournalHandle,
    now: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    match action {
        TimeoutAction::RetryCptv {
            round,
            sender,
            amount,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::Cptv,
            round,
            attempt,
            sender,
            || ToEngine::Cptv {
                round,
                amount,
                attempt,
            },
            send,
            held,
        ),
        TimeoutAction::RetrySendStates {
            round,
            sender,
            receiver,
            parts,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::SendStates,
            round,
            attempt,
            sender,
            || ToEngine::SendStates {
                round,
                parts: parts.clone(),
                receiver,
                attempt,
            },
            send,
            held,
        ),
        TimeoutAction::AbortRound {
            round,
            sender,
            receiver,
            parts,
            held_since,
        } => {
            // Any delayed copies of this round's control messages are
            // moot — the engines treat them as stale if they do land,
            // but don't even bother releasing them.
            held.retain(|(_, _, m)| {
                !matches!(m,
                    ToEngine::Cptv { round: r, .. } | ToEngine::SendStates { round: r, .. }
                    if *r == round)
            });
            // Abort notifications ride the reliable channel (an abort
            // that can be lost is not an abort protocol). FIFO order:
            // the sender reinstalls its retained copy before any
            // replayed tuple reaches it.
            send(receiver, ToEngine::AbortRound { round })?;
            send(sender, ToEngine::AbortRound { round })?;
            if !parts.is_empty() {
                // Release without remapping: ownership never changed,
                // so the buffered tuples replay to the original owner.
                let released = placement.release_paused(&parts)?;
                let mut buffered = 0u64;
                if batch_mode {
                    let mut flush = TupleBatch::new();
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            flush.push(pid, tuple);
                        }
                    }
                    if !flush.is_empty() {
                        send(sender, ToEngine::DataBatch { tuples: flush })?;
                    }
                } else {
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            send(sender, ToEngine::Data { pid, tuple })?;
                        }
                    }
                }
                journal.sub_buffered_in_flight(buffered);
                journal.add_replayed_in_order(buffered);
                if let Some(held_at) = held_since {
                    journal
                        .add_watermark_held_ms(now.as_millis().saturating_sub(held_at.as_millis()));
                }
                journal.add_watermark_released_on_abort(1);
            }
            // The round slot is free again — keep any drain moving.
            drain_continue(gc, placement, send, now)
        }
    }
}

/// Coordinator-side message handling (shared by the run loop and the
/// quiesce loop of both drivers).
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_coordinator_msg(
    msg: FromEngine,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    pending_stats: &mut [Option<dcape_engine::stats::EngineStatsReport>],
    awaiting_stats: &mut bool,
    relocations: &mut u64,
    journal: &JournalHandle,
    now: VirtualTime,
    watermark: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    match msg {
        FromEngine::Stats(report) => {
            let idx = report.engine.index();
            pending_stats[idx] = Some(report);
            // Completeness over the *active* set: draining engines may
            // exit mid-cycle, and the strategy must not pick them as
            // sender or receiver anyway.
            let active = gc.active_engines();
            let complete = if active.is_empty() {
                pending_stats.iter().all(Option::is_some)
            } else {
                active.iter().all(|e| pending_stats[e.index()].is_some())
            };
            if *awaiting_stats && complete {
                *awaiting_stats = false;
                let reports = if active.is_empty() {
                    pending_stats.iter().flatten().copied().collect()
                } else {
                    active
                        .iter()
                        .filter_map(|e| pending_stats[e.index()])
                        .collect()
                };
                let stats = ClusterStats::new(reports);
                match gc.evaluate(&stats, now)? {
                    Decision::None => {}
                    Decision::ForceSpill { engine, amount } => {
                        send(engine, ToEngine::StartSpill { amount })?;
                    }
                    Decision::Relocate { sender, .. } => {
                        let (round, s, _r, amount) =
                            gc.active_round_info().expect("round just opened");
                        debug_assert_eq!(s, sender);
                        chaos_send(
                            plan,
                            journal,
                            now,
                            FaultEdge::Cptv,
                            round,
                            0,
                            sender,
                            || ToEngine::Cptv {
                                round,
                                amount,
                                attempt: 0,
                            },
                            send,
                            held,
                        )?;
                    }
                }
            }
            Ok(())
        }
        FromEngine::Ptv {
            round,
            engine,
            parts,
        } => match gc.on_ptv(engine, round, parts, now)? {
            // Stale or duplicated Ptv: already journaled. If its round
            // is gone and the engine is not the sender of a live one, a
            // Resume stops it idling in relocation mode after a late
            // Cptv re-entered it.
            None => {
                let active_sender = gc.active_round_info().map(|(_, s, _, _)| s);
                if active_sender != Some(engine) {
                    send(engine, ToEngine::Resume { round, watermark })?;
                }
                Ok(())
            }
            // Aborted rounds paused nothing, so the full admitted
            // watermark is already safe to release.
            Some(Action::Abort) => {
                send(engine, ToEngine::Resume { round, watermark })?;
                drain_continue(gc, placement, send, now)
            }
            Some(Action::PauseAndTransfer {
                parts,
                sender,
                receiver,
            }) => {
                placement.pause(&parts)?;
                journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round,
                        step: 3,
                        sender,
                        receiver,
                        parts: parts.clone(),
                        bytes: 0,
                        buffered_tuples: 0,
                        load_ratio: 0.0,
                    },
                );
                let attempt = gc.current_attempt();
                chaos_send(
                    plan,
                    journal,
                    now,
                    FaultEdge::SendStates,
                    round,
                    attempt,
                    sender,
                    || ToEngine::SendStates {
                        round,
                        parts: parts.clone(),
                        receiver,
                        attempt,
                    },
                    send,
                    held,
                )
            }
            Some(Action::RemapAndResume { .. }) => {
                Err(DcapeError::protocol("remap action out of order"))
            }
        },
        FromEngine::TransferAck {
            round,
            engine,
            bytes,
        } => {
            // Capture the pair before the ack closes the round.
            let sender = gc.active_round_info().map(|(_, s, ..)| s).unwrap_or(engine);
            match gc.on_transfer_ack(engine, round, now)? {
                // Stale or duplicated ack: already journaled; nothing
                // to execute (and nothing to double-count).
                None => Ok(()),
                Some(Action::RemapAndResume {
                    parts,
                    receiver,
                    held_since,
                }) => {
                    journal.add_relocation_bytes(bytes);
                    // Step 7: flush the split-side buffers to the new
                    // owner — as one batch in batch mode (per-pid lists
                    // arrive in order; batching is a stable reordering).
                    let released = placement.remap_and_release(&parts, receiver)?;
                    let mut buffered = 0u64;
                    if batch_mode {
                        let mut flush = TupleBatch::new();
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                flush.push(pid, tuple);
                            }
                        }
                        if !flush.is_empty() {
                            send(receiver, ToEngine::DataBatch { tuples: flush })?;
                        }
                    } else {
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                send(receiver, ToEngine::Data { pid, tuple })?;
                            }
                        }
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 7,
                            sender,
                            receiver,
                            parts,
                            bytes: 0,
                            buffered_tuples: buffered,
                            load_ratio: 0.0,
                        },
                    );
                    journal.sub_buffered_in_flight(buffered);
                    journal.add_replayed_in_order(buffered);
                    journal.add_watermark_held_ms(
                        now.as_millis().saturating_sub(held_since.as_millis()),
                    );
                    *relocations += 1;
                    // Step 8: resume both parties, releasing the held
                    // purge watermark. Every replayed tuple was sent
                    // (FIFO) before this Resume and every later arrival
                    // carries `ts >= watermark`, so engines may catch
                    // their window purge up to `watermark` on receipt.
                    // The sender is derivable from the completed
                    // round's parts' previous owner; we broadcast
                    // Resume — engines ignore stale rounds.
                    for peer in broadcast_set(gc, pending_stats.len()) {
                        send(peer, ToEngine::Resume { round, watermark })?;
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 8,
                            sender,
                            receiver,
                            parts: Vec::new(),
                            bytes: 0,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    // The round slot is free again — keep any drain
                    // moving.
                    drain_continue(gc, placement, send, now)
                }
                other => Err(DcapeError::protocol(format!(
                    "unexpected action after ack: {other:?}"
                ))),
            }
        }
        FromEngine::DrainState {
            engine,
            resident_bytes,
        } => {
            let step = gc.on_drain_state(engine, resident_bytes, now)?;
            handle_drain_step(step, gc, placement, send, journal, now, plan, held)
        }
        FromEngine::JoinReady { engine } => {
            gc.on_join_ready(engine, now);
            Ok(())
        }
        // Mid-run cleanup traffic belongs to a drain hand-off; the
        // drivers intercept it (they own the counter accumulators) and
        // only a misrouted message lands here.
        FromEngine::CleanupReady { .. } | FromEngine::CleanupDone { .. } => {
            Err(DcapeError::protocol("cleanup message before shutdown"))
        }
    }
}

/// The engines a protocol broadcast must reach: the participating
/// membership, or every provisioned slot in legacy mode.
pub(crate) fn broadcast_set(gc: &GlobalCoordinator, capacity: usize) -> Vec<EngineId> {
    let members = gc.participating_engines();
    if members.is_empty() {
        (0..capacity).map(|i| EngineId(i as u16)).collect()
    } else {
        members
    }
}
