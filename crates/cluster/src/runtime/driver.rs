//! Coordinator-side protocol logic shared by the [`super::threaded`] and
//! [`super::socket`] drivers.
//!
//! Both drivers run the same loop — source, splits, global coordinator —
//! and differ only in how a `ToEngine` message reaches its engine (a
//! crossbeam channel vs. a framed TCP connection). Everything here is
//! therefore generic over a `send(engine, msg)` function; the chaos
//! layer (fault decisions, held/delayed messages, timeout recovery) and
//! the coordinator's half of the relocation state machine live on this
//! side of that seam.

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::EngineId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::{AdaptEvent, JournalHandle};

use crate::coordinator::{GlobalCoordinator, TimeoutAction};
use crate::faults::{FaultDecision, FaultEdge, FaultPlan};
use crate::messages::{FromEngine, ToEngine};
use crate::placement::PlacementMap;
use crate::relocation::Action;
use crate::stats::ClusterStats;
use crate::strategy::Decision;

/// How a driver puts a message on the wire to one engine.
pub(crate) type SendFn<'a> = dyn FnMut(EngineId, ToEngine) -> Result<()> + 'a;

/// Driver-held control messages the chaos layer delayed (`Cptv`,
/// `SendStates`); released into the transport once the virtual clock
/// passes the due time.
pub(crate) type HeldSends = Vec<(VirtualTime, EngineId, ToEngine)>;

/// Consult the fault plan for one message edge, journaling any injected
/// fault (shared by the driver and the engines — both count into
/// `faults_injected`, folded together at shutdown).
pub(crate) fn edge_decision(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
) -> FaultDecision {
    let decision = plan.decide(edge, round, attempt);
    if let Some(fault) = decision.fault_name() {
        journal.add_faults_injected(1);
        journal.record(
            now,
            AdaptEvent::FaultInjected {
                fault,
                edge: edge.name(),
                round,
                attempt,
            },
        );
    }
    decision
}

/// Release driver-held delayed control messages whose due time passed
/// (insertion order among equal due times — FIFO per transport does the
/// rest).
pub(crate) fn release_due(held: &mut HeldSends, now: VirtualTime, send: &mut SendFn) -> Result<()> {
    while let Some(idx) = held
        .iter()
        .enumerate()
        .filter(|(_, (due, _, _))| now >= *due)
        .min_by_key(|(i, (due, _, _))| (*due, *i))
        .map(|(i, _)| i)
    {
        let (_, engine, msg) = held.remove(idx);
        send(engine, msg)?;
    }
    Ok(())
}

/// Put a coordinator-originated control message (`Cptv`, `SendStates`)
/// on the wire through the fault plan: deliver, drop, duplicate, delay
/// or garble it per the seeded schedule.
#[allow(clippy::too_many_arguments)]
pub(crate) fn chaos_send(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
    target: EngineId,
    make: impl Fn() -> ToEngine,
    send: &mut SendFn,
    held: &mut HeldSends,
) -> Result<()> {
    match edge_decision(plan, journal, now, edge, round, attempt) {
        FaultDecision::Deliver => send(target, make()),
        // A garbled control message is discarded on receipt — same
        // outcome as a drop; the phase timeout re-sends it.
        FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
        FaultDecision::Duplicate => {
            send(target, make())?;
            send(target, make())
        }
        FaultDecision::Delay(ms) => {
            held.push((now + VirtualDuration::from_millis(ms), target, make()));
            Ok(())
        }
    }
}

/// Execute a phase-timeout recovery decision: re-send the phase's
/// message (again through the fault plan — a retry can be unlucky
/// twice) or unwind the round.
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_timeout_action(
    action: TimeoutAction,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    journal: &JournalHandle,
    now: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    match action {
        TimeoutAction::RetryCptv {
            round,
            sender,
            amount,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::Cptv,
            round,
            attempt,
            sender,
            || ToEngine::Cptv {
                round,
                amount,
                attempt,
            },
            send,
            held,
        ),
        TimeoutAction::RetrySendStates {
            round,
            sender,
            receiver,
            parts,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::SendStates,
            round,
            attempt,
            sender,
            || ToEngine::SendStates {
                round,
                parts: parts.clone(),
                receiver,
                attempt,
            },
            send,
            held,
        ),
        TimeoutAction::AbortRound {
            round,
            sender,
            receiver,
            parts,
            held_since,
        } => {
            // Any delayed copies of this round's control messages are
            // moot — the engines treat them as stale if they do land,
            // but don't even bother releasing them.
            held.retain(|(_, _, m)| {
                !matches!(m,
                    ToEngine::Cptv { round: r, .. } | ToEngine::SendStates { round: r, .. }
                    if *r == round)
            });
            // Abort notifications ride the reliable channel (an abort
            // that can be lost is not an abort protocol). FIFO order:
            // the sender reinstalls its retained copy before any
            // replayed tuple reaches it.
            send(receiver, ToEngine::AbortRound { round })?;
            send(sender, ToEngine::AbortRound { round })?;
            if !parts.is_empty() {
                // Release without remapping: ownership never changed,
                // so the buffered tuples replay to the original owner.
                let released = placement.release_paused(&parts)?;
                let mut buffered = 0u64;
                if batch_mode {
                    let mut flush = TupleBatch::new();
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            flush.push(pid, tuple);
                        }
                    }
                    if !flush.is_empty() {
                        send(sender, ToEngine::DataBatch { tuples: flush })?;
                    }
                } else {
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            send(sender, ToEngine::Data { pid, tuple })?;
                        }
                    }
                }
                journal.sub_buffered_in_flight(buffered);
                journal.add_replayed_in_order(buffered);
                if let Some(held_at) = held_since {
                    journal
                        .add_watermark_held_ms(now.as_millis().saturating_sub(held_at.as_millis()));
                }
                journal.add_watermark_released_on_abort(1);
            }
            Ok(())
        }
    }
}

/// Coordinator-side message handling (shared by the run loop and the
/// quiesce loop of both drivers).
#[allow(clippy::too_many_arguments)]
pub(crate) fn handle_coordinator_msg(
    msg: FromEngine,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    send: &mut SendFn,
    num_engines: usize,
    pending_stats: &mut [Option<dcape_engine::stats::EngineStatsReport>],
    awaiting_stats: &mut bool,
    relocations: &mut u64,
    journal: &JournalHandle,
    now: VirtualTime,
    watermark: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    match msg {
        FromEngine::Stats(report) => {
            let idx = report.engine.index();
            pending_stats[idx] = Some(report);
            if *awaiting_stats && pending_stats.iter().all(Option::is_some) {
                *awaiting_stats = false;
                let stats = ClusterStats::new(pending_stats.iter().flatten().copied().collect());
                match gc.evaluate(&stats, now)? {
                    Decision::None => {}
                    Decision::ForceSpill { engine, amount } => {
                        send(engine, ToEngine::StartSpill { amount })?;
                    }
                    Decision::Relocate { sender, .. } => {
                        let (round, s, _r, amount) =
                            gc.active_round_info().expect("round just opened");
                        debug_assert_eq!(s, sender);
                        chaos_send(
                            plan,
                            journal,
                            now,
                            FaultEdge::Cptv,
                            round,
                            0,
                            sender,
                            || ToEngine::Cptv {
                                round,
                                amount,
                                attempt: 0,
                            },
                            send,
                            held,
                        )?;
                    }
                }
            }
            Ok(())
        }
        FromEngine::Ptv {
            round,
            engine,
            parts,
        } => match gc.on_ptv(engine, round, parts, now)? {
            // Stale or duplicated Ptv: already journaled. If its round
            // is gone and the engine is not the sender of a live one, a
            // Resume stops it idling in relocation mode after a late
            // Cptv re-entered it.
            None => {
                let active_sender = gc.active_round_info().map(|(_, s, _, _)| s);
                if active_sender != Some(engine) {
                    send(engine, ToEngine::Resume { round, watermark })?;
                }
                Ok(())
            }
            // Aborted rounds paused nothing, so the full admitted
            // watermark is already safe to release.
            Some(Action::Abort) => send(engine, ToEngine::Resume { round, watermark }),
            Some(Action::PauseAndTransfer {
                parts,
                sender,
                receiver,
            }) => {
                placement.pause(&parts)?;
                journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round,
                        step: 3,
                        sender,
                        receiver,
                        parts: parts.clone(),
                        bytes: 0,
                        buffered_tuples: 0,
                        load_ratio: 0.0,
                    },
                );
                let attempt = gc.current_attempt();
                chaos_send(
                    plan,
                    journal,
                    now,
                    FaultEdge::SendStates,
                    round,
                    attempt,
                    sender,
                    || ToEngine::SendStates {
                        round,
                        parts: parts.clone(),
                        receiver,
                        attempt,
                    },
                    send,
                    held,
                )
            }
            Some(Action::RemapAndResume { .. }) => {
                Err(DcapeError::protocol("remap action out of order"))
            }
        },
        FromEngine::TransferAck {
            round,
            engine,
            bytes,
        } => {
            // Capture the pair before the ack closes the round.
            let sender = gc.active_round_info().map(|(_, s, ..)| s).unwrap_or(engine);
            match gc.on_transfer_ack(engine, round, now)? {
                // Stale or duplicated ack: already journaled; nothing
                // to execute (and nothing to double-count).
                None => Ok(()),
                Some(Action::RemapAndResume {
                    parts,
                    receiver,
                    held_since,
                }) => {
                    journal.add_relocation_bytes(bytes);
                    // Step 7: flush the split-side buffers to the new
                    // owner — as one batch in batch mode (per-pid lists
                    // arrive in order; batching is a stable reordering).
                    let released = placement.remap_and_release(&parts, receiver)?;
                    let mut buffered = 0u64;
                    if batch_mode {
                        let mut flush = TupleBatch::new();
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                flush.push(pid, tuple);
                            }
                        }
                        if !flush.is_empty() {
                            send(receiver, ToEngine::DataBatch { tuples: flush })?;
                        }
                    } else {
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                send(receiver, ToEngine::Data { pid, tuple })?;
                            }
                        }
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 7,
                            sender,
                            receiver,
                            parts,
                            bytes: 0,
                            buffered_tuples: buffered,
                            load_ratio: 0.0,
                        },
                    );
                    journal.sub_buffered_in_flight(buffered);
                    journal.add_replayed_in_order(buffered);
                    journal.add_watermark_held_ms(
                        now.as_millis().saturating_sub(held_since.as_millis()),
                    );
                    *relocations += 1;
                    // Step 8: resume both parties, releasing the held
                    // purge watermark. Every replayed tuple was sent
                    // (FIFO) before this Resume and every later arrival
                    // carries `ts >= watermark`, so engines may catch
                    // their window purge up to `watermark` on receipt.
                    // The sender is derivable from the completed
                    // round's parts' previous owner; we broadcast
                    // Resume — engines ignore stale rounds.
                    for i in 0..num_engines {
                        send(EngineId(i as u16), ToEngine::Resume { round, watermark })?;
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 8,
                            sender,
                            receiver,
                            parts: Vec::new(),
                            bytes: 0,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    Ok(())
                }
                other => Err(DcapeError::protocol(format!(
                    "unexpected action after ack: {other:?}"
                ))),
            }
        }
        FromEngine::CleanupReady { .. } | FromEngine::CleanupDone { .. } => {
            Err(DcapeError::protocol("cleanup message before shutdown"))
        }
    }
}
