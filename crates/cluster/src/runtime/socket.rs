//! The socket cluster runtime: one OS **process** per query engine.
//!
//! This is the closest driver to the paper's deployment: the
//! coordinator process runs the source, splits, and global coordinator
//! (exactly the loop of [`super::threaded`], via [`super::driver`]),
//! while each engine lives in its own `dcape-node` worker process and
//! exchanges the [`crate::messages`] protocol as length-framed binary
//! messages ([`crate::wire`]) over TCP.
//!
//! ## Topology and ordering
//!
//! Star: every worker holds exactly one connection to the coordinator.
//! Engine-to-engine messages (`InstallStates`, `ForwardedSegments`) are
//! wrapped in [`WireMsg::Relay`] and re-framed by the coordinator's main
//! loop onto the target's sequenced stream. A single FIFO connection
//! per worker is strictly stronger than the threaded driver's
//! per-channel FIFO, so every ordering argument (replay-before-Resume,
//! forwards-before-StartCleanup) carries over.
//!
//! ## Crash-restart and replay
//!
//! Every coordinator→worker frame carries a sequence number and is
//! retained for the lifetime of the run. A worker that dies (a
//! chaos-injected `std::process::exit(86)`, or a real `kill -9` from a
//! [`KillPlan`]) is respawned and replays its **entire** history: the
//! fresh process rebuilds join state, sink counts, and protocol state
//! deterministically by reprocessing the same frames in the same order.
//! The `Welcome` handshake tells the worker how much of the stream is
//! replayed history (`replay_until`); fault-plan consults are
//! suppressed for those frames — the faults on them already happened in
//! a previous life, and re-firing a deterministically scheduled crash
//! would loop forever. Duplicate worker→coordinator messages produced
//! by the replay (`Ptv`, `TransferAck`, `Stats`) are exactly the
//! stale/duplicate cases the hardened coordinator already tolerates.
//!
//! Retention is unbounded by design (a run's full frame history); the
//! test-scale workloads this driver serves keep it tens of megabytes.

use std::io::{BufReader, Write as IoWrite};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{PeriodicTimer, VirtualDuration, VirtualTime};
use dcape_metrics::journal::{
    merge_journals, AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle,
};
use dcape_streamgen::StreamSetGenerator;

use crate::coordinator::{EngineState, GlobalCoordinator, RetryPolicy};
use crate::faults::{FaultConfig, FaultPlan};
use crate::messages::{FromEngine, ToEngine};
use crate::placement::{PlacementMap, Route};
use crate::runtime::driver::{
    begin_drain_event, fold_engine_counters, handle_coordinator_msg, handle_timeout_action,
    intercept_drain_cleanup, release_due, DrainFold, HeldSends,
};
use crate::runtime::engine_core::{EngineCore, EngineFlow, EngineTx};
use crate::runtime::sim::{ScaleAction, SimConfig};
use crate::runtime::threaded::ThreadedReport;
use crate::wire::{
    frame_bytes, msg_kind_name, read_frame, write_frame, Hello, Welcome, WireMsg, CRASH_EXIT,
};

/// Respawn budget per engine; beyond this the run fails (a worker
/// crash-looping is a bug, not chaos).
pub const MAX_RESPAWNS: u32 = 10;

/// Test hook: hard-kill one worker process (`SIGKILL` — no exit
/// handler, no flush) after its `after_stats`-th `Stats` report, then
/// let the respawn/replay machinery prove exactly-once recovery.
#[derive(Debug, Clone, Copy)]
pub struct KillPlan {
    /// Which engine's worker to kill.
    pub engine: EngineId,
    /// Kill after this many `Stats` messages from that engine.
    pub after_stats: u32,
}

/// Where the workers come from.
#[derive(Debug, Clone)]
pub enum SocketMode {
    /// Single-machine mode: bind an ephemeral loopback port and spawn
    /// `node_bin` as one child process per engine. Crashed workers are
    /// respawned.
    Spawn {
        /// Path to the `dcape-node` binary.
        node_bin: PathBuf,
    },
    /// Bind `addr` and wait for externally started workers
    /// (`dcape-node --connect <addr> --engine-id <i>`). No respawn: a
    /// disconnected worker fails the run.
    Listen {
        /// Address to listen on, e.g. `"0.0.0.0:7431"`.
        addr: String,
    },
}

/// Configuration of one socket-runtime run.
#[derive(Debug, Clone)]
pub struct SocketConfig {
    /// The experiment, identical to what the sim/threaded drivers take.
    pub sim: SimConfig,
    /// Worker provisioning.
    pub mode: SocketMode,
    /// Optional hard-kill fault injection (spawn mode only).
    pub kill: Option<KillPlan>,
}

/// Resolve the worker binary for spawn mode: `DCAPE_NODE_BIN` if set,
/// else a `dcape-node` sibling of the current executable (which is
/// where cargo puts it for both `repro` and integration tests).
pub fn default_node_bin() -> PathBuf {
    if let Ok(p) = std::env::var("DCAPE_NODE_BIN") {
        return PathBuf::from(p);
    }
    let mut p = std::env::current_exe().unwrap_or_default();
    p.pop();
    // Integration-test binaries live one level below target/<profile>/.
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("dcape-node");
    p
}

// ---------------------------------------------------------------------
// Connection fabric (coordinator side).

/// Mutable connection state of one worker, shared between the acceptor
/// thread (attach on handshake) and the outbox thread (writes).
struct SlotState {
    /// Live stream, if connected.
    stream: Option<TcpStream>,
    /// Bumped on every (re)attach; guards stale disconnect events.
    epoch: u64,
    /// Frame index the outbox must rewind to for this epoch.
    resume_from: u64,
}

struct ConnSlot {
    state: Mutex<SlotState>,
    /// Next frame sequence number (1-based) — assigned by the main
    /// thread at enqueue, so retention order equals seq order.
    next_seq: AtomicU64,
}

impl ConnSlot {
    fn new() -> Self {
        ConnSlot {
            state: Mutex::new(SlotState {
                stream: None,
                epoch: 0,
                resume_from: 0,
            }),
            next_seq: AtomicU64::new(1),
        }
    }
}

/// What reader/acceptor threads post to the coordinator main loop.
enum Event {
    /// A protocol message from a worker.
    Msg(FromEngine),
    /// A worker-originated peer message to forward.
    Relay { to: EngineId, msg: ToEngine },
    /// A worker connection ended (EOF or I/O error).
    Disconnected { engine: EngineId, epoch: u64 },
    /// A worker sent an undecodable or out-of-protocol frame.
    Fatal { engine: EngineId, error: String },
}

/// The coordinator's transport: per-engine outbox channels feeding
/// writer threads, with full frame retention for crash replay.
struct Net {
    slots: Vec<Arc<ConnSlot>>,
    outboxes: Vec<Sender<Vec<u8>>>,
    /// Per-engine frame logs (`DCAPE_FRAME_LOG_DIR`), if enabled.
    logs: Option<Vec<std::fs::File>>,
}

impl Net {
    /// Frame, sequence, log and enqueue one engine-bound message.
    /// Never fails on a dead connection — frames accumulate in
    /// retention and reach the worker (or its respawn) when it is back.
    fn send(&self, e: EngineId, msg: ToEngine) -> Result<()> {
        let slot = &self.slots[e.index()];
        let seq = slot.next_seq.fetch_add(1, Ordering::SeqCst);
        let wire = WireMsg::Engine(msg);
        let frame = frame_bytes(seq, &wire)?;
        if let Some(logs) = &self.logs {
            let mut f = &logs[e.index()];
            let _ = writeln!(
                f,
                "tx seq={seq} kind={} len={}",
                msg_kind_name(&wire),
                frame.len()
            );
        }
        self.outboxes[e.index()]
            .send(frame)
            .map_err(|_| DcapeError::Disconnected(format!("outbox for engine {e} closed")))
    }

    fn log_rx(&self, e: EngineId, kind: &str) {
        if let Some(logs) = &self.logs {
            let mut f = &logs[e.index()];
            let _ = writeln!(f, "rx kind={kind}");
        }
    }
}

/// Outbox writer for one worker: drains the channel into the retention
/// log and writes every retained frame, in order, to whatever stream
/// the slot currently holds — rewinding to `resume_from` when the
/// acceptor attaches a new epoch. Write errors only detach the local
/// stream copy; the reader thread's EOF drives the actual respawn.
fn outbox_thread(slot: Arc<ConnSlot>, rx: Receiver<Vec<u8>>) {
    let mut retention: Vec<Vec<u8>> = Vec::new();
    let mut sent_idx = 0usize;
    let mut cur: Option<TcpStream> = None;
    let mut cur_epoch = 0u64;
    let mut closed = false;
    loop {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(f) => {
                retention.push(f);
                while let Ok(f) = rx.try_recv() {
                    retention.push(f);
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => closed = true,
        }
        {
            let st = slot.state.lock().expect("slot lock");
            if st.epoch != cur_epoch {
                cur_epoch = st.epoch;
                cur = st.stream.as_ref().and_then(|s| s.try_clone().ok());
                sent_idx = st.resume_from as usize;
            } else if st.stream.is_none() {
                cur = None;
            }
        }
        if let Some(s) = cur.as_mut() {
            let mut broken = false;
            while sent_idx < retention.len() {
                if s.write_all(&retention[sent_idx]).is_err() {
                    broken = true;
                    break;
                }
                sent_idx += 1;
            }
            if broken {
                cur = None;
            } else {
                let _ = s.flush();
            }
        }
        if closed && (sent_idx >= retention.len() || cur.is_none()) {
            // The main loop hung up and everything deliverable was
            // delivered (a worker that already exited cleanly does not
            // need the rest).
            return;
        }
    }
}

/// Everything the acceptor needs to answer a `Hello`.
struct WelcomeTemplate {
    num_engines: u16,
    config: dcape_engine::config::EngineConfig,
    journal: bool,
    count_first: bool,
    fault_seed: u64,
    faults: FaultConfig,
}

/// Accept loop: handshake (`Hello` in, `Welcome` out — written
/// synchronously on the new stream *before* it is attached to the
/// outbox, so the worker always sees `Welcome` first), then attach the
/// stream and spawn its reader thread.
fn acceptor_thread(
    listener: TcpListener,
    slots: Vec<Arc<ConnSlot>>,
    tmpl: Arc<WelcomeTemplate>,
    events: Sender<Event>,
    shutdown: Arc<AtomicBool>,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(conn) => conn,
            Err(_) => continue,
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_nodelay(true);
        // A wedged client must not block the acceptor forever.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let hello = match read_frame(&mut (&stream)) {
            Ok(Some((_, WireMsg::Hello(h)))) => h,
            _ => continue, // not one of ours; drop it
        };
        let _ = stream.set_read_timeout(None);
        let Some(slot) = slots.get(hello.engine.index()) else {
            continue;
        };
        let replay_until = slot.next_seq.load(Ordering::SeqCst).saturating_sub(1);
        let welcome = Welcome {
            engine: hello.engine,
            num_engines: tmpl.num_engines,
            config: tmpl.config.clone(),
            journal: tmpl.journal,
            count_first: tmpl.count_first,
            fault_seed: tmpl.fault_seed,
            faults: tmpl.faults,
            replay_until,
        };
        if write_frame(&mut (&stream), 0, &WireMsg::Welcome(Box::new(welcome))).is_err() {
            continue;
        }
        let epoch = {
            let mut st = slot.state.lock().expect("slot lock");
            st.epoch += 1;
            st.resume_from = hello.resume_from;
            st.stream = stream.try_clone().ok();
            st.epoch
        };
        let engine = hello.engine;
        let tx = events.clone();
        let _ = thread::Builder::new()
            .name(format!("dcape-rx-e{}", engine.index()))
            .spawn(move || reader_thread(stream, engine, epoch, tx));
    }
}

/// Per-connection reader: decode frames into events until EOF/error.
fn reader_thread(stream: TcpStream, engine: EngineId, epoch: u64, tx: Sender<Event>) {
    let mut r = BufReader::new(stream);
    loop {
        match read_frame(&mut r) {
            Ok(Some((_, WireMsg::Coord(m)))) => {
                if tx.send(Event::Msg(m)).is_err() {
                    return;
                }
            }
            Ok(Some((_, WireMsg::Relay { to, msg }))) => {
                if tx.send(Event::Relay { to, msg }).is_err() {
                    return;
                }
            }
            Ok(Some((_, other))) => {
                let _ = tx.send(Event::Fatal {
                    engine,
                    error: format!("unexpected frame from worker: {}", msg_kind_name(&other)),
                });
                return;
            }
            Ok(None) => {
                let _ = tx.send(Event::Disconnected { engine, epoch });
                return;
            }
            Err(DcapeError::Io(_)) => {
                // Connection reset — a killed worker looks like this.
                let _ = tx.send(Event::Disconnected { engine, epoch });
                return;
            }
            Err(e) => {
                let _ = tx.send(Event::Fatal {
                    engine,
                    error: e.to_string(),
                });
                return;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Worker lifecycle (spawn mode).

struct SpawnCtl {
    node_bin: PathBuf,
    addr: String,
    children: Vec<Option<Child>>,
    respawns: Vec<u32>,
}

impl SpawnCtl {
    fn spawn_worker(&mut self, engine: EngineId) -> Result<()> {
        // `--once`: spawned children are scoped to this run — without
        // it the worker serve-loops waiting for the next run, and
        // teardown would block on reaping it.
        let child = Command::new(&self.node_bin)
            .arg("--connect")
            .arg(&self.addr)
            .arg("--engine-id")
            .arg(engine.index().to_string())
            .arg("--once")
            .spawn()
            .map_err(|e| {
                DcapeError::Disconnected(format!(
                    "failed to spawn worker {} ({}): {e}",
                    engine,
                    self.node_bin.display()
                ))
            })?;
        self.children[engine.index()] = Some(child);
        Ok(())
    }
}

/// The coordinator's view of the cluster: transport + worker processes
/// + crash bookkeeping.
struct Cluster {
    net: Net,
    spawn: Option<SpawnCtl>,
    done: Vec<bool>,
    journal: JournalHandle,
    kill: Option<KillPlan>,
    kill_stats_seen: u32,
    kill_fired: bool,
}

impl Cluster {
    /// Classify one event. Returns the protocol message the caller
    /// should feed to the coordinator logic, if any; relays, respawns
    /// and the kill hook are handled here.
    fn triage(&mut self, ev: Event, now: VirtualTime) -> Result<Option<FromEngine>> {
        match ev {
            Event::Msg(m) => {
                self.net.log_rx(m.engine(), from_engine_kind(&m));
                if let (Some(kp), false) = (self.kill, self.kill_fired) {
                    // Drain polls count like stats reports: a kill plan
                    // aimed at a draining engine fires mid-drain, which
                    // is exactly the SIGKILL-during-drain chaos case.
                    let counts = matches!(&m, FromEngine::Stats(r) if r.engine == kp.engine)
                        || matches!(&m, FromEngine::DrainState { engine, .. } if *engine == kp.engine);
                    if counts {
                        self.kill_stats_seen += 1;
                        if self.kill_stats_seen >= kp.after_stats {
                            self.kill_fired = true;
                            if let Some(ctl) = self.spawn.as_mut() {
                                if let Some(child) = ctl.children[kp.engine.index()].as_mut() {
                                    // SIGKILL: no exit handler runs in
                                    // the worker, no state survives.
                                    let _ = child.kill();
                                }
                            }
                        }
                    }
                }
                Ok(Some(m))
            }
            Event::Relay { to, msg } => {
                self.net.send(to, msg)?;
                Ok(None)
            }
            Event::Disconnected { engine, epoch } => {
                self.on_disconnect(engine, epoch, now)?;
                Ok(None)
            }
            Event::Fatal { engine, error } => Err(DcapeError::codec(format!(
                "worker {engine} connection: {error}"
            ))),
        }
    }

    fn on_disconnect(&mut self, engine: EngineId, epoch: u64, now: VirtualTime) -> Result<()> {
        {
            let slot = &self.net.slots[engine.index()];
            let mut st = slot.state.lock().expect("slot lock");
            if st.epoch != epoch {
                // A newer connection already replaced this one.
                return Ok(());
            }
            st.stream = None;
        }
        if self.done[engine.index()] {
            // Normal exit after CleanupDone.
            return Ok(());
        }
        let Some(ctl) = self.spawn.as_mut() else {
            return Err(DcapeError::Disconnected(format!(
                "worker {engine} disconnected (manual --listen mode cannot respawn)"
            )));
        };
        let status = match ctl.children[engine.index()].take() {
            Some(mut child) => child.wait().map_err(DcapeError::Io)?,
            None => {
                return Err(DcapeError::Disconnected(format!(
                    "worker {engine} disconnected but no child process is tracked"
                )))
            }
        };
        // Respawn only crash-shaped deaths: a signal (kill -9) or the
        // chaos crash exit code. Anything else (a panic, exit 0 before
        // CleanupDone) is a worker bug and fails the run.
        let crashed = match status.code() {
            None => true, // killed by signal
            Some(c) => c == CRASH_EXIT,
        };
        if !crashed {
            return Err(DcapeError::Disconnected(format!(
                "worker {engine} exited unexpectedly ({status})"
            )));
        }
        let count = {
            let r = &mut ctl.respawns[engine.index()];
            *r += 1;
            *r
        };
        if count > MAX_RESPAWNS {
            return Err(DcapeError::Disconnected(format!(
                "worker {engine} exceeded {MAX_RESPAWNS} respawns"
            )));
        }
        self.journal.record(
            now,
            AdaptEvent::ProtocolWarning {
                code: "worker_respawned",
                engine,
                round: 0,
                detail: count as u64,
            },
        );
        ctl.spawn_worker(engine)
    }
}

fn from_engine_kind(m: &FromEngine) -> &'static str {
    match m {
        FromEngine::Ptv { .. } => "ptv",
        FromEngine::TransferAck { .. } => "transfer_ack",
        FromEngine::Stats(_) => "stats",
        FromEngine::CleanupReady { .. } => "cleanup_ready",
        FromEngine::CleanupDone { .. } => "cleanup_done",
        FromEngine::DrainState { .. } => "drain_state",
        FromEngine::JoinReady { .. } => "join_ready",
    }
}

impl FromEngine {
    /// The reporting engine (every variant carries one).
    fn engine(&self) -> EngineId {
        match self {
            FromEngine::Ptv { engine, .. }
            | FromEngine::TransferAck { engine, .. }
            | FromEngine::CleanupReady { engine, .. }
            | FromEngine::CleanupDone { engine, .. }
            | FromEngine::DrainState { engine, .. }
            | FromEngine::JoinReady { engine } => *engine,
            FromEngine::Stats(r) => r.engine,
        }
    }
}

// ---------------------------------------------------------------------
// The coordinator run loop.

/// Run a complete experiment across worker processes until `deadline`
/// of virtual time, then quiesce, run the distributed cleanup, and fold
/// the per-worker reports — same contract and report shape as
/// [`super::threaded::run_threaded`].
pub fn run_socket(cfg: SocketConfig, deadline: VirtualTime) -> Result<ThreadedReport> {
    let sim = &cfg.sim;
    if sim.num_engines == 0 {
        return Err(DcapeError::config("need at least one engine"));
    }
    let capacity = sim.capacity();
    if capacity > u16::MAX as usize {
        return Err(DcapeError::config("too many engines for the wire format"));
    }
    if cfg.kill.is_some() && !matches!(cfg.mode, SocketMode::Spawn { .. }) {
        return Err(DcapeError::config("kill plans need spawn mode"));
    }
    if sim
        .scale_events
        .iter()
        .any(|e| e.action == ScaleAction::AddEngine)
        && !matches!(cfg.mode, SocketMode::Spawn { .. })
    {
        return Err(DcapeError::config(
            "scale-out events need spawn mode (cannot start workers in --listen mode)",
        ));
    }
    let mut scale_events = sim.scale_events.clone();
    scale_events.sort_by_key(|e| e.at);
    let mut next_scale = 0usize;

    let mut gen = StreamSetGenerator::new(sim.workload.clone())?;
    let mut split = crate::split::SplitOperator::new(
        gen.partitioner(),
        vec![StreamSetGenerator::JOIN_COLUMN; sim.workload.num_streams],
    )?;
    let mut placement =
        PlacementMap::new(&sim.placement, sim.workload.num_partitions, sim.num_engines)?;
    let mut gc = GlobalCoordinator::new(&sim.strategy);
    gc.init_membership(sim.num_engines, capacity);
    let journal = if sim.journal {
        let handle = JournalHandle::enabled();
        gc.set_journal(handle.clone());
        handle
    } else {
        JournalHandle::disabled()
    };
    // Bounded patience when anything can kill or lose a message: chaos
    // faults, or the kill plan (a worker dying mid-round needs the
    // phase timeout to re-drive the round against its respawn).
    if sim.faults.is_active() || cfg.kill.is_some() {
        gc.set_retry_policy(RetryPolicy::default());
    }
    let mut held_sends: HeldSends = Vec::new();

    // Transport fabric.
    let listen_addr = match &cfg.mode {
        SocketMode::Spawn { .. } => "127.0.0.1:0".to_string(),
        SocketMode::Listen { addr } => addr.clone(),
    };
    let listener = TcpListener::bind(&listen_addr).map_err(DcapeError::Io)?;
    let local_addr = listener.local_addr().map_err(DcapeError::Io)?.to_string();

    // Slots, outboxes and logs are provisioned at peak capacity: a
    // joiner's connection slot exists before its process does, so its
    // late `Hello` lands in the ordinary acceptor path.
    let slots: Vec<Arc<ConnSlot>> = (0..capacity).map(|_| Arc::new(ConnSlot::new())).collect();
    let mut outbox_txs = Vec::with_capacity(capacity);
    let mut outbox_handles = Vec::with_capacity(capacity);
    for (i, slot) in slots.iter().enumerate() {
        let (tx, rx) = unbounded::<Vec<u8>>();
        outbox_txs.push(tx);
        let slot = Arc::clone(slot);
        outbox_handles.push(
            thread::Builder::new()
                .name(format!("dcape-tx-e{i}"))
                .spawn(move || outbox_thread(slot, rx))
                .expect("spawn outbox thread"),
        );
    }
    let logs = match std::env::var("DCAPE_FRAME_LOG_DIR") {
        Ok(dir) if !dir.is_empty() => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(DcapeError::Io)?;
            let files: Vec<std::fs::File> = (0..capacity)
                .map(|i| std::fs::File::create(dir.join(format!("frames-coord-e{i}.log"))))
                .collect::<std::io::Result<_>>()
                .map_err(DcapeError::Io)?;
            Some(files)
        }
        _ => None,
    };

    let (events_tx, events) = unbounded::<Event>();
    let shutdown = Arc::new(AtomicBool::new(false));
    let tmpl = Arc::new(WelcomeTemplate {
        num_engines: capacity as u16,
        config: sim.engine.clone(),
        journal: sim.journal,
        count_first: sim.count_first,
        fault_seed: sim.faults.seed(),
        faults: *sim.faults.config(),
    });
    let acceptor = {
        let slots = slots.clone();
        let tmpl = Arc::clone(&tmpl);
        let events_tx = events_tx.clone();
        let shutdown = Arc::clone(&shutdown);
        thread::Builder::new()
            .name("dcape-accept".into())
            .spawn(move || acceptor_thread(listener, slots, tmpl, events_tx, shutdown))
            .expect("spawn acceptor thread")
    };

    // Workers.
    let spawn_ctl = match &cfg.mode {
        SocketMode::Spawn { node_bin } => {
            let mut ctl = SpawnCtl {
                node_bin: node_bin.clone(),
                addr: local_addr.clone(),
                children: (0..capacity).map(|_| None).collect(),
                respawns: vec![0; capacity],
            };
            // Initial engines only; joiner processes start when their
            // scale event fires.
            for i in 0..sim.num_engines {
                ctl.spawn_worker(EngineId(i as u16))?;
            }
            Some(ctl)
        }
        SocketMode::Listen { .. } => {
            eprintln!(
                "dcape coordinator listening on {local_addr}; waiting for {} worker(s)",
                sim.num_engines
            );
            None
        }
    };
    let mut cluster = Cluster {
        net: Net {
            slots,
            outboxes: outbox_txs,
            logs,
        },
        spawn: spawn_ctl,
        done: vec![false; capacity],
        journal: journal.clone(),
        kill: cfg.kill,
        kill_stats_seen: 0,
        kill_fired: false,
    };

    // Driver loop — mirrors run_threaded statement for statement; the
    // only structural difference is event triage (relays, respawns).
    let mut stats_timer = PeriodicTimer::new(sim.stats_interval, VirtualTime::ZERO);
    let mut tick_timer = PeriodicTimer::new(VirtualDuration::from_secs(1), VirtualTime::ZERO);
    let mut pending_stats: Vec<Option<dcape_engine::stats::EngineStatsReport>> =
        vec![None; capacity];
    let mut awaiting_stats = false;
    let mut relocations = 0u64;
    let mut drain_fold = DrainFold::default();

    const MAX_BATCH_TICKS: u32 = 64;
    let mut tick_buf: Vec<dcape_common::tuple::Tuple> = Vec::new();
    let mut engine_batches: Vec<TupleBatch> = (0..capacity).map(|_| TupleBatch::new()).collect();
    let mut pending_ticks = 0u32;
    let flush_pending = |batches: &mut Vec<TupleBatch>, net: &Net, ticks: &mut u32| -> Result<()> {
        *ticks = 0;
        for (i, pending) in batches.iter_mut().enumerate() {
            if pending.is_empty() {
                continue;
            }
            let tuples = std::mem::replace(pending, TupleBatch::with_capacity(pending.len()));
            net.send(EngineId(i as u16), ToEngine::DataBatch { tuples })?;
        }
        Ok(())
    };

    while gen.now() < deadline {
        let now = gen.now();
        // Elastic membership changes whose time has come.
        while next_scale < scale_events.len() && scale_events[next_scale].at <= now {
            let event = scale_events[next_scale];
            next_scale += 1;
            match event.action {
                ScaleAction::AddEngine => {
                    let id = placement.add_engine()?;
                    cluster
                        .spawn
                        .as_mut()
                        .expect("scale-out validated to spawn mode")
                        .spawn_worker(id)?;
                    gc.admit_engine(id, now)?;
                    // A stats collection begun against the old
                    // membership can never complete against the new
                    // one; restart it at the next timer expiry.
                    awaiting_stats = false;
                }
                ScaleAction::DrainEngine(target) => {
                    let engine = match target {
                        Some(e) => e,
                        None => gc
                            .active_engines()
                            .into_iter()
                            .max()
                            .ok_or_else(|| DcapeError::config("no active engine to drain"))?,
                    };
                    let net = &cluster.net;
                    let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
                    begin_drain_event(&mut gc, &mut placement, &mut send, engine, now)?;
                }
            }
        }
        if sim.batch {
            gen.tick_batch(&mut tick_buf);
            journal.add_tuples_routed(tick_buf.len() as u64);
            for tuple in tick_buf.drain(..) {
                let pid = split.classify(&tuple)?;
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        engine_batches[engine.index()].push(pid, tuple);
                    }
                }
            }
            pending_ticks += 1;
            if pending_ticks >= MAX_BATCH_TICKS
                || tick_timer.expired(now)
                || stats_timer.expired(now)
            {
                flush_pending(&mut engine_batches, &cluster.net, &mut pending_ticks)?;
            }
        } else {
            let batch = gen.generate_ticks(1);
            for tuple in batch {
                let pid = split.classify(&tuple)?;
                journal.add_tuples_routed(1);
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        cluster.net.send(engine, ToEngine::Data { pid, tuple })?;
                    }
                }
            }
        }
        if tick_timer.expired(now) {
            tick_timer.reset(now);
            let watermark = split.admitted_watermark();
            let horizon = placement.purge_horizon(watermark);
            if sim.engine.join.window.is_some() && horizon < watermark {
                journal.add_purges_deferred(1);
            }
            for e in gc.participating_engines() {
                cluster.net.send(e, ToEngine::Tick { now, horizon })?;
            }
        }
        if stats_timer.expired(now) && !awaiting_stats && !gc.relocation_active() {
            stats_timer.reset(now);
            awaiting_stats = true;
            pending_stats.iter_mut().for_each(|s| *s = None);
            for e in gc.active_engines() {
                cluster.net.send(e, ToEngine::ReportStats { now })?;
            }
        }

        // Drain the event inbox without blocking the data path.
        while let Ok(ev) = events.try_recv() {
            let Some(msg) = cluster.triage(ev, now)? else {
                continue;
            };
            // Deliver already-routed tuples before acting on anything
            // that might pause or re-home their partitions.
            if sim.batch {
                flush_pending(&mut engine_batches, &cluster.net, &mut pending_ticks)?;
            }
            // A drained worker exits cleanly right after its mid-run
            // CleanupDone: mark it done *before* the disconnect event
            // lands, so the exit is not treated as a crash.
            if let FromEngine::CleanupDone { engine, .. } = &msg {
                if gc.engine_state(*engine) == EngineState::DrainCleanup {
                    cluster.done[engine.index()] = true;
                }
            }
            let net = &cluster.net;
            let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
            let Some(msg) = intercept_drain_cleanup(msg, &mut gc, &mut send, &mut drain_fold, now)?
            else {
                continue;
            };
            handle_coordinator_msg(
                msg,
                &mut gc,
                &mut placement,
                &mut send,
                &mut pending_stats,
                &mut awaiting_stats,
                &mut relocations,
                &journal,
                now,
                split.admitted_watermark(),
                sim.batch,
                &sim.faults,
                &mut held_sends,
            )?;
        }

        if sim.faults.is_active() || cluster.kill.is_some() {
            {
                let net = &cluster.net;
                let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
                release_due(&mut held_sends, now, &mut send)?;
            }
            while let Some(action) = gc.check_timeout(now) {
                if sim.batch {
                    flush_pending(&mut engine_batches, &cluster.net, &mut pending_ticks)?;
                }
                let net = &cluster.net;
                let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
                handle_timeout_action(
                    action,
                    &mut gc,
                    &mut placement,
                    &mut send,
                    &journal,
                    now,
                    sim.batch,
                    &sim.faults,
                    &mut held_sends,
                )?;
            }
        }
    }

    if sim.batch {
        flush_pending(&mut engine_batches, &cluster.net, &mut pending_ticks)?;
    }

    // Quiesce (see run_threaded): virtual time keeps advancing on
    // receive timeouts so phase deadlines and held messages fire.
    let mut vnow = deadline;
    while gc.relocation_active()
        || gc.drain_in_progress()
        || awaiting_stats
        || !held_sends.is_empty()
    {
        {
            let net = &cluster.net;
            let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
            release_due(&mut held_sends, vnow, &mut send)?;
        }
        match events.recv_timeout(Duration::from_millis(5)) {
            Ok(ev) => {
                if let Some(msg) = cluster.triage(ev, vnow)? {
                    if let FromEngine::CleanupDone { engine, .. } = &msg {
                        if gc.engine_state(*engine) == EngineState::DrainCleanup {
                            cluster.done[engine.index()] = true;
                        }
                    }
                    let net = &cluster.net;
                    let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
                    let Some(msg) =
                        intercept_drain_cleanup(msg, &mut gc, &mut send, &mut drain_fold, vnow)?
                    else {
                        continue;
                    };
                    handle_coordinator_msg(
                        msg,
                        &mut gc,
                        &mut placement,
                        &mut send,
                        &mut pending_stats,
                        &mut awaiting_stats,
                        &mut relocations,
                        &journal,
                        vnow,
                        split.admitted_watermark(),
                        sim.batch,
                        &sim.faults,
                        &mut held_sends,
                    )?;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                vnow += VirtualDuration::from_millis(200);
                while let Some(action) = gc.check_timeout(vnow) {
                    let net = &cluster.net;
                    let mut send = |e: EngineId, m: ToEngine| net.send(e, m);
                    handle_timeout_action(
                        action,
                        &mut gc,
                        &mut placement,
                        &mut send,
                        &journal,
                        vnow,
                        sim.batch,
                        &sim.faults,
                        &mut held_sends,
                    )?;
                }
                let watermark = split.admitted_watermark();
                let horizon = placement.purge_horizon(watermark);
                for e in gc.participating_engines() {
                    cluster.net.send(e, ToEngine::Tick { now: vnow, horizon })?;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DcapeError::Disconnected("event channel closed".into()))
            }
        }
    }

    debug_assert!(placement.paused_partitions().is_empty());
    debug_assert!(placement.oldest_buffered_ts().is_none());

    // Distributed cleanup, phase 1 (see run_threaded). Forwarded
    // segments arrive here as Relay events and are re-framed to their
    // owners strictly before the StartCleanup broadcast below: each
    // worker sends its relays before CleanupReady on its FIFO
    // connection, and the event channel preserves that order.
    let owners: Vec<EngineId> = (0..placement.num_partitions())
        .map(|i| placement.owner(PartitionId(i)))
        .collect::<Result<_>>()?;
    // Cleanup runs over the *final* membership: drained engines already
    // exited after their mid-run CleanupDone, and capacity slots whose
    // AddEngine event never fired were never spawned at all.
    let final_engines = gc.active_engines();
    let mut ready = vec![true; capacity];
    for e in &final_engines {
        ready[e.index()] = false;
    }
    for (i, done) in cluster.done.iter_mut().enumerate() {
        if !final_engines.iter().any(|e| e.index() == i) {
            *done = true;
        }
    }
    for e in &final_engines {
        cluster.net.send(
            *e,
            ToEngine::PrepareCleanup {
                owners: owners.clone(),
            },
        )?;
    }
    while ready.iter().any(|r| !r) {
        let ev = events
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| DcapeError::Disconnected("timed out awaiting CleanupReady".into()))?;
        match cluster.triage(ev, vnow)? {
            None => {}
            // A respawned worker's replay can repeat CleanupReady;
            // setting the flag twice is harmless.
            Some(FromEngine::CleanupReady { engine, .. }) => {
                ready[engine.index()] = true;
            }
            // Chaos stragglers, as in run_threaded's prepare loop.
            Some(FromEngine::Ptv { round, engine, .. }) => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ptv_after_quiesce",
                    engine,
                    round,
                    detail: 2,
                },
            ),
            Some(FromEngine::TransferAck { round, engine, .. }) => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ack_after_quiesce",
                    engine,
                    round,
                    detail: 6,
                },
            ),
            Some(FromEngine::Stats(_))
            | Some(FromEngine::DrainState { .. })
            | Some(FromEngine::JoinReady { .. }) => {}
            Some(other) => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during cleanup prepare: {other:?}"
                )))
            }
        }
    }
    for e in &final_engines {
        cluster.net.send(*e, ToEngine::StartCleanup)?;
    }

    // Seed the totals with the contributions folded in when drained
    // engines completed their mid-run cleanup.
    let mut runtime_output = drain_fold.runtime_output;
    let mut cleanup_output = drain_fold.cleanup_output;
    let mut cleanup_wall_ms = drain_fold.cleanup_wall_ms;
    let mut spill_counts = vec![0u64; capacity];
    for (e, n) in &drain_fold.spill_counts {
        spill_counts[e.index()] = *n;
    }
    let mut engine_journals: Vec<Vec<JournalEntry>> = std::mem::take(&mut drain_fold.journals);
    let mut journal_counters = CountersSnapshot::default();
    fold_engine_counters(&mut journal_counters, &drain_fold.counters);
    while cluster.done.iter().any(|d| !d) {
        let ev = events
            .recv_timeout(Duration::from_secs(120))
            .map_err(|_| DcapeError::Disconnected("timed out awaiting CleanupDone".into()))?;
        match cluster.triage(ev, vnow)? {
            None => {}
            Some(FromEngine::CleanupDone {
                engine,
                runtime_output: out,
                cleanup_output: missed,
                spill_count,
                cleanup_cost_ms,
                journal: engine_journal,
                journal_counters: engine_counters,
            }) => {
                if cluster.done[engine.index()] {
                    continue; // duplicate from an implausibly late replay
                }
                cluster.done[engine.index()] = true;
                runtime_output += out;
                cleanup_output += missed;
                cleanup_wall_ms = cleanup_wall_ms.max(cleanup_cost_ms);
                spill_counts[engine.index()] = spill_count;
                engine_journals.push(engine_journal);
                fold_engine_counters(&mut journal_counters, &engine_counters);
            }
            // A worker respawned late in the run (e.g. a joiner killed
            // mid-admission) replays its whole outbound history, so the
            // closing messages of already-settled rounds can trail into
            // the merge — stale by construction, like the prepare loop.
            Some(FromEngine::Ptv { round, engine, .. }) => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ptv_after_quiesce",
                    engine,
                    round,
                    detail: 2,
                },
            ),
            Some(FromEngine::TransferAck { round, engine, .. }) => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ack_after_quiesce",
                    engine,
                    round,
                    detail: 6,
                },
            ),
            Some(FromEngine::Stats(_))
            | Some(FromEngine::DrainState { .. })
            | Some(FromEngine::JoinReady { .. }) => {}
            Some(other) => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during merge: {other:?}"
                )))
            }
        }
    }

    // Teardown: stop the outboxes (they drain whatever is still
    // deliverable), wake the acceptor, reap the children.
    drop(cluster.net.outboxes);
    for h in outbox_handles {
        let _ = h.join();
    }
    shutdown.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect(&local_addr); // unblock accept()
    let _ = acceptor.join();
    if let Some(ctl) = cluster.spawn.as_mut() {
        for (i, child) in ctl.children.iter_mut().enumerate() {
            if let Some(mut c) = child.take() {
                let status = c.wait().map_err(DcapeError::Io)?;
                if !status.success() {
                    return Err(DcapeError::Disconnected(format!(
                        "worker {i} exited with {status} after cleanup"
                    )));
                }
            }
        }
    }

    let merged = if sim.journal {
        engine_journals.push(journal.snapshot());
        merge_journals(engine_journals)
    } else {
        Vec::new()
    };
    if let Some(c) = journal.counters() {
        journal_counters.absorb(&c.snapshot());
    }

    Ok(ThreadedReport {
        runtime_output,
        cleanup_output,
        relocations,
        spill_counts,
        force_spills: gc.force_spills_issued(),
        cleanup_wall_ms,
        journal: merged,
        journal_counters,
    })
}

// ---------------------------------------------------------------------
// Worker side.

/// Framed-TCP transport for a worker's [`EngineCore`]: replies and
/// relayed peer messages all go up the single coordinator connection.
struct WorkerTx<'a> {
    stream: &'a TcpStream,
    log: Option<&'a std::fs::File>,
}

impl WorkerTx<'_> {
    fn write(&mut self, wire: &WireMsg) -> Result<()> {
        if let Some(mut f) = self.log {
            let _ = writeln!(f, "tx kind={}", msg_kind_name(wire));
        }
        write_frame(&mut self.stream, 0, wire)
    }
}

impl EngineTx for WorkerTx<'_> {
    fn to_gc(&mut self, m: FromEngine) -> Result<()> {
        self.write(&WireMsg::Coord(m))
    }

    fn to_peer(&mut self, target: EngineId, m: ToEngine) -> Result<()> {
        self.write(&WireMsg::Relay { to: target, msg: m })
    }
}

/// How a worker session came to an end (short of a hard error).
enum SessionEnd {
    /// The run completed: `StartCleanup` was processed to `CleanupDone`.
    Finished,
    /// The connection died before `Welcome` arrived: the coordinator
    /// was tearing down the previous run's listener when we raced in.
    HandshakeLost,
}

/// Entry point of a spawn-mode (`--once`) worker process: connect,
/// handshake, then run the engine loop until `StartCleanup` completes
/// (exit 0), a chaos crash fires (exit [`CRASH_EXIT`]), or an error
/// occurs.
pub fn worker_main(addr: &str, engine: EngineId) -> Result<()> {
    let stream = TcpStream::connect(addr).map_err(DcapeError::Io)?;
    match worker_session(stream, engine)? {
        SessionEnd::Finished => Ok(()),
        SessionEnd::HandshakeLost => Err(DcapeError::Disconnected(
            "coordinator closed the connection before Welcome".into(),
        )),
    }
}

/// Connect with a bounded retry grace: between successive runs (one
/// figure configuration each) the coordinator tears its listener down
/// and re-binds it, and at startup the worker may beat the coordinator
/// to the address. `None` once the grace period expires.
fn connect_with_retry(addr: &str) -> Option<TcpStream> {
    for attempt in 0..50 {
        if attempt > 0 {
            std::thread::sleep(std::time::Duration::from_millis(200));
        }
        if let Ok(s) = TcpStream::connect(addr) {
            return Some(s);
        }
    }
    None
}

/// Entry point of a manually started `dcape-node`: serve coordinator
/// runs in a loop — a listen-mode harness executes one `run_socket`
/// per figure configuration, each needing a fresh session — and return
/// the number served once the coordinator stops listening for good.
pub fn worker_serve(addr: &str, engine: EngineId) -> Result<u32> {
    let mut served = 0u32;
    loop {
        let stream = match connect_with_retry(addr) {
            Some(s) => s,
            None if served > 0 => return Ok(served),
            None => {
                return Err(DcapeError::Disconnected(format!(
                    "could not reach coordinator at {addr}"
                )))
            }
        };
        match worker_session(stream, engine)? {
            SessionEnd::Finished => served += 1,
            SessionEnd::HandshakeLost => {}
        }
    }
}

/// One full worker session over an established connection: handshake,
/// then the engine loop until the run finishes.
fn worker_session(stream: TcpStream, engine: EngineId) -> Result<SessionEnd> {
    stream.set_nodelay(true).map_err(DcapeError::Io)?;
    if write_frame(
        &mut (&stream),
        0,
        &WireMsg::Hello(Hello {
            engine,
            resume_from: 0,
        }),
    )
    .is_err()
    {
        // The accepted connection was already dead (listener teardown
        // race): no Welcome was ever coming.
        return Ok(SessionEnd::HandshakeLost);
    }
    let mut reader = BufReader::new(stream.try_clone().map_err(DcapeError::Io)?);
    let welcome = match read_frame(&mut reader) {
        Ok(Some((_, WireMsg::Welcome(w)))) => *w,
        Ok(None) | Err(DcapeError::Io(_)) => return Ok(SessionEnd::HandshakeLost),
        Ok(Some(other)) => {
            return Err(DcapeError::protocol(format!(
                "expected Welcome, got {other:?}"
            )))
        }
        Err(e) => return Err(e),
    };
    if welcome.engine != engine {
        return Err(DcapeError::protocol("welcome for a different engine"));
    }
    let log_file = match std::env::var("DCAPE_FRAME_LOG_DIR") {
        Ok(dir) if !dir.is_empty() => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir).map_err(DcapeError::Io)?;
            Some(
                std::fs::File::create(dir.join(format!(
                    "frames-worker-e{}-pid{}.log",
                    engine.index(),
                    std::process::id()
                )))
                .map_err(DcapeError::Io)?,
            )
        }
        _ => None,
    };

    let mut core = EngineCore::new(engine, welcome.config, welcome.journal, welcome.count_first)?;
    // Announce liveness: a late joiner's rebalancing is deferred until
    // this arrives; announcements from the initial engines are absorbed
    // quietly. Resent on respawn, which is how a joiner that crashed
    // mid-admission completes its join after replay.
    {
        let mut tx = WorkerTx {
            stream: &stream,
            log: log_file.as_ref(),
        };
        tx.to_gc(FromEngine::JoinReady { engine })?;
    }
    let plan = FaultPlan::new(welcome.fault_seed, welcome.faults);
    let replay_plan = FaultPlan::disabled();
    let mut expected_seq = 1u64;
    loop {
        let (seq, wire) = match read_frame(&mut reader)? {
            Some(frame) => frame,
            None => {
                // The coordinator hung up before StartCleanup: it
                // failed (or was killed); nothing left to do here.
                return Err(DcapeError::Disconnected(
                    "coordinator closed the connection".into(),
                ));
            }
        };
        if seq != expected_seq {
            return Err(DcapeError::protocol(format!(
                "frame sequence gap: expected {expected_seq}, got {seq}"
            )));
        }
        expected_seq += 1;
        if let Some(mut f) = log_file.as_ref() {
            let _ = writeln!(f, "rx seq={seq} kind={}", msg_kind_name(&wire));
        }
        let msg = match wire {
            WireMsg::Engine(m) => m,
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected frame kind: {}",
                    msg_kind_name(&other)
                )))
            }
        };
        // Replayed history is processed fault-free: those faults
        // already happened in a previous life of this engine.
        let active_plan = if seq <= welcome.replay_until {
            &replay_plan
        } else {
            &plan
        };
        let mut tx = WorkerTx {
            stream: &stream,
            log: log_file.as_ref(),
        };
        match core.handle(msg, active_plan, &mut tx)? {
            EngineFlow::Continue => {}
            EngineFlow::CrashRequested => {
                // A real crash: the OS process dies, taking every bit
                // of in-memory state (and this life's journal) with it.
                // The coordinator respawns us and replays history.
                std::process::exit(CRASH_EXIT);
            }
            EngineFlow::Finished => {
                if let Ok(dir) = std::env::var("DCAPE_JOURNAL_DUMP") {
                    if !dir.is_empty() {
                        let path = PathBuf::from(dir).join(format!(
                            "worker-e{}-pid{}.jsonl",
                            engine.index(),
                            std::process::id()
                        ));
                        let _ = dcape_metrics::report::write_journal_jsonl(
                            &path,
                            &core.qe.journal().snapshot(),
                        );
                    }
                }
                return Ok(SessionEnd::Finished);
            }
        }
    }
}
