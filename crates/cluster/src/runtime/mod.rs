//! Cluster drivers.
//!
//! Two executions of the same engine/coordinator code:
//!
//! * [`sim`] — deterministic, virtual-time, single-threaded; used by the
//!   experiment harness to replay the paper's hour-long runs in seconds;
//! * [`threaded`] — one OS thread per engine over crossbeam channels,
//!   running the full asynchronous protocol of Figure 8.

pub mod sim;
pub mod threaded;
