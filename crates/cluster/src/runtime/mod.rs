//! Cluster drivers.
//!
//! Two executions of the same engine/coordinator code:
//!
//! * [`sim`] — deterministic, virtual-time, single-threaded; used by the
//!   experiment harness to replay the paper's hour-long runs in seconds;
//! * [`threaded`] — one OS thread per engine over crossbeam channels,
//!   running the full asynchronous protocol of Figure 8;
//! * [`socket`] — one OS process per engine over loopback (or real) TCP,
//!   the same protocol as length-framed binary messages.
//!
//! [`driver`] and [`engine_core`] hold the coordinator-side and
//! engine-side protocol logic shared by the threaded and socket drivers.

pub mod driver;
pub mod engine_core;
pub mod sim;
pub mod socket;
pub mod threaded;
