//! The threaded cluster runtime: one OS thread per query engine.
//!
//! This driver stands in for the paper's PC cluster: engines run
//! concurrently, all coordination flows through channels as real
//! asynchronous messages (the full Figure 8 sequence — `Cptv`, `Ptv`,
//! pause-and-buffer, `SendStates`, engine-to-engine `InstallStates`,
//! `TransferAck`, remap-and-flush, `Resume`), and the driver thread
//! plays the roles of stream source, split operators, and global
//! coordinator.
//!
//! The protocol logic itself lives in [`super::driver`]
//! (coordinator side) and [`super::engine_core`] (engine side), shared
//! with the multi-process [`super::socket`] driver; this module supplies
//! the crossbeam-channel transport and the thread lifecycle.
//!
//! Differences from the paper's deployment, by design:
//!
//! * Virtual time still paces timers (determinism of *decisions* is not
//!   required here — thread interleaving varies — but totals are
//!   invariant: every tuple is processed exactly once).
//! * The cleanup phase is **distributed**, as in the paper: at
//!   shutdown the driver broadcasts the final placement, every engine
//!   forwards its non-owned spill segments to the partitions' owners
//!   (engine-to-engine messages), and once all engines report ready,
//!   each merges its owned partitions locally, in parallel, reporting
//!   missing-result counts and its modeled merge cost (the wall time is
//!   the max — T-cleanup-2's comparison).

use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{PeriodicTimer, VirtualDuration, VirtualTime};
use dcape_metrics::journal::{
    merge_journals, AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle,
};
use dcape_streamgen::StreamSetGenerator;

use crate::coordinator::{GlobalCoordinator, RetryPolicy};
use crate::faults::FaultPlan;
use crate::messages::{FromEngine, ToEngine};
use crate::placement::{PlacementMap, Route};
use crate::runtime::driver::{
    begin_drain_event, fold_engine_counters, handle_coordinator_msg, handle_timeout_action,
    intercept_drain_cleanup, release_due, DrainFold, HeldSends,
};
use crate::runtime::engine_core::{EngineCore, EngineFlow, EngineTx};
use crate::runtime::sim::{ScaleAction, SimConfig};

/// Outcome of one threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Results produced during the run-time phase (all engines).
    pub runtime_output: u64,
    /// Missing results produced by the central cleanup merge.
    pub cleanup_output: u64,
    /// Completed relocation rounds.
    pub relocations: u64,
    /// Spill adaptations per engine.
    pub spill_counts: Vec<u64>,
    /// Forced spills issued.
    pub force_spills: u64,
    /// Modeled parallel cleanup wall time: max per-engine merge cost.
    pub cleanup_wall_ms: u64,
    /// Adaptation-event journal: every engine's journal plus the
    /// coordinator's, merged by virtual time (empty unless
    /// `SimConfig::journal` was set).
    pub journal: Vec<JournalEntry>,
    /// Final counter values (coordinator-side tallies plus per-engine
    /// ring accounting; zeros unless `SimConfig::journal` was set).
    pub journal_counters: CountersSnapshot,
}

impl ThreadedReport {
    /// Total results across both phases.
    pub fn total_output(&self) -> u64 {
        self.runtime_output + self.cleanup_output
    }
}

/// Run a complete experiment on real threads until `deadline` of
/// virtual time, then shut down and merge the cleanup phase.
pub fn run_threaded(cfg: SimConfig, deadline: VirtualTime) -> Result<ThreadedReport> {
    if cfg.num_engines == 0 {
        return Err(DcapeError::config("need at least one engine"));
    }
    let mut gen = StreamSetGenerator::new(cfg.workload.clone())?;
    let mut split = crate::split::SplitOperator::new(
        gen.partitioner(),
        vec![StreamSetGenerator::JOIN_COLUMN; cfg.workload.num_streams],
    )?;
    let mut placement =
        PlacementMap::new(&cfg.placement, cfg.workload.num_partitions, cfg.num_engines)?;
    let capacity = cfg.capacity();
    let mut scale_events = cfg.scale_events.clone();
    scale_events.sort_by_key(|e| e.at);
    let mut next_scale = 0usize;
    let mut gc = GlobalCoordinator::new(&cfg.strategy);
    gc.init_membership(cfg.num_engines, capacity);
    // Coordinator-side journal; each engine thread keeps its own and
    // ships it back with `CleanupDone` for the final merge.
    let journal = if cfg.journal {
        let handle = JournalHandle::enabled();
        gc.set_journal(handle.clone());
        handle
    } else {
        JournalHandle::disabled()
    };
    // An active fault plan arms bounded patience — otherwise a single
    // dropped protocol message would wedge the quiesce loop forever.
    if cfg.faults.is_active() {
        gc.set_retry_policy(RetryPolicy::default());
    }
    let mut held_sends: HeldSends = Vec::new();

    // Channel fabric, provisioned at peak capacity up front: a joiner's
    // channel pair already exists before its thread does, so nothing
    // shared reshapes mid-run and peers can address it the moment the
    // coordinator admits it.
    let mut to_engines: Vec<Sender<ToEngine>> = Vec::with_capacity(capacity);
    let mut engine_rxs: Vec<Option<Receiver<ToEngine>>> = Vec::with_capacity(capacity);
    for _ in 0..capacity {
        let (tx, rx) = unbounded();
        to_engines.push(tx);
        engine_rxs.push(Some(rx));
    }
    let (to_gc, from_engines) = unbounded::<FromEngine>();

    // Spawn the initial engine threads; joiners spawn when their scale
    // event fires.
    let mut handles = Vec::with_capacity(capacity);
    for (i, slot) in engine_rxs.iter_mut().enumerate().take(cfg.num_engines) {
        let rx = slot.take().expect("initial slot unspawned");
        handles.push(spawn_engine(i, &cfg, rx, &to_gc, &to_engines));
    }

    // Driver loop: source + splits + coordinator.
    let mut stats_timer = PeriodicTimer::new(cfg.stats_interval, VirtualTime::ZERO);
    let mut tick_timer = PeriodicTimer::new(
        dcape_common::time::VirtualDuration::from_secs(1),
        VirtualTime::ZERO,
    );
    let mut pending_stats: Vec<Option<dcape_engine::stats::EngineStatsReport>> =
        vec![None; capacity];
    let mut awaiting_stats = false;
    let mut relocations = 0u64;
    let mut drain_fold = DrainFold::default();

    // All coordinator-side protocol helpers send through this closure;
    // the socket driver substitutes one that frames onto TCP.
    let mut send = |e: EngineId, msg: ToEngine| -> Result<()> {
        to_engines[e.index()]
            .send(msg)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };

    // Batched dataflow: one reused tick buffer and one routed batch per
    // engine. Batches coalesce across generator ticks — the channel
    // send is the per-message cost being amortized — and flush (a)
    // every `MAX_BATCH_TICKS` ticks, (b) before any `Tick`/
    // `ReportStats` send, so no data trails a timer pulse it preceded
    // in virtual time, and (c) before any coordinator message is
    // handled, so every already-routed tuple reaches its engine ahead
    // of a `SendStates`/remap that could re-home its partition.
    const MAX_BATCH_TICKS: u32 = 64;
    let mut tick_buf: Vec<dcape_common::tuple::Tuple> = Vec::new();
    let mut engine_batches: Vec<TupleBatch> = (0..capacity).map(|_| TupleBatch::new()).collect();
    let mut pending_ticks = 0u32;
    let flush_pending =
        |batches: &mut Vec<TupleBatch>, txs: &[Sender<ToEngine>], ticks: &mut u32| -> Result<()> {
            *ticks = 0;
            for (i, pending) in batches.iter_mut().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                // Right-size the replacement so the next accumulation
                // window fills it without growing from empty.
                let tuples = std::mem::replace(pending, TupleBatch::with_capacity(pending.len()));
                txs[i]
                    .send(ToEngine::DataBatch { tuples })
                    .map_err(|_| DcapeError::Disconnected(format!("engine {i} channel closed")))?;
            }
            Ok(())
        };

    while gen.now() < deadline {
        let now = gen.now();
        // Elastic membership changes whose time has come.
        while next_scale < scale_events.len() && scale_events[next_scale].at <= now {
            let event = scale_events[next_scale];
            next_scale += 1;
            match event.action {
                ScaleAction::AddEngine => {
                    let id = placement.add_engine()?;
                    let rx = engine_rxs[id.index()]
                        .take()
                        .expect("joiner slot unspawned");
                    handles.push(spawn_engine(id.index(), &cfg, rx, &to_gc, &to_engines));
                    gc.admit_engine(id, now)?;
                    // A stats collection begun against the old
                    // membership can never complete against the new
                    // one; restart it at the next timer expiry.
                    awaiting_stats = false;
                }
                ScaleAction::DrainEngine(target) => {
                    let engine = match target {
                        Some(e) => e,
                        None => gc
                            .active_engines()
                            .into_iter()
                            .max()
                            .ok_or_else(|| DcapeError::config("no active engine to drain"))?,
                    };
                    begin_drain_event(&mut gc, &mut placement, &mut send, engine, now)?;
                }
            }
        }
        if cfg.batch {
            gen.tick_batch(&mut tick_buf);
            journal.add_tuples_routed(tick_buf.len() as u64);
            for tuple in tick_buf.drain(..) {
                let pid = split.classify(&tuple)?;
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        engine_batches[engine.index()].push(pid, tuple);
                    }
                }
            }
            pending_ticks += 1;
            if pending_ticks >= MAX_BATCH_TICKS
                || tick_timer.expired(now)
                || stats_timer.expired(now)
            {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
        } else {
            let batch = gen.generate_ticks(1);
            for tuple in batch {
                let pid = split.classify(&tuple)?;
                journal.add_tuples_routed(1);
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        send(engine, ToEngine::Data { pid, tuple })?;
                    }
                }
            }
        }
        if tick_timer.expired(now) {
            tick_timer.reset(now);
            // Watermark-driven purge horizon: while a relocation holds
            // tuples buffered at the splits, the horizon stays at the
            // oldest buffered timestamp, so no engine can purge the
            // join partners of a tuple that has yet to replay.
            let watermark = split.admitted_watermark();
            let horizon = placement.purge_horizon(watermark);
            if cfg.engine.join.window.is_some() && horizon < watermark {
                journal.add_purges_deferred(1);
            }
            for e in gc.participating_engines() {
                send(e, ToEngine::Tick { now, horizon })?;
            }
        }
        if stats_timer.expired(now) && !awaiting_stats && !gc.relocation_active() {
            stats_timer.reset(now);
            awaiting_stats = true;
            pending_stats.iter_mut().for_each(|s| *s = None);
            for e in gc.active_engines() {
                send(e, ToEngine::ReportStats { now })?;
            }
        }

        // Drain coordinator inbox without blocking the data path.
        while let Ok(msg) = from_engines.try_recv() {
            // Deliver already-routed tuples before acting on anything
            // that might pause or re-home their partitions.
            if cfg.batch {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
            let Some(msg) = intercept_drain_cleanup(msg, &mut gc, &mut send, &mut drain_fold, now)?
            else {
                continue;
            };
            handle_coordinator_msg(
                msg,
                &mut gc,
                &mut placement,
                &mut send,
                &mut pending_stats,
                &mut awaiting_stats,
                &mut relocations,
                &journal,
                now,
                split.admitted_watermark(),
                cfg.batch,
                &cfg.faults,
                &mut held_sends,
            )?;
        }

        // Chaos: release driver-held delayed control messages whose due
        // time passed, and poll the coordinator's phase deadline
        // (bounded retry, then abort).
        if cfg.faults.is_active() {
            release_due(&mut held_sends, now, &mut send)?;
            while let Some(action) = gc.check_timeout(now) {
                if cfg.batch {
                    flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
                }
                handle_timeout_action(
                    action,
                    &mut gc,
                    &mut placement,
                    &mut send,
                    &journal,
                    now,
                    cfg.batch,
                    &cfg.faults,
                    &mut held_sends,
                )?;
            }
        }
    }

    // No more joins can fire: drop the master inbox sender so engine
    // hang-ups surface as disconnects in the loops below.
    drop(to_gc);

    // The deadline passed: deliver any coalesced batches before the
    // quiesce/cleanup phases.
    if cfg.batch {
        flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
    }

    // Quiesce: finish (or abort) any in-flight relocation before
    // shutdown so no state is lost mid-transfer. Under chaos, messages
    // may be lost — a blocking receive could wait forever — so the loop
    // advances a virtual clock on receive timeouts: phase deadlines
    // fire (retry, then abort) and engine-held delayed messages release
    // on the ticks we keep sending.
    let mut vnow = deadline;
    while gc.relocation_active()
        || gc.drain_in_progress()
        || awaiting_stats
        || !held_sends.is_empty()
    {
        release_due(&mut held_sends, vnow, &mut send)?;
        match from_engines.recv_timeout(Duration::from_millis(5)) {
            Ok(msg) => {
                let Some(msg) =
                    intercept_drain_cleanup(msg, &mut gc, &mut send, &mut drain_fold, vnow)?
                else {
                    continue;
                };
                handle_coordinator_msg(
                    msg,
                    &mut gc,
                    &mut placement,
                    &mut send,
                    &mut pending_stats,
                    &mut awaiting_stats,
                    &mut relocations,
                    &journal,
                    vnow,
                    split.admitted_watermark(),
                    cfg.batch,
                    &cfg.faults,
                    &mut held_sends,
                )?
            }
            Err(RecvTimeoutError::Timeout) => {
                vnow += VirtualDuration::from_millis(200);
                while let Some(action) = gc.check_timeout(vnow) {
                    handle_timeout_action(
                        action,
                        &mut gc,
                        &mut placement,
                        &mut send,
                        &journal,
                        vnow,
                        cfg.batch,
                        &cfg.faults,
                        &mut held_sends,
                    )?;
                }
                // Keep ticking so engines release their own held
                // messages; the horizon honours anything still
                // buffered at a paused split.
                let watermark = split.admitted_watermark();
                let horizon = placement.purge_horizon(watermark);
                for e in gc.participating_engines() {
                    send(e, ToEngine::Tick { now: vnow, horizon })?;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DcapeError::Disconnected("engines hung up".into()))
            }
        }
    }

    // Flush any tuples still buffered (there should be none once no
    // relocation is active — assert the protocol invariant). Draining
    // the last round also released the held watermark: nothing may
    // remain buffered at the splits after quiesce.
    debug_assert!(placement.paused_partitions().is_empty());
    debug_assert!(placement.oldest_buffered_ts().is_none());

    // Distributed cleanup, phase 1: every engine forwards its non-owned
    // segments to the partition's owner (the paper's cleanup runs where
    // the partition lives, in parallel across machines).
    let owners: Vec<EngineId> = (0..placement.num_partitions())
        .map(|i| placement.owner(PartitionId(i)))
        .collect::<Result<_>>()?;
    // Only the surviving engines participate in the final cleanup:
    // drained ones already forwarded their segments and exited, and
    // never-joined slots have no thread.
    let final_engines = gc.active_engines();
    for e in &final_engines {
        send(
            *e,
            ToEngine::PrepareCleanup {
                owners: owners.clone(),
            },
        )?;
    }
    let mut ready = 0usize;
    while ready < final_engines.len() {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during cleanup".into()))?
        {
            FromEngine::CleanupReady { .. } => ready += 1,
            // Chaos stragglers: a duplicated or delayed protocol message
            // can still be queued when quiesce exits (the loop stops the
            // moment no round is active, which is exactly when a second
            // copy of the closing ack becomes redundant). No round can be
            // live here, so these are stale by construction — journal and
            // skip, consistent with the runtimes' stale-message handling.
            FromEngine::Ptv { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ptv_after_quiesce",
                    engine,
                    round,
                    detail: 2,
                },
            ),
            FromEngine::TransferAck { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ack_after_quiesce",
                    engine,
                    round,
                    detail: 6,
                },
            ),
            FromEngine::Stats(_) => {}
            // A duplicated/delayed drain poll reply can trail the
            // drain's completion — stale by construction here.
            FromEngine::DrainState { .. } | FromEngine::JoinReady { .. } => {}
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during cleanup prepare: {other:?}"
                )))
            }
        }
    }
    // Phase 2: all forwards are enqueued ahead of StartCleanup in every
    // engine's FIFO inbox (each engine forwarded before reporting
    // ready, and we send StartCleanup only after every ready) — the
    // merge can begin.
    for e in &final_engines {
        send(*e, ToEngine::StartCleanup)?;
    }

    // Mid-run drained engines already contributed their outputs,
    // journals and counters through the interception fold.
    let mut runtime_output = drain_fold.runtime_output;
    let mut cleanup_output = drain_fold.cleanup_output;
    let mut cleanup_wall_ms = drain_fold.cleanup_wall_ms;
    let mut spill_counts = vec![0u64; capacity];
    for (engine, count) in &drain_fold.spill_counts {
        spill_counts[engine.index()] = *count;
    }
    let mut engine_journals: Vec<Vec<JournalEntry>> = std::mem::take(&mut drain_fold.journals);
    let mut journal_counters = drain_fold.counters;
    let mut remaining = final_engines.len();
    while remaining > 0 {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during merge".into()))?
        {
            FromEngine::CleanupDone {
                engine,
                runtime_output: out,
                cleanup_output: missed,
                spill_count,
                cleanup_cost_ms,
                journal: engine_journal,
                journal_counters: engine_counters,
            } => {
                runtime_output += out;
                cleanup_output += missed;
                cleanup_wall_ms = cleanup_wall_ms.max(cleanup_cost_ms);
                spill_counts[engine.index()] = spill_count;
                engine_journals.push(engine_journal);
                fold_engine_counters(&mut journal_counters, &engine_counters);
                remaining -= 1;
            }
            // Chaos duplicates of already-settled rounds can trail into
            // the merge — stale by construction, like the prepare loop.
            FromEngine::Ptv { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ptv_after_quiesce",
                    engine,
                    round,
                    detail: 2,
                },
            ),
            FromEngine::TransferAck { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ack_after_quiesce",
                    engine,
                    round,
                    detail: 6,
                },
            ),
            FromEngine::Stats(_) | FromEngine::DrainState { .. } | FromEngine::JoinReady { .. } => {
            }
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during merge: {other:?}"
                )))
            }
        }
    }
    for h in handles {
        h.join()
            .map_err(|_| DcapeError::Disconnected("engine thread panicked".into()))?;
    }

    let merged = if cfg.journal {
        engine_journals.push(journal.snapshot());
        merge_journals(engine_journals)
    } else {
        Vec::new()
    };
    if let Some(c) = journal.counters() {
        journal_counters.absorb(&c.snapshot());
    }

    Ok(ThreadedReport {
        runtime_output,
        cleanup_output,
        relocations,
        spill_counts,
        force_spills: gc.force_spills_issued(),
        cleanup_wall_ms,
        journal: merged,
        journal_counters,
    })
}

/// Spawn one engine thread on slot `i` (initial engines at startup,
/// joiners when their scale event fires).
fn spawn_engine(
    i: usize,
    cfg: &SimConfig,
    rx: Receiver<ToEngine>,
    to_gc: &Sender<FromEngine>,
    to_engines: &[Sender<ToEngine>],
) -> thread::JoinHandle<()> {
    let id = EngineId(i as u16);
    let engine_cfg = cfg.engine.clone();
    let to_gc = to_gc.clone();
    let peers = to_engines.to_vec();
    let journal_on = cfg.journal;
    let count_first = cfg.count_first;
    let plan = cfg.faults;
    thread::Builder::new()
        .name(format!("dcape-qe{i}"))
        .spawn(move || {
            engine_main(
                id,
                engine_cfg,
                rx,
                to_gc,
                peers,
                journal_on,
                count_first,
                plan,
            )
        })
        .expect("spawn engine thread")
}

/// Channel transport for an engine thread: replies go to the
/// coordinator's inbox, peer messages straight into the peer's channel.
/// Send errors are ignored — a closed channel only happens in shutdown
/// races, where the message is moot.
struct ChannelTx {
    to_gc: Sender<FromEngine>,
    peers: Vec<Sender<ToEngine>>,
}

impl EngineTx for ChannelTx {
    fn to_gc(&mut self, m: FromEngine) -> Result<()> {
        let _ = self.to_gc.send(m);
        Ok(())
    }

    fn to_peer(&mut self, target: EngineId, m: ToEngine) -> Result<()> {
        let _ = self.peers[target.index()].send(m);
        Ok(())
    }
}

/// The engine thread body: a thin receive loop around [`EngineCore`].
#[allow(clippy::too_many_arguments)]
fn engine_main(
    id: EngineId,
    cfg: dcape_engine::config::EngineConfig,
    rx: Receiver<ToEngine>,
    to_gc: Sender<FromEngine>,
    peers: Vec<Sender<ToEngine>>,
    journal_on: bool,
    count_first: bool,
    plan: FaultPlan,
) {
    let mut core = match EngineCore::new(id, cfg, journal_on, count_first) {
        Ok(core) => core,
        Err(e) => panic!("engine {id} failed to start: {e}"),
    };
    let mut tx = ChannelTx { to_gc, peers };
    // Announce readiness: for a mid-run joiner this is what unlocks
    // rebalance moves toward it; for initial engines it is a quiet
    // no-op at the coordinator.
    let _ = tx.to_gc.send(FromEngine::JoinReady { engine: id });
    for msg in rx.iter() {
        match core.handle(msg, &plan, &mut tx) {
            Ok(EngineFlow::Continue) => {}
            // In-process crash-restart: drop all transient state, keep
            // the process (thread) alive — the socket driver's worker
            // exits the real OS process here instead.
            Ok(EngineFlow::CrashRequested) => {
                if let Err(e) = core.qe.crash_restart() {
                    panic!("engine {id} failed to crash-restart: {e}");
                }
            }
            Ok(EngineFlow::Finished) => break,
            Err(e) => panic!("engine {id} failed: {e}"),
        }
    }
}
