//! The threaded cluster runtime: one OS thread per query engine.
//!
//! This driver stands in for the paper's PC cluster: engines run
//! concurrently, all coordination flows through channels as real
//! asynchronous messages (the full Figure 8 sequence — `Cptv`, `Ptv`,
//! pause-and-buffer, `SendStates`, engine-to-engine `InstallStates`,
//! `TransferAck`, remap-and-flush, `Resume`), and the driver thread
//! plays the roles of stream source, split operators, and global
//! coordinator.
//!
//! Differences from the paper's deployment, by design:
//!
//! * Virtual time still paces timers (determinism of *decisions* is not
//!   required here — thread interleaving varies — but totals are
//!   invariant: every tuple is processed exactly once).
//! * The cleanup phase is **distributed**, as in the paper: at
//!   shutdown the driver broadcasts the final placement, every engine
//!   forwards its non-owned spill segments to the partitions' owners
//!   (engine-to-engine messages), and once all engines report ready,
//!   each merges its owned partitions locally, in parallel, reporting
//!   missing-result counts and its modeled merge cost (the wall time is
//!   the max — T-cleanup-2's comparison).

use std::thread;

use crossbeam::channel::{unbounded, Receiver, Sender};

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{PeriodicTimer, VirtualTime};
use dcape_engine::controller::Mode;
use dcape_engine::engine::QueryEngine;
use dcape_engine::probe::ProbeSpans;
use dcape_engine::sink::{CountingSink, EnumeratingSink, ResultSink};
use dcape_metrics::journal::{
    merge_journals, AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle,
};
use dcape_streamgen::StreamSetGenerator;

use crate::coordinator::GlobalCoordinator;
use crate::messages::{FromEngine, GroupTransfer, ToEngine};
use crate::placement::{PlacementMap, Route};
use crate::relocation::Action;
use crate::runtime::sim::SimConfig;
use crate::stats::ClusterStats;
use crate::strategy::Decision;

/// Outcome of one threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Results produced during the run-time phase (all engines).
    pub runtime_output: u64,
    /// Missing results produced by the central cleanup merge.
    pub cleanup_output: u64,
    /// Completed relocation rounds.
    pub relocations: u64,
    /// Spill adaptations per engine.
    pub spill_counts: Vec<u64>,
    /// Forced spills issued.
    pub force_spills: u64,
    /// Modeled parallel cleanup wall time: max per-engine merge cost.
    pub cleanup_wall_ms: u64,
    /// Adaptation-event journal: every engine's journal plus the
    /// coordinator's, merged by virtual time (empty unless
    /// `SimConfig::journal` was set).
    pub journal: Vec<JournalEntry>,
    /// Final counter values (coordinator-side tallies plus per-engine
    /// ring accounting; zeros unless `SimConfig::journal` was set).
    pub journal_counters: CountersSnapshot,
}

impl ThreadedReport {
    /// Total results across both phases.
    pub fn total_output(&self) -> u64 {
        self.runtime_output + self.cleanup_output
    }
}

/// Run a complete experiment on real threads until `deadline` of
/// virtual time, then shut down and merge the cleanup phase.
pub fn run_threaded(cfg: SimConfig, deadline: VirtualTime) -> Result<ThreadedReport> {
    if cfg.num_engines == 0 {
        return Err(DcapeError::config("need at least one engine"));
    }
    let mut gen = StreamSetGenerator::new(cfg.workload.clone())?;
    let mut split = crate::split::SplitOperator::new(
        gen.partitioner(),
        vec![StreamSetGenerator::JOIN_COLUMN; cfg.workload.num_streams],
    )?;
    let mut placement =
        PlacementMap::new(&cfg.placement, cfg.workload.num_partitions, cfg.num_engines)?;
    let mut gc = GlobalCoordinator::new(&cfg.strategy);
    // Coordinator-side journal; each engine thread keeps its own and
    // ships it back with `CleanupDone` for the final merge.
    let journal = if cfg.journal {
        let handle = JournalHandle::enabled();
        gc.set_journal(handle.clone());
        handle
    } else {
        JournalHandle::disabled()
    };

    // Channel fabric.
    let mut to_engines: Vec<Sender<ToEngine>> = Vec::with_capacity(cfg.num_engines);
    let mut engine_rxs: Vec<Receiver<ToEngine>> = Vec::with_capacity(cfg.num_engines);
    for _ in 0..cfg.num_engines {
        let (tx, rx) = unbounded();
        to_engines.push(tx);
        engine_rxs.push(rx);
    }
    let (to_gc, from_engines) = unbounded::<FromEngine>();

    // Spawn engine threads.
    let mut handles = Vec::with_capacity(cfg.num_engines);
    for (i, rx) in engine_rxs.into_iter().enumerate() {
        let id = EngineId(i as u16);
        let engine_cfg = cfg.engine.clone();
        let to_gc = to_gc.clone();
        let peers = to_engines.clone();
        let journal_on = cfg.journal;
        let count_first = cfg.count_first;
        handles.push(
            thread::Builder::new()
                .name(format!("dcape-qe{i}"))
                .spawn(move || {
                    engine_main(id, engine_cfg, rx, to_gc, peers, journal_on, count_first)
                })
                .expect("spawn engine thread"),
        );
    }
    drop(to_gc);

    // Driver loop: source + splits + coordinator.
    let mut stats_timer = PeriodicTimer::new(cfg.stats_interval, VirtualTime::ZERO);
    let mut tick_timer = PeriodicTimer::new(
        dcape_common::time::VirtualDuration::from_secs(1),
        VirtualTime::ZERO,
    );
    let mut pending_stats: Vec<Option<dcape_engine::stats::EngineStatsReport>> =
        vec![None; cfg.num_engines];
    let mut awaiting_stats = false;
    let mut relocations = 0u64;

    let send_to = |txs: &[Sender<ToEngine>], e: EngineId, msg: ToEngine| -> Result<()> {
        txs[e.index()]
            .send(msg)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };

    // Batched dataflow: one reused tick buffer and one routed batch per
    // engine. Batches coalesce across generator ticks — the channel
    // send is the per-message cost being amortized — and flush (a)
    // every `MAX_BATCH_TICKS` ticks, (b) before any `Tick`/
    // `ReportStats` send, so no data trails a timer pulse it preceded
    // in virtual time, and (c) before any coordinator message is
    // handled, so every already-routed tuple reaches its engine ahead
    // of a `SendStates`/remap that could re-home its partition.
    const MAX_BATCH_TICKS: u32 = 64;
    let mut tick_buf: Vec<dcape_common::tuple::Tuple> = Vec::new();
    let mut engine_batches: Vec<TupleBatch> =
        (0..cfg.num_engines).map(|_| TupleBatch::new()).collect();
    let mut pending_ticks = 0u32;
    let flush_pending =
        |batches: &mut Vec<TupleBatch>, txs: &[Sender<ToEngine>], ticks: &mut u32| -> Result<()> {
            *ticks = 0;
            for (i, pending) in batches.iter_mut().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                // Right-size the replacement so the next accumulation
                // window fills it without growing from empty.
                let tuples = std::mem::replace(pending, TupleBatch::with_capacity(pending.len()));
                txs[i]
                    .send(ToEngine::DataBatch { tuples })
                    .map_err(|_| DcapeError::Disconnected(format!("engine {i} channel closed")))?;
            }
            Ok(())
        };

    while gen.now() < deadline {
        let now = gen.now();
        if cfg.batch {
            gen.tick_batch(&mut tick_buf);
            journal.add_tuples_routed(tick_buf.len() as u64);
            for tuple in tick_buf.drain(..) {
                let pid = split.classify(&tuple)?;
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        engine_batches[engine.index()].push(pid, tuple);
                    }
                }
            }
            pending_ticks += 1;
            if pending_ticks >= MAX_BATCH_TICKS
                || tick_timer.expired(now)
                || stats_timer.expired(now)
            {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
        } else {
            let batch = gen.generate_ticks(1);
            for tuple in batch {
                let pid = split.classify(&tuple)?;
                journal.add_tuples_routed(1);
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        send_to(&to_engines, engine, ToEngine::Data { pid, tuple })?;
                    }
                }
            }
        }
        if tick_timer.expired(now) {
            tick_timer.reset(now);
            // Watermark-driven purge horizon: while a relocation holds
            // tuples buffered at the splits, the horizon stays at the
            // oldest buffered timestamp, so no engine can purge the
            // join partners of a tuple that has yet to replay.
            let watermark = split.admitted_watermark();
            let horizon = placement.purge_horizon(watermark);
            if cfg.engine.join.window.is_some() && horizon < watermark {
                journal.add_purges_deferred(1);
            }
            for i in 0..cfg.num_engines {
                send_to(
                    &to_engines,
                    EngineId(i as u16),
                    ToEngine::Tick { now, horizon },
                )?;
            }
        }
        if stats_timer.expired(now) && !awaiting_stats && !gc.relocation_active() {
            stats_timer.reset(now);
            awaiting_stats = true;
            pending_stats.iter_mut().for_each(|s| *s = None);
            for i in 0..cfg.num_engines {
                send_to(
                    &to_engines,
                    EngineId(i as u16),
                    ToEngine::ReportStats { now },
                )?;
            }
        }

        // Drain coordinator inbox without blocking the data path.
        while let Ok(msg) = from_engines.try_recv() {
            // Deliver already-routed tuples before acting on anything
            // that might pause or re-home their partitions.
            if cfg.batch {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
            handle_coordinator_msg(
                msg,
                &mut gc,
                &mut placement,
                &to_engines,
                &mut pending_stats,
                &mut awaiting_stats,
                &mut relocations,
                &journal,
                now,
                split.admitted_watermark(),
                cfg.batch,
            )?;
        }
    }

    // The deadline passed: deliver any coalesced batches before the
    // quiesce/cleanup phases.
    if cfg.batch {
        flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
    }

    // Quiesce: finish any in-flight relocation before shutdown so no
    // state is lost mid-transfer.
    while gc.relocation_active() || awaiting_stats {
        let msg = from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up".into()))?;
        handle_coordinator_msg(
            msg,
            &mut gc,
            &mut placement,
            &to_engines,
            &mut pending_stats,
            &mut awaiting_stats,
            &mut relocations,
            &journal,
            deadline,
            split.admitted_watermark(),
            cfg.batch,
        )?;
    }

    // Flush any tuples still buffered (there should be none once no
    // relocation is active — assert the protocol invariant). Draining
    // the last round also released the held watermark: nothing may
    // remain buffered at the splits after quiesce.
    debug_assert!(placement.paused_partitions().is_empty());
    debug_assert!(placement.oldest_buffered_ts().is_none());

    // Distributed cleanup, phase 1: every engine forwards its non-owned
    // segments to the partition's owner (the paper's cleanup runs where
    // the partition lives, in parallel across machines).
    let owners: Vec<EngineId> = (0..placement.num_partitions())
        .map(|i| placement.owner(PartitionId(i)))
        .collect::<Result<_>>()?;
    for tx in &to_engines {
        tx.send(ToEngine::PrepareCleanup {
            owners: owners.clone(),
        })
        .map_err(|_| DcapeError::Disconnected("engine channel closed".into()))?;
    }
    let mut ready = 0usize;
    while ready < cfg.num_engines {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during cleanup".into()))?
        {
            FromEngine::CleanupReady { .. } => ready += 1,
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during cleanup prepare: {other:?}"
                )))
            }
        }
    }
    // Phase 2: all forwards are enqueued ahead of StartCleanup in every
    // engine's FIFO inbox (each engine forwarded before reporting
    // ready, and we send StartCleanup only after every ready) — the
    // merge can begin.
    for tx in &to_engines {
        tx.send(ToEngine::StartCleanup)
            .map_err(|_| DcapeError::Disconnected("engine channel closed".into()))?;
    }

    let mut runtime_output = 0u64;
    let mut cleanup_output = 0u64;
    let mut cleanup_wall_ms = 0u64;
    let mut spill_counts = vec![0u64; cfg.num_engines];
    let mut engine_journals: Vec<Vec<JournalEntry>> = Vec::with_capacity(cfg.num_engines);
    let mut journal_counters = CountersSnapshot::default();
    let mut remaining = cfg.num_engines;
    while remaining > 0 {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during merge".into()))?
        {
            FromEngine::CleanupDone {
                engine,
                runtime_output: out,
                cleanup_output: missed,
                spill_count,
                cleanup_cost_ms,
                journal: engine_journal,
                journal_counters: engine_counters,
            } => {
                runtime_output += out;
                cleanup_output += missed;
                cleanup_wall_ms = cleanup_wall_ms.max(cleanup_cost_ms);
                spill_counts[engine.index()] = spill_count;
                engine_journals.push(engine_journal);
                // Spills happen engine-side here (unlike the sim's
                // mirror); fold the engines' I/O volumes and ring
                // accounting into the cluster-wide totals.
                journal_counters.spill_bytes += engine_counters.spill_bytes;
                journal_counters.events_recorded += engine_counters.events_recorded;
                journal_counters.events_dropped += engine_counters.events_dropped;
                remaining -= 1;
            }
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during merge: {other:?}"
                )))
            }
        }
    }
    for h in handles {
        h.join()
            .map_err(|_| DcapeError::Disconnected("engine thread panicked".into()))?;
    }

    let merged = if cfg.journal {
        engine_journals.push(journal.snapshot());
        merge_journals(engine_journals)
    } else {
        Vec::new()
    };
    if let Some(c) = journal.counters() {
        journal_counters.absorb(&c.snapshot());
    }

    Ok(ThreadedReport {
        runtime_output,
        cleanup_output,
        relocations,
        spill_counts,
        force_spills: gc.force_spills_issued(),
        cleanup_wall_ms,
        journal: merged,
        journal_counters,
    })
}

/// Coordinator-side message handling (shared by the run loop and the
/// quiesce loop).
#[allow(clippy::too_many_arguments)]
fn handle_coordinator_msg(
    msg: FromEngine,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    to_engines: &[Sender<ToEngine>],
    pending_stats: &mut [Option<dcape_engine::stats::EngineStatsReport>],
    awaiting_stats: &mut bool,
    relocations: &mut u64,
    journal: &JournalHandle,
    now: VirtualTime,
    watermark: VirtualTime,
    batch_mode: bool,
) -> Result<()> {
    let send = |e: EngineId, m: ToEngine| -> Result<()> {
        to_engines[e.index()]
            .send(m)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };
    match msg {
        FromEngine::Stats(report) => {
            let idx = report.engine.index();
            pending_stats[idx] = Some(report);
            if *awaiting_stats && pending_stats.iter().all(Option::is_some) {
                *awaiting_stats = false;
                let stats = ClusterStats::new(pending_stats.iter().flatten().copied().collect());
                match gc.evaluate(&stats, now)? {
                    Decision::None => {}
                    Decision::ForceSpill { engine, amount } => {
                        send(engine, ToEngine::StartSpill { amount })?;
                    }
                    Decision::Relocate { sender, .. } => {
                        let (round, s, _r, amount) =
                            gc.active_round_info().expect("round just opened");
                        debug_assert_eq!(s, sender);
                        send(sender, ToEngine::Cptv { round, amount })?;
                    }
                }
            }
            Ok(())
        }
        FromEngine::Ptv {
            round,
            engine,
            parts,
        } => match gc.on_ptv(engine, round, parts, now)? {
            // Aborted rounds paused nothing, so the full admitted
            // watermark is already safe to release.
            Action::Abort => send(engine, ToEngine::Resume { round, watermark }),
            Action::PauseAndTransfer {
                parts,
                sender,
                receiver,
            } => {
                placement.pause(&parts)?;
                journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round,
                        step: 3,
                        sender,
                        receiver,
                        parts: parts.clone(),
                        bytes: 0,
                        buffered_tuples: 0,
                        load_ratio: 0.0,
                    },
                );
                send(
                    sender,
                    ToEngine::SendStates {
                        round,
                        parts,
                        receiver,
                    },
                )
            }
            Action::RemapAndResume { .. } => Err(DcapeError::protocol("remap action out of order")),
        },
        FromEngine::TransferAck {
            round,
            engine,
            bytes,
        } => {
            // Capture the pair before the ack closes the round.
            let sender = gc.active_round_info().map(|(_, s, ..)| s).unwrap_or(engine);
            journal.add_relocation_bytes(bytes);
            match gc.on_transfer_ack(engine, round, now)? {
                Action::RemapAndResume {
                    parts,
                    receiver,
                    held_since,
                } => {
                    // Step 7: flush the split-side buffers to the new
                    // owner — as one batch in batch mode (per-pid lists
                    // arrive in order; batching is a stable reordering).
                    let released = placement.remap_and_release(&parts, receiver)?;
                    let mut buffered = 0u64;
                    if batch_mode {
                        let mut flush = TupleBatch::new();
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                flush.push(pid, tuple);
                            }
                        }
                        if !flush.is_empty() {
                            send(receiver, ToEngine::DataBatch { tuples: flush })?;
                        }
                    } else {
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                send(receiver, ToEngine::Data { pid, tuple })?;
                            }
                        }
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 7,
                            sender,
                            receiver,
                            parts,
                            bytes: 0,
                            buffered_tuples: buffered,
                            load_ratio: 0.0,
                        },
                    );
                    journal.sub_buffered_in_flight(buffered);
                    journal.add_replayed_in_order(buffered);
                    journal.add_watermark_held_ms(
                        now.as_millis().saturating_sub(held_since.as_millis()),
                    );
                    *relocations += 1;
                    // Step 8: resume both parties, releasing the held
                    // purge watermark. Every replayed tuple was sent
                    // (FIFO) before this Resume and every later arrival
                    // carries `ts >= watermark`, so engines may catch
                    // their window purge up to `watermark` on receipt.
                    // The sender is derivable from the completed
                    // round's parts' previous owner; we broadcast
                    // Resume — engines ignore stale rounds.
                    for (i, _) in to_engines.iter().enumerate() {
                        send(EngineId(i as u16), ToEngine::Resume { round, watermark })?;
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 8,
                            sender,
                            receiver,
                            parts: Vec::new(),
                            bytes: 0,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    Ok(())
                }
                other => Err(DcapeError::protocol(format!(
                    "unexpected action after ack: {other:?}"
                ))),
            }
        }
        FromEngine::CleanupReady { .. } | FromEngine::CleanupDone { .. } => {
            Err(DcapeError::protocol("cleanup message before shutdown"))
        }
    }
}

/// The engine thread body.
/// The engine thread's counting sink, honoring `SimConfig::count_first`:
/// either the span-based fast path (product counting / window pruning)
/// or the per-combination enumerating baseline, so the two arms can be
/// benchmarked and proven equivalent on the threaded driver too.
#[derive(Debug)]
enum EngineSink {
    CountFirst(CountingSink),
    PerCombination(EnumeratingSink<CountingSink>),
}

impl EngineSink {
    fn new(count_first: bool) -> Self {
        if count_first {
            EngineSink::CountFirst(CountingSink::new())
        } else {
            EngineSink::PerCombination(EnumeratingSink(CountingSink::new()))
        }
    }

    fn count(&self) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.count(),
            EngineSink::PerCombination(s) => s.0.count(),
        }
    }
}

impl ResultSink for EngineSink {
    #[inline]
    fn emit(&mut self, parts: &[&dcape_common::tuple::Tuple]) {
        match self {
            EngineSink::CountFirst(s) => s.emit(parts),
            EngineSink::PerCombination(s) => s.emit(parts),
        }
    }

    #[inline]
    fn emit_product(&mut self, spans: &ProbeSpans<'_, '_>) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.emit_product(spans),
            EngineSink::PerCombination(s) => s.emit_product(spans),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_main(
    id: EngineId,
    cfg: dcape_engine::config::EngineConfig,
    rx: Receiver<ToEngine>,
    to_gc: Sender<FromEngine>,
    peers: Vec<Sender<ToEngine>>,
    journal_on: bool,
    count_first: bool,
) {
    let mut qe = match QueryEngine::in_memory(id, cfg) {
        Ok(qe) => qe,
        Err(e) => panic!("engine {id} failed to start: {e}"),
    };
    if journal_on {
        qe.set_journal(JournalHandle::enabled());
    }
    let mut sink = EngineSink::new(count_first);
    let mut last_now = VirtualTime::ZERO;
    for msg in rx.iter() {
        let result: Result<bool> = (|| {
            match msg {
                ToEngine::Data { pid, tuple } => {
                    qe.process(pid, tuple, &mut sink)?;
                }
                ToEngine::DataBatch { tuples } => {
                    qe.process_batch(tuples, &mut sink)?;
                }
                ToEngine::Tick { now, horizon } => {
                    last_now = now;
                    qe.tick_with_horizon(now, horizon)?;
                }
                ToEngine::ReportStats { now } => {
                    last_now = now;
                    let report = qe.report(now);
                    let _ = to_gc.send(FromEngine::Stats(report));
                }
                ToEngine::Cptv { round, amount } => {
                    qe.set_mode(Mode::Relocation);
                    let parts = qe.select_parts_to_move(amount);
                    let _ = to_gc.send(FromEngine::Ptv {
                        round,
                        engine: id,
                        parts,
                    });
                }
                ToEngine::SendStates {
                    round,
                    parts,
                    receiver,
                } => {
                    let groups: Vec<GroupTransfer> = qe
                        .extract_groups(&parts)
                        .into_iter()
                        .map(|(snapshot, output_count, purge_protect)| GroupTransfer {
                            snapshot,
                            output_count,
                            purge_protect,
                        })
                        .collect();
                    let bytes: u64 = groups.iter().map(|g| g.snapshot.state_bytes() as u64).sum();
                    qe.journal().record(
                        last_now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 4,
                            sender: id,
                            receiver,
                            parts: parts.clone(),
                            bytes,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    qe.journal().add_relocation_bytes(bytes);
                    let _ = peers[receiver.index()].send(ToEngine::InstallStates {
                        round,
                        sender: id,
                        groups,
                    });
                }
                ToEngine::InstallStates {
                    round,
                    sender,
                    groups,
                } => {
                    qe.set_mode(Mode::Relocation);
                    let bytes: u64 = groups.iter().map(|g| g.snapshot.state_bytes() as u64).sum();
                    let parts: Vec<PartitionId> =
                        groups.iter().map(|g| g.snapshot.partition).collect();
                    qe.install_groups(
                        groups
                            .into_iter()
                            .map(|g| (g.snapshot, g.output_count, g.purge_protect))
                            .collect(),
                    )?;
                    qe.journal().record(
                        last_now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 5,
                            sender,
                            receiver: id,
                            parts,
                            bytes,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    let _ = to_gc.send(FromEngine::TransferAck {
                        round,
                        engine: id,
                        bytes,
                    });
                }
                ToEngine::Resume { watermark, .. } => {
                    qe.set_mode(Mode::Normal);
                    // Catch-up purge: the round's replay (if any) sits
                    // earlier in this FIFO inbox, so it has been
                    // processed; everything arriving later carries
                    // `ts >= watermark`. Purge-only — no spill-trigger
                    // side effects between protocol steps.
                    qe.purge_at(watermark);
                }
                ToEngine::StartSpill { amount } => {
                    qe.force_spill(amount, last_now)?;
                }
                ToEngine::PrepareCleanup { owners } => {
                    // Forward segments of partitions owned elsewhere.
                    let mut forwarded = 0usize;
                    for pid in qe.spilled_partitions() {
                        let owner = owners
                            .get(pid.index())
                            .copied()
                            .ok_or_else(|| DcapeError::state(format!("no owner for {pid}")))?;
                        if owner == id {
                            continue;
                        }
                        let segments = qe.take_spilled_segments(pid)?;
                        forwarded += segments.len();
                        let _ = peers[owner.index()]
                            .send(ToEngine::ForwardedSegments { pid, segments });
                    }
                    let _ = to_gc.send(FromEngine::CleanupReady {
                        engine: id,
                        forwarded,
                    });
                }
                ToEngine::ForwardedSegments { segments, .. } => {
                    qe.import_segments(segments)?;
                }
                ToEngine::StartCleanup => {
                    // Local parallel merge over owned partitions.
                    let mut sink = EngineSink::new(count_first);
                    let report = qe.cleanup(&mut sink)?;
                    let _ = to_gc.send(FromEngine::CleanupDone {
                        engine: id,
                        runtime_output: qe.total_output(),
                        cleanup_output: sink.count(),
                        spill_count: qe.spill_history().len() as u64,
                        cleanup_cost_ms: report.virtual_cost.as_millis(),
                        journal: qe.journal().snapshot(),
                        journal_counters: qe
                            .journal()
                            .counters()
                            .map(|c| c.snapshot())
                            .unwrap_or_default(),
                    });
                    return Ok(false);
                }
            }
            Ok(true)
        })();
        match result {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => panic!("engine {id} failed: {e}"),
        }
    }
}
