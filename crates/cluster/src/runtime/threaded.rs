//! The threaded cluster runtime: one OS thread per query engine.
//!
//! This driver stands in for the paper's PC cluster: engines run
//! concurrently, all coordination flows through channels as real
//! asynchronous messages (the full Figure 8 sequence — `Cptv`, `Ptv`,
//! pause-and-buffer, `SendStates`, engine-to-engine `InstallStates`,
//! `TransferAck`, remap-and-flush, `Resume`), and the driver thread
//! plays the roles of stream source, split operators, and global
//! coordinator.
//!
//! Differences from the paper's deployment, by design:
//!
//! * Virtual time still paces timers (determinism of *decisions* is not
//!   required here — thread interleaving varies — but totals are
//!   invariant: every tuple is processed exactly once).
//! * The cleanup phase is **distributed**, as in the paper: at
//!   shutdown the driver broadcasts the final placement, every engine
//!   forwards its non-owned spill segments to the partitions' owners
//!   (engine-to-engine messages), and once all engines report ready,
//!   each merges its owned partitions locally, in parallel, reporting
//!   missing-result counts and its modeled merge cost (the wall time is
//!   the max — T-cleanup-2's comparison).

use std::thread;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use dcape_common::batch::TupleBatch;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{PeriodicTimer, VirtualDuration, VirtualTime};
use dcape_engine::controller::Mode;
use dcape_engine::engine::QueryEngine;
use dcape_engine::probe::ProbeSpans;
use dcape_engine::sink::{CountingSink, EnumeratingSink, ResultSink};
use dcape_metrics::journal::{
    merge_journals, AdaptEvent, CountersSnapshot, JournalEntry, JournalHandle,
};
use dcape_streamgen::StreamSetGenerator;

use crate::coordinator::{GlobalCoordinator, RetryPolicy, TimeoutAction};
use crate::faults::{FaultDecision, FaultEdge, FaultPlan};
use crate::messages::{FromEngine, GroupTransfer, ToEngine};
use crate::placement::{PlacementMap, Route};
use crate::relocation::Action;
use crate::runtime::sim::SimConfig;
use crate::stats::ClusterStats;
use crate::strategy::Decision;

/// Driver-held control messages the chaos layer delayed (`Cptv`,
/// `SendStates`); released into the channels once the virtual clock
/// passes the due time.
type HeldSends = Vec<(VirtualTime, EngineId, ToEngine)>;

/// Consult the fault plan for one message edge, journaling any injected
/// fault (shared by the driver thread and the engine threads — both
/// count into `faults_injected`, folded together at shutdown).
fn edge_decision(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
) -> FaultDecision {
    let decision = plan.decide(edge, round, attempt);
    if let Some(fault) = decision.fault_name() {
        journal.add_faults_injected(1);
        journal.record(
            now,
            AdaptEvent::FaultInjected {
                fault,
                edge: edge.name(),
                round,
                attempt,
            },
        );
    }
    decision
}

/// Outcome of one threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Results produced during the run-time phase (all engines).
    pub runtime_output: u64,
    /// Missing results produced by the central cleanup merge.
    pub cleanup_output: u64,
    /// Completed relocation rounds.
    pub relocations: u64,
    /// Spill adaptations per engine.
    pub spill_counts: Vec<u64>,
    /// Forced spills issued.
    pub force_spills: u64,
    /// Modeled parallel cleanup wall time: max per-engine merge cost.
    pub cleanup_wall_ms: u64,
    /// Adaptation-event journal: every engine's journal plus the
    /// coordinator's, merged by virtual time (empty unless
    /// `SimConfig::journal` was set).
    pub journal: Vec<JournalEntry>,
    /// Final counter values (coordinator-side tallies plus per-engine
    /// ring accounting; zeros unless `SimConfig::journal` was set).
    pub journal_counters: CountersSnapshot,
}

impl ThreadedReport {
    /// Total results across both phases.
    pub fn total_output(&self) -> u64 {
        self.runtime_output + self.cleanup_output
    }
}

/// Run a complete experiment on real threads until `deadline` of
/// virtual time, then shut down and merge the cleanup phase.
pub fn run_threaded(cfg: SimConfig, deadline: VirtualTime) -> Result<ThreadedReport> {
    if cfg.num_engines == 0 {
        return Err(DcapeError::config("need at least one engine"));
    }
    let mut gen = StreamSetGenerator::new(cfg.workload.clone())?;
    let mut split = crate::split::SplitOperator::new(
        gen.partitioner(),
        vec![StreamSetGenerator::JOIN_COLUMN; cfg.workload.num_streams],
    )?;
    let mut placement =
        PlacementMap::new(&cfg.placement, cfg.workload.num_partitions, cfg.num_engines)?;
    let mut gc = GlobalCoordinator::new(&cfg.strategy);
    // Coordinator-side journal; each engine thread keeps its own and
    // ships it back with `CleanupDone` for the final merge.
    let journal = if cfg.journal {
        let handle = JournalHandle::enabled();
        gc.set_journal(handle.clone());
        handle
    } else {
        JournalHandle::disabled()
    };
    // An active fault plan arms bounded patience — otherwise a single
    // dropped protocol message would wedge the quiesce loop forever.
    if cfg.faults.is_active() {
        gc.set_retry_policy(RetryPolicy::default());
    }
    let mut held_sends: HeldSends = Vec::new();

    // Channel fabric.
    let mut to_engines: Vec<Sender<ToEngine>> = Vec::with_capacity(cfg.num_engines);
    let mut engine_rxs: Vec<Receiver<ToEngine>> = Vec::with_capacity(cfg.num_engines);
    for _ in 0..cfg.num_engines {
        let (tx, rx) = unbounded();
        to_engines.push(tx);
        engine_rxs.push(rx);
    }
    let (to_gc, from_engines) = unbounded::<FromEngine>();

    // Spawn engine threads.
    let mut handles = Vec::with_capacity(cfg.num_engines);
    for (i, rx) in engine_rxs.into_iter().enumerate() {
        let id = EngineId(i as u16);
        let engine_cfg = cfg.engine.clone();
        let to_gc = to_gc.clone();
        let peers = to_engines.clone();
        let journal_on = cfg.journal;
        let count_first = cfg.count_first;
        let plan = cfg.faults;
        handles.push(
            thread::Builder::new()
                .name(format!("dcape-qe{i}"))
                .spawn(move || {
                    engine_main(
                        id,
                        engine_cfg,
                        rx,
                        to_gc,
                        peers,
                        journal_on,
                        count_first,
                        plan,
                    )
                })
                .expect("spawn engine thread"),
        );
    }
    drop(to_gc);

    // Driver loop: source + splits + coordinator.
    let mut stats_timer = PeriodicTimer::new(cfg.stats_interval, VirtualTime::ZERO);
    let mut tick_timer = PeriodicTimer::new(
        dcape_common::time::VirtualDuration::from_secs(1),
        VirtualTime::ZERO,
    );
    let mut pending_stats: Vec<Option<dcape_engine::stats::EngineStatsReport>> =
        vec![None; cfg.num_engines];
    let mut awaiting_stats = false;
    let mut relocations = 0u64;

    let send_to = |txs: &[Sender<ToEngine>], e: EngineId, msg: ToEngine| -> Result<()> {
        txs[e.index()]
            .send(msg)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };

    // Batched dataflow: one reused tick buffer and one routed batch per
    // engine. Batches coalesce across generator ticks — the channel
    // send is the per-message cost being amortized — and flush (a)
    // every `MAX_BATCH_TICKS` ticks, (b) before any `Tick`/
    // `ReportStats` send, so no data trails a timer pulse it preceded
    // in virtual time, and (c) before any coordinator message is
    // handled, so every already-routed tuple reaches its engine ahead
    // of a `SendStates`/remap that could re-home its partition.
    const MAX_BATCH_TICKS: u32 = 64;
    let mut tick_buf: Vec<dcape_common::tuple::Tuple> = Vec::new();
    let mut engine_batches: Vec<TupleBatch> =
        (0..cfg.num_engines).map(|_| TupleBatch::new()).collect();
    let mut pending_ticks = 0u32;
    let flush_pending =
        |batches: &mut Vec<TupleBatch>, txs: &[Sender<ToEngine>], ticks: &mut u32| -> Result<()> {
            *ticks = 0;
            for (i, pending) in batches.iter_mut().enumerate() {
                if pending.is_empty() {
                    continue;
                }
                // Right-size the replacement so the next accumulation
                // window fills it without growing from empty.
                let tuples = std::mem::replace(pending, TupleBatch::with_capacity(pending.len()));
                txs[i]
                    .send(ToEngine::DataBatch { tuples })
                    .map_err(|_| DcapeError::Disconnected(format!("engine {i} channel closed")))?;
            }
            Ok(())
        };

    while gen.now() < deadline {
        let now = gen.now();
        if cfg.batch {
            gen.tick_batch(&mut tick_buf);
            journal.add_tuples_routed(tick_buf.len() as u64);
            for tuple in tick_buf.drain(..) {
                let pid = split.classify(&tuple)?;
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        engine_batches[engine.index()].push(pid, tuple);
                    }
                }
            }
            pending_ticks += 1;
            if pending_ticks >= MAX_BATCH_TICKS
                || tick_timer.expired(now)
                || stats_timer.expired(now)
            {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
        } else {
            let batch = gen.generate_ticks(1);
            for tuple in batch {
                let pid = split.classify(&tuple)?;
                journal.add_tuples_routed(1);
                match placement.route(pid, tuple)? {
                    Route::Buffered => {
                        journal.add_buffered_in_flight(1);
                    }
                    Route::Deliver(engine, tuple) => {
                        send_to(&to_engines, engine, ToEngine::Data { pid, tuple })?;
                    }
                }
            }
        }
        if tick_timer.expired(now) {
            tick_timer.reset(now);
            // Watermark-driven purge horizon: while a relocation holds
            // tuples buffered at the splits, the horizon stays at the
            // oldest buffered timestamp, so no engine can purge the
            // join partners of a tuple that has yet to replay.
            let watermark = split.admitted_watermark();
            let horizon = placement.purge_horizon(watermark);
            if cfg.engine.join.window.is_some() && horizon < watermark {
                journal.add_purges_deferred(1);
            }
            for i in 0..cfg.num_engines {
                send_to(
                    &to_engines,
                    EngineId(i as u16),
                    ToEngine::Tick { now, horizon },
                )?;
            }
        }
        if stats_timer.expired(now) && !awaiting_stats && !gc.relocation_active() {
            stats_timer.reset(now);
            awaiting_stats = true;
            pending_stats.iter_mut().for_each(|s| *s = None);
            for i in 0..cfg.num_engines {
                send_to(
                    &to_engines,
                    EngineId(i as u16),
                    ToEngine::ReportStats { now },
                )?;
            }
        }

        // Drain coordinator inbox without blocking the data path.
        while let Ok(msg) = from_engines.try_recv() {
            // Deliver already-routed tuples before acting on anything
            // that might pause or re-home their partitions.
            if cfg.batch {
                flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
            }
            handle_coordinator_msg(
                msg,
                &mut gc,
                &mut placement,
                &to_engines,
                &mut pending_stats,
                &mut awaiting_stats,
                &mut relocations,
                &journal,
                now,
                split.admitted_watermark(),
                cfg.batch,
                &cfg.faults,
                &mut held_sends,
            )?;
        }

        // Chaos: release driver-held delayed control messages whose due
        // time passed, and poll the coordinator's phase deadline
        // (bounded retry, then abort).
        if cfg.faults.is_active() {
            release_due(&mut held_sends, now, &to_engines)?;
            while let Some(action) = gc.check_timeout(now) {
                if cfg.batch {
                    flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
                }
                handle_timeout_action(
                    action,
                    &mut placement,
                    &to_engines,
                    &journal,
                    now,
                    cfg.batch,
                    &cfg.faults,
                    &mut held_sends,
                )?;
            }
        }
    }

    // The deadline passed: deliver any coalesced batches before the
    // quiesce/cleanup phases.
    if cfg.batch {
        flush_pending(&mut engine_batches, &to_engines, &mut pending_ticks)?;
    }

    // Quiesce: finish (or abort) any in-flight relocation before
    // shutdown so no state is lost mid-transfer. Under chaos, messages
    // may be lost — a blocking receive could wait forever — so the loop
    // advances a virtual clock on receive timeouts: phase deadlines
    // fire (retry, then abort) and engine-held delayed messages release
    // on the ticks we keep sending.
    let mut vnow = deadline;
    while gc.relocation_active() || awaiting_stats || !held_sends.is_empty() {
        release_due(&mut held_sends, vnow, &to_engines)?;
        match from_engines.recv_timeout(Duration::from_millis(5)) {
            Ok(msg) => handle_coordinator_msg(
                msg,
                &mut gc,
                &mut placement,
                &to_engines,
                &mut pending_stats,
                &mut awaiting_stats,
                &mut relocations,
                &journal,
                vnow,
                split.admitted_watermark(),
                cfg.batch,
                &cfg.faults,
                &mut held_sends,
            )?,
            Err(RecvTimeoutError::Timeout) => {
                vnow += VirtualDuration::from_millis(200);
                while let Some(action) = gc.check_timeout(vnow) {
                    handle_timeout_action(
                        action,
                        &mut placement,
                        &to_engines,
                        &journal,
                        vnow,
                        cfg.batch,
                        &cfg.faults,
                        &mut held_sends,
                    )?;
                }
                // Keep ticking so engines release their own held
                // messages; the horizon honours anything still
                // buffered at a paused split.
                let watermark = split.admitted_watermark();
                let horizon = placement.purge_horizon(watermark);
                for i in 0..cfg.num_engines {
                    send_to(
                        &to_engines,
                        EngineId(i as u16),
                        ToEngine::Tick { now: vnow, horizon },
                    )?;
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                return Err(DcapeError::Disconnected("engines hung up".into()))
            }
        }
    }

    // Flush any tuples still buffered (there should be none once no
    // relocation is active — assert the protocol invariant). Draining
    // the last round also released the held watermark: nothing may
    // remain buffered at the splits after quiesce.
    debug_assert!(placement.paused_partitions().is_empty());
    debug_assert!(placement.oldest_buffered_ts().is_none());

    // Distributed cleanup, phase 1: every engine forwards its non-owned
    // segments to the partition's owner (the paper's cleanup runs where
    // the partition lives, in parallel across machines).
    let owners: Vec<EngineId> = (0..placement.num_partitions())
        .map(|i| placement.owner(PartitionId(i)))
        .collect::<Result<_>>()?;
    for tx in &to_engines {
        tx.send(ToEngine::PrepareCleanup {
            owners: owners.clone(),
        })
        .map_err(|_| DcapeError::Disconnected("engine channel closed".into()))?;
    }
    let mut ready = 0usize;
    while ready < cfg.num_engines {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during cleanup".into()))?
        {
            FromEngine::CleanupReady { .. } => ready += 1,
            // Chaos stragglers: a duplicated or delayed protocol message
            // can still be queued when quiesce exits (the loop stops the
            // moment no round is active, which is exactly when a second
            // copy of the closing ack becomes redundant). No round can be
            // live here, so these are stale by construction — journal and
            // skip, consistent with the runtimes' stale-message handling.
            FromEngine::Ptv { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ptv_after_quiesce",
                    engine,
                    round,
                    detail: 2,
                },
            ),
            FromEngine::TransferAck { round, engine, .. } => journal.record(
                vnow,
                AdaptEvent::ProtocolWarning {
                    code: "stale_ack_after_quiesce",
                    engine,
                    round,
                    detail: 6,
                },
            ),
            FromEngine::Stats(_) => {}
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during cleanup prepare: {other:?}"
                )))
            }
        }
    }
    // Phase 2: all forwards are enqueued ahead of StartCleanup in every
    // engine's FIFO inbox (each engine forwarded before reporting
    // ready, and we send StartCleanup only after every ready) — the
    // merge can begin.
    for tx in &to_engines {
        tx.send(ToEngine::StartCleanup)
            .map_err(|_| DcapeError::Disconnected("engine channel closed".into()))?;
    }

    let mut runtime_output = 0u64;
    let mut cleanup_output = 0u64;
    let mut cleanup_wall_ms = 0u64;
    let mut spill_counts = vec![0u64; cfg.num_engines];
    let mut engine_journals: Vec<Vec<JournalEntry>> = Vec::with_capacity(cfg.num_engines);
    let mut journal_counters = CountersSnapshot::default();
    let mut remaining = cfg.num_engines;
    while remaining > 0 {
        match from_engines
            .recv()
            .map_err(|_| DcapeError::Disconnected("engines hung up during merge".into()))?
        {
            FromEngine::CleanupDone {
                engine,
                runtime_output: out,
                cleanup_output: missed,
                spill_count,
                cleanup_cost_ms,
                journal: engine_journal,
                journal_counters: engine_counters,
            } => {
                runtime_output += out;
                cleanup_output += missed;
                cleanup_wall_ms = cleanup_wall_ms.max(cleanup_cost_ms);
                spill_counts[engine.index()] = spill_count;
                engine_journals.push(engine_journal);
                // Spills happen engine-side here (unlike the sim's
                // mirror); fold the engines' I/O volumes and ring
                // accounting into the cluster-wide totals. The chaos
                // counters fold too: engines inject faults on the
                // edges they send (Ptv, InstallStates, TransferAck).
                journal_counters.spill_bytes += engine_counters.spill_bytes;
                journal_counters.events_recorded += engine_counters.events_recorded;
                journal_counters.events_dropped += engine_counters.events_dropped;
                journal_counters.faults_injected += engine_counters.faults_injected;
                journal_counters.msgs_retried += engine_counters.msgs_retried;
                journal_counters.rounds_aborted += engine_counters.rounds_aborted;
                journal_counters.watermark_released_on_abort +=
                    engine_counters.watermark_released_on_abort;
                remaining -= 1;
            }
            other => {
                return Err(DcapeError::protocol(format!(
                    "unexpected message during merge: {other:?}"
                )))
            }
        }
    }
    for h in handles {
        h.join()
            .map_err(|_| DcapeError::Disconnected("engine thread panicked".into()))?;
    }

    let merged = if cfg.journal {
        engine_journals.push(journal.snapshot());
        merge_journals(engine_journals)
    } else {
        Vec::new()
    };
    if let Some(c) = journal.counters() {
        journal_counters.absorb(&c.snapshot());
    }

    Ok(ThreadedReport {
        runtime_output,
        cleanup_output,
        relocations,
        spill_counts,
        force_spills: gc.force_spills_issued(),
        cleanup_wall_ms,
        journal: merged,
        journal_counters,
    })
}

/// Release driver-held delayed control messages whose due time passed
/// (insertion order among equal due times — FIFO per channel does the
/// rest).
fn release_due(
    held: &mut HeldSends,
    now: VirtualTime,
    to_engines: &[Sender<ToEngine>],
) -> Result<()> {
    while let Some(idx) = held
        .iter()
        .enumerate()
        .filter(|(_, (due, _, _))| now >= *due)
        .min_by_key(|(i, (due, _, _))| (*due, *i))
        .map(|(i, _)| i)
    {
        let (_, engine, msg) = held.remove(idx);
        to_engines[engine.index()]
            .send(msg)
            .map_err(|_| DcapeError::Disconnected(format!("engine {engine} channel closed")))?;
    }
    Ok(())
}

/// Put a coordinator-originated control message (`Cptv`, `SendStates`)
/// on the wire through the fault plan: deliver, drop, duplicate, delay
/// or garble it per the seeded schedule.
#[allow(clippy::too_many_arguments)]
fn chaos_send(
    plan: &FaultPlan,
    journal: &JournalHandle,
    now: VirtualTime,
    edge: FaultEdge,
    round: u64,
    attempt: u32,
    target: EngineId,
    make: impl Fn() -> ToEngine,
    to_engines: &[Sender<ToEngine>],
    held: &mut HeldSends,
) -> Result<()> {
    let send = |m: ToEngine| -> Result<()> {
        to_engines[target.index()]
            .send(m)
            .map_err(|_| DcapeError::Disconnected(format!("engine {target} channel closed")))
    };
    match edge_decision(plan, journal, now, edge, round, attempt) {
        FaultDecision::Deliver => send(make()),
        // A garbled control message is discarded on receipt — same
        // outcome as a drop; the phase timeout re-sends it.
        FaultDecision::Drop | FaultDecision::CorruptLength => Ok(()),
        FaultDecision::Duplicate => {
            send(make())?;
            send(make())
        }
        FaultDecision::Delay(ms) => {
            held.push((now + VirtualDuration::from_millis(ms), target, make()));
            Ok(())
        }
    }
}

/// Execute a phase-timeout recovery decision: re-send the phase's
/// message (again through the fault plan — a retry can be unlucky
/// twice) or unwind the round.
#[allow(clippy::too_many_arguments)]
fn handle_timeout_action(
    action: TimeoutAction,
    placement: &mut PlacementMap,
    to_engines: &[Sender<ToEngine>],
    journal: &JournalHandle,
    now: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    let send = |e: EngineId, m: ToEngine| -> Result<()> {
        to_engines[e.index()]
            .send(m)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };
    match action {
        TimeoutAction::RetryCptv {
            round,
            sender,
            amount,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::Cptv,
            round,
            attempt,
            sender,
            || ToEngine::Cptv {
                round,
                amount,
                attempt,
            },
            to_engines,
            held,
        ),
        TimeoutAction::RetrySendStates {
            round,
            sender,
            receiver,
            parts,
            attempt,
        } => chaos_send(
            plan,
            journal,
            now,
            FaultEdge::SendStates,
            round,
            attempt,
            sender,
            || ToEngine::SendStates {
                round,
                parts: parts.clone(),
                receiver,
                attempt,
            },
            to_engines,
            held,
        ),
        TimeoutAction::AbortRound {
            round,
            sender,
            receiver,
            parts,
            held_since,
        } => {
            // Any delayed copies of this round's control messages are
            // moot — the engines treat them as stale if they do land,
            // but don't even bother releasing them.
            held.retain(|(_, _, m)| {
                !matches!(m,
                    ToEngine::Cptv { round: r, .. } | ToEngine::SendStates { round: r, .. }
                    if *r == round)
            });
            // Abort notifications ride the reliable channel (an abort
            // that can be lost is not an abort protocol). FIFO order:
            // the sender reinstalls its retained copy before any
            // replayed tuple reaches it.
            send(receiver, ToEngine::AbortRound { round })?;
            send(sender, ToEngine::AbortRound { round })?;
            if !parts.is_empty() {
                // Release without remapping: ownership never changed,
                // so the buffered tuples replay to the original owner.
                let released = placement.release_paused(&parts)?;
                let mut buffered = 0u64;
                if batch_mode {
                    let mut flush = TupleBatch::new();
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            flush.push(pid, tuple);
                        }
                    }
                    if !flush.is_empty() {
                        send(sender, ToEngine::DataBatch { tuples: flush })?;
                    }
                } else {
                    for (pid, tuples) in released {
                        buffered += tuples.len() as u64;
                        for tuple in tuples {
                            send(sender, ToEngine::Data { pid, tuple })?;
                        }
                    }
                }
                journal.sub_buffered_in_flight(buffered);
                journal.add_replayed_in_order(buffered);
                if let Some(held_at) = held_since {
                    journal
                        .add_watermark_held_ms(now.as_millis().saturating_sub(held_at.as_millis()));
                }
                journal.add_watermark_released_on_abort(1);
            }
            Ok(())
        }
    }
}

/// Coordinator-side message handling (shared by the run loop and the
/// quiesce loop).
#[allow(clippy::too_many_arguments)]
fn handle_coordinator_msg(
    msg: FromEngine,
    gc: &mut GlobalCoordinator,
    placement: &mut PlacementMap,
    to_engines: &[Sender<ToEngine>],
    pending_stats: &mut [Option<dcape_engine::stats::EngineStatsReport>],
    awaiting_stats: &mut bool,
    relocations: &mut u64,
    journal: &JournalHandle,
    now: VirtualTime,
    watermark: VirtualTime,
    batch_mode: bool,
    plan: &FaultPlan,
    held: &mut HeldSends,
) -> Result<()> {
    let send = |e: EngineId, m: ToEngine| -> Result<()> {
        to_engines[e.index()]
            .send(m)
            .map_err(|_| DcapeError::Disconnected(format!("engine {e} channel closed")))
    };
    match msg {
        FromEngine::Stats(report) => {
            let idx = report.engine.index();
            pending_stats[idx] = Some(report);
            if *awaiting_stats && pending_stats.iter().all(Option::is_some) {
                *awaiting_stats = false;
                let stats = ClusterStats::new(pending_stats.iter().flatten().copied().collect());
                match gc.evaluate(&stats, now)? {
                    Decision::None => {}
                    Decision::ForceSpill { engine, amount } => {
                        send(engine, ToEngine::StartSpill { amount })?;
                    }
                    Decision::Relocate { sender, .. } => {
                        let (round, s, _r, amount) =
                            gc.active_round_info().expect("round just opened");
                        debug_assert_eq!(s, sender);
                        chaos_send(
                            plan,
                            journal,
                            now,
                            FaultEdge::Cptv,
                            round,
                            0,
                            sender,
                            || ToEngine::Cptv {
                                round,
                                amount,
                                attempt: 0,
                            },
                            to_engines,
                            held,
                        )?;
                    }
                }
            }
            Ok(())
        }
        FromEngine::Ptv {
            round,
            engine,
            parts,
        } => match gc.on_ptv(engine, round, parts, now)? {
            // Stale or duplicated Ptv: already journaled. If its round
            // is gone and the engine is not the sender of a live one, a
            // Resume stops it idling in relocation mode after a late
            // Cptv re-entered it.
            None => {
                let active_sender = gc.active_round_info().map(|(_, s, _, _)| s);
                if active_sender != Some(engine) {
                    send(engine, ToEngine::Resume { round, watermark })?;
                }
                Ok(())
            }
            // Aborted rounds paused nothing, so the full admitted
            // watermark is already safe to release.
            Some(Action::Abort) => send(engine, ToEngine::Resume { round, watermark }),
            Some(Action::PauseAndTransfer {
                parts,
                sender,
                receiver,
            }) => {
                placement.pause(&parts)?;
                journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round,
                        step: 3,
                        sender,
                        receiver,
                        parts: parts.clone(),
                        bytes: 0,
                        buffered_tuples: 0,
                        load_ratio: 0.0,
                    },
                );
                let attempt = gc.current_attempt();
                chaos_send(
                    plan,
                    journal,
                    now,
                    FaultEdge::SendStates,
                    round,
                    attempt,
                    sender,
                    || ToEngine::SendStates {
                        round,
                        parts: parts.clone(),
                        receiver,
                        attempt,
                    },
                    to_engines,
                    held,
                )
            }
            Some(Action::RemapAndResume { .. }) => {
                Err(DcapeError::protocol("remap action out of order"))
            }
        },
        FromEngine::TransferAck {
            round,
            engine,
            bytes,
        } => {
            // Capture the pair before the ack closes the round.
            let sender = gc.active_round_info().map(|(_, s, ..)| s).unwrap_or(engine);
            match gc.on_transfer_ack(engine, round, now)? {
                // Stale or duplicated ack: already journaled; nothing
                // to execute (and nothing to double-count).
                None => Ok(()),
                Some(Action::RemapAndResume {
                    parts,
                    receiver,
                    held_since,
                }) => {
                    journal.add_relocation_bytes(bytes);
                    // Step 7: flush the split-side buffers to the new
                    // owner — as one batch in batch mode (per-pid lists
                    // arrive in order; batching is a stable reordering).
                    let released = placement.remap_and_release(&parts, receiver)?;
                    let mut buffered = 0u64;
                    if batch_mode {
                        let mut flush = TupleBatch::new();
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                flush.push(pid, tuple);
                            }
                        }
                        if !flush.is_empty() {
                            send(receiver, ToEngine::DataBatch { tuples: flush })?;
                        }
                    } else {
                        for (pid, tuples) in released {
                            buffered += tuples.len() as u64;
                            for tuple in tuples {
                                send(receiver, ToEngine::Data { pid, tuple })?;
                            }
                        }
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 7,
                            sender,
                            receiver,
                            parts,
                            bytes: 0,
                            buffered_tuples: buffered,
                            load_ratio: 0.0,
                        },
                    );
                    journal.sub_buffered_in_flight(buffered);
                    journal.add_replayed_in_order(buffered);
                    journal.add_watermark_held_ms(
                        now.as_millis().saturating_sub(held_since.as_millis()),
                    );
                    *relocations += 1;
                    // Step 8: resume both parties, releasing the held
                    // purge watermark. Every replayed tuple was sent
                    // (FIFO) before this Resume and every later arrival
                    // carries `ts >= watermark`, so engines may catch
                    // their window purge up to `watermark` on receipt.
                    // The sender is derivable from the completed
                    // round's parts' previous owner; we broadcast
                    // Resume — engines ignore stale rounds.
                    for (i, _) in to_engines.iter().enumerate() {
                        send(EngineId(i as u16), ToEngine::Resume { round, watermark })?;
                    }
                    journal.record(
                        now,
                        AdaptEvent::RelocationStep {
                            round,
                            step: 8,
                            sender,
                            receiver,
                            parts: Vec::new(),
                            bytes: 0,
                            buffered_tuples: 0,
                            load_ratio: 0.0,
                        },
                    );
                    Ok(())
                }
                other => Err(DcapeError::protocol(format!(
                    "unexpected action after ack: {other:?}"
                ))),
            }
        }
        FromEngine::CleanupReady { .. } | FromEngine::CleanupDone { .. } => {
            Err(DcapeError::protocol("cleanup message before shutdown"))
        }
    }
}

/// The engine thread body.
/// The engine thread's counting sink, honoring `SimConfig::count_first`:
/// either the span-based fast path (product counting / window pruning)
/// or the per-combination enumerating baseline, so the two arms can be
/// benchmarked and proven equivalent on the threaded driver too.
#[derive(Debug)]
enum EngineSink {
    CountFirst(CountingSink),
    PerCombination(EnumeratingSink<CountingSink>),
}

impl EngineSink {
    fn new(count_first: bool) -> Self {
        if count_first {
            EngineSink::CountFirst(CountingSink::new())
        } else {
            EngineSink::PerCombination(EnumeratingSink(CountingSink::new()))
        }
    }

    fn count(&self) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.count(),
            EngineSink::PerCombination(s) => s.0.count(),
        }
    }
}

impl ResultSink for EngineSink {
    #[inline]
    fn emit(&mut self, parts: &[&dcape_common::tuple::Tuple]) {
        match self {
            EngineSink::CountFirst(s) => s.emit(parts),
            EngineSink::PerCombination(s) => s.emit(parts),
        }
    }

    #[inline]
    fn emit_product(&mut self, spans: &ProbeSpans<'_, '_>) -> u64 {
        match self {
            EngineSink::CountFirst(s) => s.emit_product(spans),
            EngineSink::PerCombination(s) => s.emit_product(spans),
        }
    }
}

/// An engine-held message the chaos layer delayed; released once a
/// `Tick` advances the engine's virtual clock past the due time.
enum Held {
    ToGc(FromEngine),
    ToPeer(usize, ToEngine),
}

/// Release engine-held delayed messages that are due (insertion order
/// among equal due times).
fn release_engine_held(
    held: &mut Vec<(VirtualTime, Held)>,
    now: VirtualTime,
    to_gc: &Sender<FromEngine>,
    peers: &[Sender<ToEngine>],
) {
    while let Some(idx) = held
        .iter()
        .enumerate()
        .filter(|(_, (due, _))| now >= *due)
        .min_by_key(|(i, (due, _))| (*due, *i))
        .map(|(i, _)| i)
    {
        match held.remove(idx).1 {
            Held::ToGc(m) => {
                let _ = to_gc.send(m);
            }
            Held::ToPeer(target, m) => {
                let _ = peers[target].send(m);
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn engine_main(
    id: EngineId,
    cfg: dcape_engine::config::EngineConfig,
    rx: Receiver<ToEngine>,
    to_gc: Sender<FromEngine>,
    peers: Vec<Sender<ToEngine>>,
    journal_on: bool,
    count_first: bool,
    plan: FaultPlan,
) {
    let mut qe = match QueryEngine::in_memory(id, cfg) {
        Ok(qe) => qe,
        Err(e) => panic!("engine {id} failed to start: {e}"),
    };
    if journal_on {
        qe.set_journal(JournalHandle::enabled());
    }
    let mut sink = EngineSink::new(count_first);
    let mut last_now = VirtualTime::ZERO;
    let mut held: Vec<(VirtualTime, Held)> = Vec::new();
    for msg in rx.iter() {
        let result: Result<bool> = (|| {
            match msg {
                ToEngine::Data { pid, tuple } => {
                    qe.process(pid, tuple, &mut sink)?;
                }
                ToEngine::DataBatch { tuples } => {
                    qe.process_batch(tuples, &mut sink)?;
                }
                ToEngine::Tick { now, horizon } => {
                    last_now = now;
                    release_engine_held(&mut held, now, &to_gc, &peers);
                    qe.tick_with_horizon(now, horizon)?;
                }
                ToEngine::ReportStats { now } => {
                    last_now = now;
                    let report = qe.report(now);
                    let _ = to_gc.send(FromEngine::Stats(report));
                }
                ToEngine::Cptv {
                    round,
                    amount,
                    attempt,
                } => {
                    if qe.is_stale_round(round) {
                        qe.journal().record(
                            last_now,
                            AdaptEvent::ProtocolWarning {
                                code: "stale_cptv",
                                engine: id,
                                round,
                                detail: 1,
                            },
                        );
                    } else {
                        qe.set_mode(Mode::Relocation);
                        let parts = qe.select_parts_to_move(amount);
                        // Step 2 rides the faultable Ptv edge: the
                        // coordinator's phase timeout covers a lost
                        // reply by re-issuing Cptv with a new attempt.
                        match edge_decision(
                            &plan,
                            qe.journal(),
                            last_now,
                            FaultEdge::Ptv,
                            round,
                            attempt,
                        ) {
                            FaultDecision::Deliver => {
                                let _ = to_gc.send(FromEngine::Ptv {
                                    round,
                                    engine: id,
                                    parts,
                                });
                            }
                            FaultDecision::Drop | FaultDecision::CorruptLength => {}
                            FaultDecision::Duplicate => {
                                let _ = to_gc.send(FromEngine::Ptv {
                                    round,
                                    engine: id,
                                    parts: parts.clone(),
                                });
                                let _ = to_gc.send(FromEngine::Ptv {
                                    round,
                                    engine: id,
                                    parts,
                                });
                            }
                            FaultDecision::Delay(ms) => held.push((
                                last_now + VirtualDuration::from_millis(ms),
                                Held::ToGc(FromEngine::Ptv {
                                    round,
                                    engine: id,
                                    parts,
                                }),
                            )),
                        }
                    }
                }
                ToEngine::SendStates {
                    round,
                    parts,
                    receiver,
                    attempt,
                } => {
                    if qe.is_stale_round(round) {
                        qe.journal().record(
                            last_now,
                            AdaptEvent::ProtocolWarning {
                                code: "stale_send_states",
                                engine: id,
                                round,
                                detail: 4,
                            },
                        );
                        return Ok(true);
                    }
                    let fresh = !qe.outbound_pending(round);
                    let groups_raw = qe.begin_outbound(round, &parts);
                    let bytes: u64 = groups_raw
                        .iter()
                        .map(|(g, _, _)| g.state_bytes() as u64)
                        .sum();
                    if fresh {
                        // Journal the extraction once; retries re-ship
                        // the retained copy and must not inflate the
                        // relocation volume.
                        qe.journal().record(
                            last_now,
                            AdaptEvent::RelocationStep {
                                round,
                                step: 4,
                                sender: id,
                                receiver,
                                parts: parts.clone(),
                                bytes,
                                buffered_tuples: 0,
                                load_ratio: 0.0,
                            },
                        );
                        qe.journal().add_relocation_bytes(bytes);
                    }
                    // A stall keeps the transfer from landing for a
                    // while; a delay fault adds on top of it.
                    let mut declared_bytes = bytes;
                    let mut delay_ms = plan.stall_ms(FaultEdge::InstallStates, round, attempt);
                    if delay_ms > 0 {
                        qe.journal().add_faults_injected(1);
                        qe.journal().record(
                            last_now,
                            AdaptEvent::FaultInjected {
                                fault: "stall",
                                edge: FaultEdge::InstallStates.name(),
                                round,
                                attempt,
                            },
                        );
                    }
                    let mut copies = 1u32;
                    match edge_decision(
                        &plan,
                        qe.journal(),
                        last_now,
                        FaultEdge::InstallStates,
                        round,
                        attempt,
                    ) {
                        FaultDecision::Deliver => {}
                        FaultDecision::Drop => copies = 0,
                        FaultDecision::CorruptLength => {
                            declared_bytes = FaultPlan::corrupt_length(bytes);
                        }
                        FaultDecision::Delay(ms) => delay_ms += ms,
                        FaultDecision::Duplicate => copies = 2,
                    }
                    for _ in 0..copies {
                        let groups: Vec<GroupTransfer> = groups_raw
                            .iter()
                            .cloned()
                            .map(|(snapshot, output_count, purge_protect)| GroupTransfer {
                                snapshot,
                                output_count,
                                purge_protect,
                            })
                            .collect();
                        let m = ToEngine::InstallStates {
                            round,
                            sender: id,
                            groups,
                            attempt,
                            declared_bytes,
                        };
                        if delay_ms > 0 {
                            held.push((
                                last_now + VirtualDuration::from_millis(delay_ms),
                                Held::ToPeer(receiver.index(), m),
                            ));
                        } else {
                            let _ = peers[receiver.index()].send(m);
                        }
                    }
                }
                ToEngine::InstallStates {
                    round,
                    sender,
                    groups,
                    attempt,
                    declared_bytes,
                } => {
                    let bytes: u64 = groups.iter().map(|g| g.snapshot.state_bytes() as u64).sum();
                    // Corrupt-length detection: recompute the payload
                    // size, discard on mismatch and send no ack — the
                    // sender's phase timeout re-sends the transfer.
                    if declared_bytes != bytes {
                        qe.journal().record(
                            last_now,
                            AdaptEvent::ProtocolWarning {
                                code: "corrupt_transfer_discarded",
                                engine: id,
                                round,
                                detail: declared_bytes,
                            },
                        );
                        return Ok(true);
                    }
                    if plan.crash_during_install(round, attempt) {
                        qe.journal().add_faults_injected(1);
                        qe.journal().record(
                            last_now,
                            AdaptEvent::FaultInjected {
                                fault: "crash_restart",
                                edge: FaultEdge::InstallStates.name(),
                                round,
                                attempt,
                            },
                        );
                        qe.crash_restart()?;
                        return Ok(true);
                    }
                    qe.set_mode(Mode::Relocation);
                    let parts: Vec<PartitionId> =
                        groups.iter().map(|g| g.snapshot.partition).collect();
                    let installed = qe.install_groups_for_round(
                        round,
                        groups
                            .into_iter()
                            .map(|g| (g.snapshot, g.output_count, g.purge_protect))
                            .collect(),
                    )?;
                    if installed {
                        qe.journal().record(
                            last_now,
                            AdaptEvent::RelocationStep {
                                round,
                                step: 5,
                                sender,
                                receiver: id,
                                parts,
                                bytes,
                                buffered_tuples: 0,
                                load_ratio: 0.0,
                            },
                        );
                    } else {
                        // Duplicate (or stale) install: a no-op, but
                        // the ack must still go out — the first one
                        // may have been lost.
                        qe.journal().record(
                            last_now,
                            AdaptEvent::ProtocolWarning {
                                code: "duplicate_install",
                                engine: id,
                                round,
                                detail: 5,
                            },
                        );
                        if qe.is_stale_round(round) {
                            qe.set_mode(Mode::Normal);
                        }
                    }
                    match edge_decision(
                        &plan,
                        qe.journal(),
                        last_now,
                        FaultEdge::TransferAck,
                        round,
                        attempt,
                    ) {
                        FaultDecision::Deliver => {
                            let _ = to_gc.send(FromEngine::TransferAck {
                                round,
                                engine: id,
                                bytes,
                            });
                        }
                        FaultDecision::Drop | FaultDecision::CorruptLength => {}
                        FaultDecision::Duplicate => {
                            for _ in 0..2 {
                                let _ = to_gc.send(FromEngine::TransferAck {
                                    round,
                                    engine: id,
                                    bytes,
                                });
                            }
                        }
                        FaultDecision::Delay(ms) => held.push((
                            last_now + VirtualDuration::from_millis(ms),
                            Held::ToGc(FromEngine::TransferAck {
                                round,
                                engine: id,
                                bytes,
                            }),
                        )),
                    }
                }
                ToEngine::AbortRound { round } => {
                    // Retries exhausted: unwind whichever side of the
                    // round this engine played. The sender reinstalls
                    // its retained copy (this message precedes any
                    // replayed tuples on the same FIFO channel); the
                    // receiver discards the uncommitted installation.
                    let discarded = qe.abort_inbound(round)?;
                    let reinstalled = qe.abort_outbound(round)?;
                    qe.journal().record(
                        last_now,
                        AdaptEvent::ProtocolWarning {
                            code: "round_unwound",
                            engine: id,
                            round,
                            detail: (discarded + reinstalled) as u64,
                        },
                    );
                    qe.set_mode(Mode::Normal);
                }
                ToEngine::Resume { round, watermark } => {
                    // The round completed: the sender drops its
                    // retained copy, the receiver makes the
                    // installation permanent, and both close the round
                    // so stragglers become stale no-ops.
                    qe.commit_outbound(round);
                    qe.commit_inbound(round);
                    qe.set_mode(Mode::Normal);
                    // Catch-up purge: the round's replay (if any) sits
                    // earlier in this FIFO inbox, so it has been
                    // processed; everything arriving later carries
                    // `ts >= watermark`. Purge-only — no spill-trigger
                    // side effects between protocol steps.
                    qe.purge_at(watermark);
                }
                ToEngine::StartSpill { amount } => {
                    qe.force_spill(amount, last_now)?;
                }
                ToEngine::PrepareCleanup { owners } => {
                    // Forward segments of partitions owned elsewhere.
                    let mut forwarded = 0usize;
                    for pid in qe.spilled_partitions() {
                        let owner = owners
                            .get(pid.index())
                            .copied()
                            .ok_or_else(|| DcapeError::state(format!("no owner for {pid}")))?;
                        if owner == id {
                            continue;
                        }
                        let segments = qe.take_spilled_segments(pid)?;
                        forwarded += segments.len();
                        let _ = peers[owner.index()]
                            .send(ToEngine::ForwardedSegments { pid, segments });
                    }
                    let _ = to_gc.send(FromEngine::CleanupReady {
                        engine: id,
                        forwarded,
                    });
                }
                ToEngine::ForwardedSegments { segments, .. } => {
                    qe.import_segments(segments)?;
                }
                ToEngine::StartCleanup => {
                    // Local parallel merge over owned partitions.
                    let mut sink = EngineSink::new(count_first);
                    let report = qe.cleanup(&mut sink)?;
                    let _ = to_gc.send(FromEngine::CleanupDone {
                        engine: id,
                        runtime_output: qe.total_output(),
                        cleanup_output: sink.count(),
                        spill_count: qe.spill_history().len() as u64,
                        cleanup_cost_ms: report.virtual_cost.as_millis(),
                        journal: qe.journal().snapshot(),
                        journal_counters: qe
                            .journal()
                            .counters()
                            .map(|c| c.snapshot())
                            .unwrap_or_default(),
                    });
                    return Ok(false);
                }
            }
            Ok(true)
        })();
        match result {
            Ok(true) => {}
            Ok(false) => break,
            Err(e) => panic!("engine {id} failed: {e}"),
        }
    }
}
