//! The protocol vocabulary between the global coordinator (GC) and the
//! query engines (QE).
//!
//! The relocation messages realize the 8-step sequence of Figure 8:
//!
//! 1. GC → sender: [`ToEngine::Cptv`] — compute partitions to vacate;
//! 2. sender → GC: [`FromEngine::Ptv`] — the chosen partition list;
//! 3. GC → split host: pause &amp; buffer the affected partitions
//!    (handled by [`crate::placement::PlacementMap::pause`]);
//! 4. GC → sender: [`ToEngine::SendStates`];
//! 5. sender → receiver: [`ToEngine::InstallStates`] — the state
//!    transfer itself;
//! 6. receiver → GC: [`FromEngine::TransferAck`];
//! 7. GC → split host: remap &amp; flush buffered tuples
//!    ([`crate::placement::PlacementMap::remap_and_release`]);
//! 8. GC → sender &amp; receiver: [`ToEngine::Resume`] — exit `sr_mode`.
//!
//! The same enums carry the data path ([`ToEngine::Data`]), the periodic
//! statistics ([`FromEngine::Stats`]) and the active-disk strategy's
//! forced-spill command ([`ToEngine::StartSpill`]), so the threaded
//! runtime runs the entire system over two channel types.

use dcape_common::batch::TupleBatch;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;
use dcape_engine::stats::EngineStatsReport;
use dcape_metrics::journal::{CountersSnapshot, JournalEntry};
use dcape_storage::SpilledGroup;

/// A relocated partition group in flight: snapshot plus carried
/// `P_output` so the receiver resumes productivity accounting.
#[derive(Debug, Clone)]
pub struct GroupTransfer {
    /// The group's content.
    pub snapshot: SpilledGroup,
    /// Carried cumulative output count.
    pub output_count: u64,
    /// Cluster-wide purge protection: the sender holds disk-resident
    /// spill segments for this partition (or inherited protection from
    /// an earlier relocation), so the receiver must never window-purge
    /// the group's memory tuples — they still owe cross-slice cleanup
    /// results against segments living on another engine.
    pub purge_protect: bool,
}

/// Messages delivered *to* a query engine.
#[derive(Debug)]
pub enum ToEngine {
    /// One routed data tuple for the given partition.
    Data {
        /// Target partition.
        pid: PartitionId,
        /// The tuple.
        tuple: Tuple,
    },
    /// A whole tick's worth of routed tuples for this engine — the
    /// batched data path. Semantically identical to a sequence of
    /// [`ToEngine::Data`] messages in batch order, but one channel send
    /// per engine per tick.
    DataBatch {
        /// The routed tuples, in arrival order.
        tuples: TupleBatch,
    },
    /// Step 1: compute partitions to vacate worth `amount` bytes.
    Cptv {
        /// Relocation round id.
        round: u64,
        /// Bytes to vacate.
        amount: u64,
        /// Delivery attempt (0 on first send; bumped per retry). Keys
        /// the chaos layer's per-edge fault decisions.
        attempt: u32,
    },
    /// Step 4: extract the listed partitions and ship them to
    /// `receiver`.
    SendStates {
        /// Relocation round id.
        round: u64,
        /// Partitions to move.
        parts: Vec<PartitionId>,
        /// Destination engine.
        receiver: EngineId,
        /// Delivery attempt (0 on first send; bumped per retry).
        attempt: u32,
    },
    /// Step 5: install these relocated groups (sender → receiver).
    InstallStates {
        /// Relocation round id.
        round: u64,
        /// Originating engine (journaled by the receiver).
        sender: EngineId,
        /// The groups.
        groups: Vec<GroupTransfer>,
        /// Delivery attempt, inherited from the driving `SendStates`.
        attempt: u32,
        /// Byte length the sender declares for `groups`. The receiver
        /// recomputes and discards the transfer on mismatch (the chaos
        /// layer's corrupt-length fault), forcing a retry.
        declared_bytes: u64,
    },
    /// Abort an in-flight relocation round after retries were
    /// exhausted: the sender reinstalls its retained outbound copy, the
    /// receiver discards any uncommitted installation, and both leave
    /// relocation mode. Ownership never changed, so the split's
    /// buffered tuples replay to the original owner; a `Resume` follows
    /// the replay to release the held watermark (commit/abort
    /// notifications ride the reliable channel — see
    /// `dcape-cluster::faults`).
    AbortRound {
        /// The aborted round id.
        round: u64,
    },
    /// Step 8: the relocation round is over; return to normal mode.
    ///
    /// Carries the purge watermark that was held back while the round's
    /// partitions sat paused at the splits: every buffered tuple has
    /// been replayed (in timestamp order, ahead of post-resume
    /// arrivals), so engines may now catch up their window purge to
    /// `watermark`.
    Resume {
        /// Relocation round id.
        round: u64,
        /// The released purge horizon — safe to purge up to this time.
        watermark: VirtualTime,
    },
    /// Active-disk force spill (`start_ss`, Algorithm 2).
    StartSpill {
        /// Bytes to spill.
        amount: u64,
    },
    /// Ask for a statistics report (the threaded runtime's `sr_timer`).
    ReportStats {
        /// Virtual timestamp to stamp the report with.
        now: VirtualTime,
    },
    /// Drive the engine's local `ss_timer` (threaded runtime pulse).
    Tick {
        /// Current virtual time (drives spill checks and stats).
        now: VirtualTime,
        /// Watermark-driven purge horizon: `min(admitted watermark,
        /// oldest timestamp still buffered in-flight at any split)`.
        /// While a relocation holds tuples paused at the splits this
        /// lags `now`, deferring window purges until replay lands.
        horizon: VirtualTime,
    },
    /// Distributed cleanup, phase 1: end of input. Forward every
    /// locally-spilled segment whose partition is owned elsewhere to
    /// its owner (per the enclosed final placement), then report
    /// readiness.
    PrepareCleanup {
        /// Final owner of every partition (index = partition id).
        owners: Vec<EngineId>,
    },
    /// Distributed cleanup: segments forwarded from a peer for a
    /// partition this engine owns.
    ForwardedSegments {
        /// The partition.
        pid: PartitionId,
        /// The peer's segments, in its local spill order.
        segments: Vec<SpilledGroup>,
    },
    /// Distributed cleanup, phase 2: every engine is ready — run the
    /// local merge for owned partitions, report, and stop.
    StartCleanup,
    /// Elastic drain: enter drain mode and report resident state. Rides
    /// the reliable channel (never faulted) and is idempotent — the
    /// coordinator re-sends it after every drain round to poll
    /// progress, and the engine always answers with a fresh
    /// [`FromEngine::DrainState`].
    BeginDrain,
    /// Elastic membership: `engine` is fenced (draining or drained).
    /// Receivers must never ship relocation state toward it; a stale or
    /// chaos-delayed `SendStates` naming it as receiver is dropped with
    /// a `send_to_fenced_dropped` warning instead of re-populating the
    /// drained engine.
    FenceNotice {
        /// The fenced engine.
        engine: EngineId,
    },
}

/// Messages delivered *from* a query engine to the coordinator.
#[derive(Debug)]
pub enum FromEngine {
    /// Step 2: the partitions this engine chose to vacate.
    Ptv {
        /// Relocation round id.
        round: u64,
        /// Sender engine.
        engine: EngineId,
        /// Chosen partitions.
        parts: Vec<PartitionId>,
    },
    /// Step 6: the receiver installed the transferred state.
    TransferAck {
        /// Relocation round id.
        round: u64,
        /// Receiving engine.
        engine: EngineId,
        /// Accounted bytes installed.
        bytes: u64,
    },
    /// Periodic statistics report.
    Stats(EngineStatsReport),
    /// Distributed cleanup: this engine has forwarded all non-owned
    /// segments and is ready for the merge phase.
    CleanupReady {
        /// Reporting engine.
        engine: EngineId,
        /// Segments forwarded to peers.
        forwarded: usize,
    },
    /// Distributed cleanup: the engine's local merge finished; final
    /// counters.
    CleanupDone {
        /// Reporting engine.
        engine: EngineId,
        /// Results produced during the run-time phase.
        runtime_output: u64,
        /// Missing results produced by this engine's local merge.
        cleanup_output: u64,
        /// Spill operations this engine performed.
        spill_count: u64,
        /// Modeled virtual cost of the local merge (ms).
        cleanup_cost_ms: u64,
        /// The engine's adaptation-event journal (empty when journaling
        /// is off).
        journal: Vec<JournalEntry>,
        /// The engine's final journal counters.
        journal_counters: CountersSnapshot,
    },
    /// Elastic drain: answer to [`ToEngine::BeginDrain`] — how much
    /// relocatable state the draining engine still holds in memory. The
    /// coordinator plans the next drain round from this (fresher than
    /// the periodic stats), finalizes the drain at zero, or degrades to
    /// a forced spill when rounds keep aborting.
    DrainState {
        /// The draining engine.
        engine: EngineId,
        /// In-memory state bytes still resident.
        resident_bytes: u64,
    },
    /// Elastic join: the engine process/thread is up and connected
    /// (sent once at startup). The coordinator defers rebalance moves
    /// toward a scheduled joiner until its `JoinReady` arrives.
    JoinReady {
        /// The joining engine.
        engine: EngineId,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_variants_construct_and_debug() {
        let m = ToEngine::Cptv {
            round: 1,
            amount: 1024,
            attempt: 0,
        };
        assert!(format!("{m:?}").contains("Cptv"));
        let m = ToEngine::AbortRound { round: 2 };
        assert!(format!("{m:?}").contains("AbortRound"));
        let m = FromEngine::Ptv {
            round: 1,
            engine: EngineId(0),
            parts: vec![PartitionId(3)],
        };
        assert!(format!("{m:?}").contains("Ptv"));
        let g = GroupTransfer {
            snapshot: SpilledGroup::empty(PartitionId(1), 3),
            output_count: 42,
            purge_protect: false,
        };
        assert_eq!(g.output_count, 42);
        let m = ToEngine::Tick {
            now: VirtualTime::from_millis(100),
            horizon: VirtualTime::from_millis(40),
        };
        assert!(format!("{m:?}").contains("horizon"));
    }
}
