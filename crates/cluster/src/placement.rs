//! The partition placement map and the split operators' buffering.
//!
//! Every split operator routes each tuple to the engine owning the
//! tuple's partition (§2, Figure 2). During a relocation round the
//! affected partitions are *paused*: "all tuples belonging to the
//! partition groups affected by the current adaptation process which
//! arrive during a state relocation process are temporarily buffered …
//! later, when the adaptation process is over, all buffered tuples are
//! redirected to the stateful operators based on the new partition group
//! mapping" (§4.1). [`PlacementMap`] implements exactly that contract.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashMap;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;

/// How partitions are initially distributed over engines.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// Round-robin: partition `i` goes to engine `i mod n`.
    RoundRobin,
    /// Consecutive blocks sized by per-engine fractions (must sum to
    /// ≈1.0). Figure 11 uses `[0.6, 0.2, 0.2]`; Figure 12 `[2/3, 1/6,
    /// 1/6]`.
    Fractions(Vec<f64>),
}

impl PlacementSpec {
    /// Materialize the initial owner of every partition.
    pub fn assign(&self, num_partitions: u32, num_engines: usize) -> Result<Vec<EngineId>> {
        if num_engines == 0 {
            return Err(DcapeError::config("need at least one engine"));
        }
        if num_engines > u16::MAX as usize {
            return Err(DcapeError::config("too many engines"));
        }
        match self {
            PlacementSpec::RoundRobin => Ok((0..num_partitions)
                .map(|i| EngineId((i as usize % num_engines) as u16))
                .collect()),
            PlacementSpec::Fractions(fractions) => {
                if fractions.len() != num_engines {
                    return Err(DcapeError::config("fraction count must equal engine count"));
                }
                let total: f64 = fractions.iter().sum();
                if !(0.99..=1.01).contains(&total) {
                    return Err(DcapeError::config(format!(
                        "fractions sum to {total}, expected 1.0"
                    )));
                }
                let n = num_partitions as usize;
                let mut owners = Vec::with_capacity(n);
                for (e, f) in fractions.iter().enumerate() {
                    let count = if e == num_engines - 1 {
                        n - owners.len()
                    } else {
                        ((n as f64) * f).round() as usize
                    };
                    for _ in 0..count.min(n - owners.len()) {
                        owners.push(EngineId(e as u16));
                    }
                }
                while owners.len() < n {
                    owners.push(EngineId((num_engines - 1) as u16));
                }
                Ok(owners)
            }
        }
    }
}

/// The live partition → engine map, including pause/buffer state for
/// in-flight relocations and the elastic membership (engines can join
/// after construction, and draining engines are *fenced*: still owners
/// of what they hold, but never the target of a remap).
#[derive(Debug)]
pub struct PlacementMap {
    owners: Vec<EngineId>,
    /// Buffered tuples per paused partition, in arrival order.
    paused: FxHashMap<PartitionId, Vec<Tuple>>,
    /// Oldest timestamp of any tuple currently buffered at a paused
    /// split — the split-side contribution to the purge watermark.
    /// `None` when nothing is buffered.
    oldest_buffered: Option<VirtualTime>,
    /// Per-engine fenced flag (index = engine id). Grows with
    /// [`PlacementMap::add_engine`].
    fenced: Vec<bool>,
    version: u64,
}

/// Routing verdict for one tuple.
#[derive(Debug, PartialEq, Eq)]
pub enum Route {
    /// Deliver the tuple to the owning engine.
    Deliver(EngineId, Tuple),
    /// The partition is paused; the tuple was buffered at the split.
    Buffered,
}

impl PlacementMap {
    /// Build from a spec.
    pub fn new(spec: &PlacementSpec, num_partitions: u32, num_engines: usize) -> Result<Self> {
        Ok(PlacementMap {
            owners: spec.assign(num_partitions, num_engines)?,
            paused: FxHashMap::default(),
            oldest_buffered: None,
            fenced: vec![false; num_engines],
            version: 0,
        })
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> u32 {
        self.owners.len() as u32
    }

    /// Number of engines ever admitted (initial set plus joins; fenced
    /// and drained engines keep their slot — ids are never reused).
    pub fn num_engines(&self) -> usize {
        self.fenced.len()
    }

    /// Admit a new engine: it gets the next dense id, owns nothing, and
    /// is unfenced. The rebalancing planner moves state toward it via
    /// ordinary relocation rounds.
    pub fn add_engine(&mut self) -> Result<EngineId> {
        if self.fenced.len() >= u16::MAX as usize {
            return Err(DcapeError::config("too many engines"));
        }
        let id = EngineId(self.fenced.len() as u16);
        self.fenced.push(false);
        self.version += 1;
        Ok(id)
    }

    /// Fence an engine (start of a drain): it may keep shedding the
    /// partitions it owns, but no remap may ever target it again.
    /// Fencing twice is a no-op.
    pub fn fence_engine(&mut self, engine: EngineId) -> Result<()> {
        let slot = self
            .fenced
            .get_mut(engine.index())
            .ok_or_else(|| DcapeError::state(format!("unknown engine {engine}")))?;
        if !*slot {
            *slot = true;
            self.version += 1;
        }
        Ok(())
    }

    /// Whether `engine` is fenced (unknown engines read as fenced: they
    /// must never be a placement target either).
    pub fn is_fenced(&self, engine: EngineId) -> bool {
        self.fenced.get(engine.index()).copied().unwrap_or(true)
    }

    /// Engines currently eligible as placement targets (unfenced),
    /// ascending.
    pub fn unfenced_engines(&self) -> Vec<EngineId> {
        self.fenced
            .iter()
            .enumerate()
            .filter(|(_, f)| !**f)
            .map(|(i, _)| EngineId(i as u16))
            .collect()
    }

    /// Current owner of a partition.
    pub fn owner(&self, pid: PartitionId) -> Result<EngineId> {
        self.owners
            .get(pid.index())
            .copied()
            .ok_or_else(|| DcapeError::state(format!("unknown partition {pid}")))
    }

    /// All partitions owned by `engine`, sorted.
    pub fn partitions_of(&self, engine: EngineId) -> Vec<PartitionId> {
        self.owners
            .iter()
            .enumerate()
            .filter(|(_, &e)| e == engine)
            .map(|(i, _)| PartitionId(i as u32))
            .collect()
    }

    /// Map version — bumped on every remap (diagnostics).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Route one tuple: buffer if its partition is paused, otherwise
    /// hand the tuple back with its owning engine.
    pub fn route(&mut self, pid: PartitionId, tuple: Tuple) -> Result<Route> {
        let owner = self.owner(pid)?;
        if let Some(buf) = self.paused.get_mut(&pid) {
            self.oldest_buffered = Some(match self.oldest_buffered {
                Some(t) => t.min(tuple.ts()),
                None => tuple.ts(),
            });
            buf.push(tuple);
            return Ok(Route::Buffered);
        }
        Ok(Route::Deliver(owner, tuple))
    }

    /// Oldest timestamp still buffered at any paused split, if any.
    pub fn oldest_buffered_ts(&self) -> Option<VirtualTime> {
        self.oldest_buffered
    }

    /// The watermark-driven purge horizon: the admitted watermark `now`,
    /// clamped by the oldest tuple still buffered in-flight at any
    /// split. Purging at this horizon can never drop a join partner of
    /// a tuple that has yet to be delivered: buffered tuples replay
    /// ahead of any purge pulse stamped later than them, and the
    /// generator's timestamps are nondecreasing, so every future
    /// delivery carries `ts >= horizon`.
    pub fn purge_horizon(&self, now: VirtualTime) -> VirtualTime {
        match self.oldest_buffered {
            Some(t) => t.min(now),
            None => now,
        }
    }

    /// Pause the given partitions (start of a relocation round).
    /// Pausing an already-paused partition is a protocol error; the
    /// call validates everything before mutating, so a rejected pause
    /// never clobbers an existing buffer.
    pub fn pause(&mut self, pids: &[PartitionId]) -> Result<()> {
        for pid in pids {
            if pid.index() >= self.owners.len() {
                return Err(DcapeError::state(format!("unknown partition {pid}")));
            }
            if self.paused.contains_key(pid) {
                return Err(DcapeError::protocol(format!(
                    "partition {pid} paused twice"
                )));
            }
        }
        for pid in pids {
            self.paused.insert(*pid, Vec::new());
        }
        Ok(())
    }

    /// Finish a relocation round: reassign the partitions to
    /// `new_owner`, unpause them, and return the buffered tuples (in
    /// arrival order) for redelivery under the new mapping.
    pub fn remap_and_release(
        &mut self,
        pids: &[PartitionId],
        new_owner: EngineId,
    ) -> Result<Vec<(PartitionId, Vec<Tuple>)>> {
        // Validate first so the map never ends half-updated.
        if self.is_fenced(new_owner) {
            return Err(DcapeError::protocol(format!(
                "remap targets fenced engine {new_owner}"
            )));
        }
        for pid in pids {
            if pid.index() >= self.owners.len() {
                return Err(DcapeError::state(format!("unknown partition {pid}")));
            }
            if !self.paused.contains_key(pid) {
                return Err(DcapeError::protocol(format!(
                    "partition {pid} released without pause"
                )));
            }
        }
        let mut released = Vec::with_capacity(pids.len());
        for pid in pids {
            self.owners[pid.index()] = new_owner;
            let buffered = self.paused.remove(pid).expect("validated above");
            released.push((*pid, buffered));
        }
        // Recompute the held watermark over whatever remains buffered
        // (buffers are arrival-ordered with nondecreasing timestamps,
        // so each buffer's minimum is its first element).
        self.oldest_buffered = self
            .paused
            .values()
            .filter_map(|buf| buf.first())
            .map(Tuple::ts)
            .min();
        self.version += 1;
        Ok(released)
    }

    /// Abort a relocation round: unpause the partitions **without**
    /// changing ownership and return the buffered tuples (in arrival
    /// order) for redelivery to the original owner. The mirror of
    /// [`PlacementMap::remap_and_release`] for the abort path — the
    /// held watermark is re-derived and released exactly the same way,
    /// only the owner reassignment is skipped.
    pub fn release_paused(
        &mut self,
        pids: &[PartitionId],
    ) -> Result<Vec<(PartitionId, Vec<Tuple>)>> {
        for pid in pids {
            if pid.index() >= self.owners.len() {
                return Err(DcapeError::state(format!("unknown partition {pid}")));
            }
            if !self.paused.contains_key(pid) {
                return Err(DcapeError::protocol(format!(
                    "partition {pid} released without pause"
                )));
            }
        }
        let mut released = Vec::with_capacity(pids.len());
        for pid in pids {
            let buffered = self.paused.remove(pid).expect("validated above");
            released.push((*pid, buffered));
        }
        self.oldest_buffered = self
            .paused
            .values()
            .filter_map(|buf| buf.first())
            .map(Tuple::ts)
            .min();
        self.version += 1;
        Ok(released)
    }

    /// Currently paused partitions (sorted, for assertions).
    pub fn paused_partitions(&self) -> Vec<PartitionId> {
        let mut pids: Vec<PartitionId> = self.paused.keys().copied().collect();
        pids.sort_unstable();
        pids
    }

    /// Count of partitions per engine (index = engine id).
    pub fn distribution(&self, num_engines: usize) -> Vec<usize> {
        let mut counts = vec![0usize; num_engines];
        for e in &self.owners {
            counts[e.index()] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::ids::StreamId;
    use dcape_common::tuple::TupleBuilder;

    fn tuple(seq: u64) -> Tuple {
        TupleBuilder::new(StreamId(0)).seq(seq).value(1i64).build()
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let m = PlacementMap::new(&PlacementSpec::RoundRobin, 10, 3).unwrap();
        assert_eq!(m.distribution(3), vec![4, 3, 3]);
        assert_eq!(m.owner(PartitionId(4)).unwrap(), EngineId(1));
        assert_eq!(m.partitions_of(EngineId(0)).len(), 4);
    }

    #[test]
    fn fractions_claim_blocks() {
        let m = PlacementMap::new(&PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]), 100, 3).unwrap();
        assert_eq!(m.distribution(3), vec![60, 20, 20]);
        assert_eq!(m.owner(PartitionId(0)).unwrap(), EngineId(0));
        assert_eq!(m.owner(PartitionId(99)).unwrap(), EngineId(2));
    }

    #[test]
    fn bad_fractions_rejected() {
        assert!(PlacementMap::new(&PlacementSpec::Fractions(vec![0.5, 0.2]), 10, 2).is_err());
        assert!(PlacementMap::new(&PlacementSpec::Fractions(vec![0.5]), 10, 2).is_err());
        assert!(PlacementMap::new(&PlacementSpec::RoundRobin, 10, 0).is_err());
    }

    #[test]
    fn route_delivers_or_buffers() {
        let mut m = PlacementMap::new(&PlacementSpec::RoundRobin, 4, 2).unwrap();
        match m.route(PartitionId(1), tuple(0)).unwrap() {
            Route::Deliver(e, t) => {
                assert_eq!(e, EngineId(1));
                assert_eq!(t.seq(), 0);
            }
            other => panic!("expected delivery, got {other:?}"),
        }
        m.pause(&[PartitionId(1)]).unwrap();
        assert_eq!(m.route(PartitionId(1), tuple(1)).unwrap(), Route::Buffered);
        assert!(
            matches!(
                m.route(PartitionId(0), tuple(2)).unwrap(),
                Route::Deliver(e, _) if e == EngineId(0)
            ),
            "unpaused partitions keep flowing during relocation"
        );
        assert_eq!(m.paused_partitions(), vec![PartitionId(1)]);
    }

    #[test]
    fn remap_releases_buffered_in_order_and_bumps_version() {
        let mut m = PlacementMap::new(&PlacementSpec::RoundRobin, 4, 2).unwrap();
        m.pause(&[PartitionId(1), PartitionId(3)]).unwrap();
        m.route(PartitionId(1), tuple(10)).unwrap();
        m.route(PartitionId(1), tuple(11)).unwrap();
        m.route(PartitionId(3), tuple(12)).unwrap();
        let v0 = m.version();
        let released = m
            .remap_and_release(&[PartitionId(1), PartitionId(3)], EngineId(0))
            .unwrap();
        assert_eq!(m.version(), v0 + 1);
        assert_eq!(m.owner(PartitionId(1)).unwrap(), EngineId(0));
        assert_eq!(m.owner(PartitionId(3)).unwrap(), EngineId(0));
        let p1 = released.iter().find(|(p, _)| *p == PartitionId(1)).unwrap();
        assert_eq!(
            p1.1.iter().map(|t| t.seq()).collect::<Vec<_>>(),
            vec![10, 11]
        );
        assert!(m.paused_partitions().is_empty());
    }

    #[test]
    fn purge_horizon_clamps_to_oldest_buffered_and_releases() {
        let ts_tuple = |seq: u64, ms: u64| {
            TupleBuilder::new(StreamId(0))
                .seq(seq)
                .ts(VirtualTime::from_millis(ms))
                .value(1i64)
                .build()
        };
        let mut m = PlacementMap::new(&PlacementSpec::RoundRobin, 4, 2).unwrap();
        let now = VirtualTime::from_millis(500);
        // Nothing buffered: the horizon is the admitted watermark.
        assert_eq!(m.oldest_buffered_ts(), None);
        assert_eq!(m.purge_horizon(now), now);
        m.pause(&[PartitionId(1), PartitionId(3)]).unwrap();
        // Still nothing buffered right after the pause.
        assert_eq!(m.purge_horizon(now), now);
        m.route(PartitionId(1), ts_tuple(0, 120)).unwrap();
        m.route(PartitionId(3), ts_tuple(1, 90)).unwrap();
        m.route(PartitionId(1), ts_tuple(2, 200)).unwrap();
        // The horizon is held at the oldest buffered timestamp.
        assert_eq!(m.oldest_buffered_ts(), Some(VirtualTime::from_millis(90)));
        assert_eq!(m.purge_horizon(now), VirtualTime::from_millis(90));
        // Releasing one partition re-derives the hold from the rest.
        m.remap_and_release(&[PartitionId(3)], EngineId(0)).unwrap();
        assert_eq!(m.oldest_buffered_ts(), Some(VirtualTime::from_millis(120)));
        // Releasing everything clears the hold entirely.
        m.remap_and_release(&[PartitionId(1)], EngineId(0)).unwrap();
        assert_eq!(m.oldest_buffered_ts(), None);
        assert_eq!(m.purge_horizon(now), now);
    }

    #[test]
    fn release_paused_keeps_owner_and_frees_watermark() {
        let ts_tuple = |seq: u64, ms: u64| {
            TupleBuilder::new(StreamId(0))
                .seq(seq)
                .ts(VirtualTime::from_millis(ms))
                .value(1i64)
                .build()
        };
        let mut m = PlacementMap::new(&PlacementSpec::RoundRobin, 4, 2).unwrap();
        let original = m.owner(PartitionId(1)).unwrap();
        m.pause(&[PartitionId(1)]).unwrap();
        m.route(PartitionId(1), ts_tuple(0, 100)).unwrap();
        m.route(PartitionId(1), ts_tuple(1, 150)).unwrap();
        let v0 = m.version();
        let released = m.release_paused(&[PartitionId(1)]).unwrap();
        // Owner unchanged, buffer returned in arrival order, watermark
        // hold released, version bumped.
        assert_eq!(m.owner(PartitionId(1)).unwrap(), original);
        assert_eq!(
            released[0].1.iter().map(|t| t.seq()).collect::<Vec<_>>(),
            vec![0, 1]
        );
        assert_eq!(m.oldest_buffered_ts(), None);
        assert!(m.paused_partitions().is_empty());
        assert_eq!(m.version(), v0 + 1);
        // Releasing an unpaused partition is still a protocol error.
        assert!(m.release_paused(&[PartitionId(1)]).is_err());
    }

    #[test]
    fn protocol_violations_detected() {
        let mut m = PlacementMap::new(&PlacementSpec::RoundRobin, 4, 2).unwrap();
        m.pause(&[PartitionId(1)]).unwrap();
        assert!(m.pause(&[PartitionId(1)]).is_err(), "double pause");
        assert!(
            m.remap_and_release(&[PartitionId(2)], EngineId(0)).is_err(),
            "release without pause"
        );
        assert!(m.route(PartitionId(99), tuple(0)).is_err());
        assert!(m.owner(PartitionId(99)).is_err());
    }
}
