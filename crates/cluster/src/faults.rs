//! Deterministic, seeded fault injection for the relocation and
//! spill-cleanup protocols.
//!
//! A [`FaultPlan`] is built from a `u64` seed plus [`FaultConfig`]
//! rates. Both runtimes consult it at every protocol message edge and
//! ask: what happens to *this* message on *this* delivery attempt?
//! The answer — deliver, drop, duplicate, delay, corrupt the declared
//! length — is a **pure function** of `(seed, edge, round, attempt)`:
//! each decision seeds its own [`StdRng`] from a hash of that identity,
//! so the schedule cannot depend on thread interleaving, wall-clock
//! time, or the order in which the runtimes happen to consult the plan.
//! Same seed ⇒ same fault schedule, bit for bit, on both runtimes.
//!
//! ## Fault-model boundary
//!
//! Only the *forward path* of the 8-step relocation protocol is
//! faultable: Cptv (step 1), Ptv (step 2), SendStates (step 3/4
//! trigger), InstallStates (step 5) and TransferAck (step 6). The
//! commit/abort notifications (step 7–8 Resume, AbortRound) plus data,
//! stats and cleanup traffic model a *reliable* channel — a commit
//! message retried without bound is indistinguishable from reliable
//! delivery, and faulting it would only re-test the same retry
//! machinery while making the exactly-once oracle unverifiable. Engine
//! failure is modelled separately: [`FaultPlan::crash_during_install`]
//! kills the receiving engine after state is shipped but before the
//! ack (the paper's worst case — state is in flight on a dead node),
//! and [`FaultPlan::stall_ms`] freezes an engine mid-relocation or
//! mid-spill-cleanup for a bounded virtual duration.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Protocol message edges the chaos layer can interfere with.
///
/// `CleanupSegments` is stall-only: cleanup forwarding rides the
/// reliable channel (see the module docs), but an engine can still be
/// frozen while it merges spilled segments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultEdge {
    /// Step 1: coordinator asks the sender to choose partitions.
    Cptv,
    /// Step 2: sender reports its chosen partitions.
    Ptv,
    /// Step 3/4 trigger: coordinator tells the sender to extract/ship.
    SendStates,
    /// Step 5: the state transfer itself, sender → receiver.
    InstallStates,
    /// Step 6: receiver acknowledges the installed transfer.
    TransferAck,
    /// Spill-cleanup segment forwarding (stall-only edge).
    CleanupSegments,
}

impl FaultEdge {
    /// Stable snake_case name used in journal events.
    pub fn name(self) -> &'static str {
        match self {
            FaultEdge::Cptv => "cptv",
            FaultEdge::Ptv => "ptv",
            FaultEdge::SendStates => "send_states",
            FaultEdge::InstallStates => "install_states",
            FaultEdge::TransferAck => "transfer_ack",
            FaultEdge::CleanupSegments => "cleanup_segments",
        }
    }

    /// Hash domain separating this edge's decision stream from every
    /// other edge's.
    fn domain(self) -> u64 {
        match self {
            FaultEdge::Cptv => 0x01,
            FaultEdge::Ptv => 0x02,
            FaultEdge::SendStates => 0x03,
            FaultEdge::InstallStates => 0x04,
            FaultEdge::TransferAck => 0x05,
            FaultEdge::CleanupSegments => 0x06,
        }
    }
}

/// What the plan decided for one message delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Deliver normally.
    Deliver,
    /// The message is lost in transit.
    Drop,
    /// The message arrives twice (retransmit storm / dup in the fabric).
    Duplicate,
    /// The message arrives late, after the given extra virtual
    /// milliseconds — late enough messages reorder behind newer ones.
    Delay(u64),
    /// The message arrives with a corrupted declared byte length; the
    /// receiver detects the mismatch and discards it like a drop.
    CorruptLength,
}

impl FaultDecision {
    /// Journal name for the injected fault (`Deliver` has none).
    pub fn fault_name(self) -> Option<&'static str> {
        match self {
            FaultDecision::Deliver => None,
            FaultDecision::Drop => Some("drop"),
            FaultDecision::Duplicate => Some("duplicate"),
            FaultDecision::Delay(_) => Some("delay"),
            FaultDecision::CorruptLength => Some("corrupt_length"),
        }
    }
}

/// Per-edge fault rates, each in `[0, 1]`. At most one fault fires per
/// `(edge, round, attempt)` — the rates partition a single uniform
/// draw, so `drop + duplicate + delay + corrupt` must stay ≤ 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability a message is dropped.
    pub drop_rate: f64,
    /// Probability a message is duplicated.
    pub duplicate_rate: f64,
    /// Probability a message is delayed (possibly reordering it).
    pub delay_rate: f64,
    /// Probability a transfer's declared length is corrupted.
    pub corrupt_rate: f64,
    /// Probability the receiving engine crash-restarts mid-install
    /// (state shipped, ack never sent).
    pub crash_rate: f64,
    /// Probability an engine stalls at a stall-capable edge.
    pub stall_rate: f64,
    /// Upper bound (inclusive) on injected delay/stall, virtual ms.
    pub max_delay_ms: u64,
}

impl FaultConfig {
    /// All-zero rates: every decision is `Deliver`, nothing crashes.
    pub fn none() -> Self {
        FaultConfig {
            drop_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            corrupt_rate: 0.0,
            crash_rate: 0.0,
            stall_rate: 0.0,
            max_delay_ms: 0,
        }
    }

    /// The single-knob config behind `repro --fault-rate R`: message
    /// faults share `rate` equally across drop/duplicate/delay/corrupt,
    /// engines crash at a quarter of it and stall at half of it.
    pub fn uniform(rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&rate),
            "fault rate must be in [0, 1], got {rate}"
        );
        FaultConfig {
            drop_rate: rate / 4.0,
            duplicate_rate: rate / 4.0,
            delay_rate: rate / 4.0,
            corrupt_rate: rate / 4.0,
            crash_rate: rate / 4.0,
            stall_rate: rate / 2.0,
            max_delay_ms: 500,
        }
    }

    fn message_rate_sum(&self) -> f64 {
        self.drop_rate + self.duplicate_rate + self.delay_rate + self.corrupt_rate
    }

    /// True if any rate can ever fire a fault.
    pub fn is_active(&self) -> bool {
        self.message_rate_sum() > 0.0 || self.crash_rate > 0.0 || self.stall_rate > 0.0
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Collapse `(seed, domain, round, attempt)` into one well-mixed RNG
/// seed. Chained SplitMix64 finalizers with golden-ratio injection per
/// field: flipping any input bit flips ~half the output bits, so
/// adjacent rounds/attempts land in unrelated decision streams.
fn edge_key(seed: u64, domain: u64, round: u64, attempt: u32) -> u64 {
    let mut h = mix(seed ^ domain.wrapping_mul(GOLDEN));
    h = mix(h ^ round.wrapping_mul(GOLDEN));
    mix(h ^ (attempt as u64).wrapping_mul(GOLDEN))
}

/// The seeded fault schedule. Cheap to clone (plain `Copy` data); both
/// runtimes and every engine thread can hold one and will agree on
/// every decision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Build the schedule for `seed` with the given rates.
    pub fn new(seed: u64, cfg: FaultConfig) -> Self {
        assert!(
            cfg.message_rate_sum() <= 1.0 + 1e-9,
            "message fault rates must sum to at most 1"
        );
        FaultPlan { seed, cfg }
    }

    /// A plan that never injects anything (the default for both
    /// runtimes; every consultation short-circuits to `Deliver`).
    pub fn disabled() -> Self {
        FaultPlan::new(0, FaultConfig::none())
    }

    /// The seed this schedule was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rates.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.cfg.is_active()
    }

    /// What happens to the message on `edge` for relocation `round`,
    /// delivery `attempt` (first send is attempt 0; each retry bumps
    /// it, so a retried message gets a fresh decision and a round
    /// cannot be doomed forever).
    pub fn decide(&self, edge: FaultEdge, round: u64, attempt: u32) -> FaultDecision {
        if !self.is_active() {
            return FaultDecision::Deliver;
        }
        let mut rng = StdRng::seed_from_u64(edge_key(self.seed, edge.domain(), round, attempt));
        let x: f64 = rng.gen();
        let mut bound = self.cfg.drop_rate;
        if x < bound {
            return FaultDecision::Drop;
        }
        bound += self.cfg.duplicate_rate;
        if x < bound {
            return FaultDecision::Duplicate;
        }
        bound += self.cfg.delay_rate;
        if x < bound {
            let ms = if self.cfg.max_delay_ms == 0 {
                0
            } else {
                rng.gen_range(1..self.cfg.max_delay_ms + 1)
            };
            return FaultDecision::Delay(ms);
        }
        bound += self.cfg.corrupt_rate;
        if x < bound {
            return FaultDecision::CorruptLength;
        }
        FaultDecision::Deliver
    }

    /// Whether the *receiving* engine crash-restarts mid-install on
    /// this `(round, attempt)`: state was shipped and installed, the
    /// restart wipes the uncommitted installation, and the ack is never
    /// sent. Keyed by attempt so a retried transfer can succeed.
    pub fn crash_during_install(&self, round: u64, attempt: u32) -> bool {
        if self.cfg.crash_rate <= 0.0 {
            return false;
        }
        let mut rng = StdRng::seed_from_u64(edge_key(self.seed, 0x10, round, attempt));
        rng.gen_bool(self.cfg.crash_rate)
    }

    /// Extra virtual milliseconds the engine freezes at a stall-capable
    /// edge (0 = no stall). Used mid-relocation (install processing)
    /// and mid-spill-cleanup (segment merging).
    pub fn stall_ms(&self, edge: FaultEdge, round: u64, attempt: u32) -> u64 {
        if self.cfg.stall_rate <= 0.0 || self.cfg.max_delay_ms == 0 {
            return 0;
        }
        let mut rng =
            StdRng::seed_from_u64(edge_key(self.seed, 0x20 ^ edge.domain(), round, attempt));
        if rng.gen_bool(self.cfg.stall_rate) {
            rng.gen_range(1..self.cfg.max_delay_ms + 1)
        } else {
            0
        }
    }

    /// Corrupt a declared transfer length the way the fabric would:
    /// deterministically, as a function of the true length.
    pub fn corrupt_length(true_bytes: u64) -> u64 {
        true_bytes ^ 0xBAD0_BAD0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGES: [FaultEdge; 6] = [
        FaultEdge::Cptv,
        FaultEdge::Ptv,
        FaultEdge::SendStates,
        FaultEdge::InstallStates,
        FaultEdge::TransferAck,
        FaultEdge::CleanupSegments,
    ];

    fn schedule(plan: &FaultPlan) -> Vec<FaultDecision> {
        let mut out = Vec::new();
        for edge in EDGES {
            for round in 0..32u64 {
                for attempt in 0..4u32 {
                    out.push(plan.decide(edge, round, attempt));
                }
            }
        }
        out
    }

    #[test]
    fn same_seed_same_schedule_bit_for_bit() {
        let cfg = FaultConfig::uniform(0.3);
        let a = FaultPlan::new(42, cfg);
        let b = FaultPlan::new(42, cfg);
        assert_eq!(schedule(&a), schedule(&b));
        for round in 0..32 {
            for attempt in 0..4 {
                assert_eq!(
                    a.crash_during_install(round, attempt),
                    b.crash_during_install(round, attempt)
                );
                assert_eq!(
                    a.stall_ms(FaultEdge::CleanupSegments, round, attempt),
                    b.stall_ms(FaultEdge::CleanupSegments, round, attempt)
                );
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_identity() {
        let plan = FaultPlan::new(7, FaultConfig::uniform(0.5));
        // Consultation order must not matter: interleave two orders.
        let forward = schedule(&plan);
        let mut reversed = Vec::new();
        for edge in EDGES.iter().rev() {
            for round in (0..32u64).rev() {
                for attempt in (0..4u32).rev() {
                    reversed.push(plan.decide(*edge, round, attempt));
                }
            }
        }
        reversed.reverse();
        // Rebuild forward order from the reversed walk.
        let mut rebuilt = vec![FaultDecision::Deliver; forward.len()];
        let mut i = 0;
        for (e_i, _) in EDGES.iter().enumerate() {
            for round in 0..32usize {
                for attempt in 0..4usize {
                    let fwd_idx = e_i * 32 * 4 + round * 4 + attempt;
                    rebuilt[fwd_idx] = reversed[i];
                    i += 1;
                }
            }
        }
        assert_eq!(forward, rebuilt);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = FaultConfig::uniform(0.4);
        let a = schedule(&FaultPlan::new(1, cfg));
        let b = schedule(&FaultPlan::new(2, cfg));
        assert_ne!(a, b);
    }

    #[test]
    fn disabled_plan_never_faults() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for d in schedule(&plan) {
            assert_eq!(d, FaultDecision::Deliver);
        }
        for round in 0..64 {
            assert!(!plan.crash_during_install(round, 0));
            assert_eq!(plan.stall_ms(FaultEdge::InstallStates, round, 0), 0);
        }
    }

    #[test]
    fn rates_partition_a_single_draw() {
        // drop_rate = 1 ⇒ everything drops; no other fault can fire.
        let all_drop = FaultPlan::new(
            9,
            FaultConfig {
                drop_rate: 1.0,
                ..FaultConfig::none()
            },
        );
        for d in schedule(&all_drop) {
            assert_eq!(d, FaultDecision::Drop);
        }
        // Sum > 1 is rejected.
        let bad = FaultConfig {
            drop_rate: 0.6,
            duplicate_rate: 0.6,
            ..FaultConfig::none()
        };
        assert!(std::panic::catch_unwind(|| FaultPlan::new(0, bad)).is_err());
    }

    #[test]
    fn observed_fault_fraction_tracks_rate() {
        let plan = FaultPlan::new(11, FaultConfig::uniform(0.4));
        let decisions = schedule(&plan);
        let faults = decisions
            .iter()
            .filter(|d| d.fault_name().is_some())
            .count();
        let frac = faults as f64 / decisions.len() as f64;
        assert!(
            (0.25..0.55).contains(&frac),
            "expected ~0.4 fault fraction, got {frac}"
        );
    }

    #[test]
    fn delay_bounded_and_nonzero() {
        let plan = FaultPlan::new(
            3,
            FaultConfig {
                delay_rate: 1.0,
                max_delay_ms: 250,
                ..FaultConfig::none()
            },
        );
        for d in schedule(&plan) {
            match d {
                FaultDecision::Delay(ms) => assert!((1..=250).contains(&ms)),
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn retried_attempts_get_fresh_decisions() {
        // With a 50% drop rate, some (edge, round) must see attempt 0
        // dropped but a later attempt delivered — the keying by attempt
        // is what keeps a doomed round from staying doomed.
        let plan = FaultPlan::new(
            5,
            FaultConfig {
                drop_rate: 0.5,
                ..FaultConfig::none()
            },
        );
        let mut recovered = false;
        for round in 0..64u64 {
            if plan.decide(FaultEdge::InstallStates, round, 0) == FaultDecision::Drop {
                recovered |= (1..4u32).any(|a| {
                    plan.decide(FaultEdge::InstallStates, round, a) == FaultDecision::Deliver
                });
            }
        }
        assert!(recovered, "no dropped message ever recovered on retry");
    }

    #[test]
    fn corrupt_length_is_detectable_and_reversible() {
        for bytes in [0u64, 1, 4096, u64::MAX] {
            let bad = FaultPlan::corrupt_length(bytes);
            assert_ne!(bad, bytes);
            assert_eq!(FaultPlan::corrupt_length(bad), bytes);
        }
    }
}
