//! Coordinator-side state machine for one relocation round (Figure 8).
//!
//! The global coordinator drives each relocation through a strict
//! sequence of phases; any out-of-order event is a protocol error, which
//! is exactly the property the paper's protocol exists to guarantee
//! ("no operator states should be missing or corrupted in the relocation
//! process", §4.1). The machine is pure — it consumes events and emits
//! the next commands — so both the simulated and the threaded runtime
//! reuse it, and it is unit-testable without any concurrency.

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;

/// Phases of one relocation round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Phase {
    /// Step 1 sent; waiting for the sender's partition list (step 2).
    WaitPtv,
    /// Steps 3–5 issued: partitions paused, transfer under way; waiting
    /// for the receiver's ack (step 6).
    WaitAck,
    /// Steps 7–8 done; the round is complete.
    Done,
}

/// Commands the coordinator must issue next, as returned by the state
/// machine's transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Pause the listed partitions at the splits (step 3), then tell
    /// the sender to ship them to the receiver (steps 4–5).
    PauseAndTransfer {
        /// Partitions to pause and move.
        parts: Vec<PartitionId>,
        /// Sender engine.
        sender: EngineId,
        /// Receiver engine.
        receiver: EngineId,
    },
    /// Remap the partitions to the receiver, flush buffered tuples
    /// (step 7), and send both parties `Resume` (step 8).
    RemapAndResume {
        /// Moved partitions.
        parts: Vec<PartitionId>,
        /// Their new owner.
        receiver: EngineId,
        /// When the partitions were paused (step 3) — i.e. since when
        /// the purge watermark has been held back for this round. The
        /// driver journals `now - held_since` as `watermark_held_ms`.
        held_since: VirtualTime,
    },
    /// The sender had nothing to move (e.g. everything already spilled);
    /// abort the round and resume immediately.
    Abort,
}

/// Why a relocation round was opened. The 8-step protocol is identical
/// for all three; the purpose only changes the coordinator's accounting
/// (drain-round abort counting, `rebalance_moves`) and journaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundPurpose {
    /// Ordinary load-balancing round chosen by the adaptation strategy.
    Balance,
    /// Elastic drain: shedding state off a fenced engine.
    Drain,
    /// Elastic join: moving state toward a freshly-admitted engine.
    JoinRebalance,
}

/// One in-flight relocation round.
#[derive(Debug)]
pub struct RelocationRound {
    round: u64,
    sender: EngineId,
    receiver: EngineId,
    amount: u64,
    purpose: RoundPurpose,
    parts: Vec<PartitionId>,
    phase: Phase,
    /// Virtual time of step 3 (partitions paused at the splits).
    paused_at: VirtualTime,
}

impl RelocationRound {
    /// Begin a round: the coordinator has already sent `Cptv(amount)`
    /// to the sender (step 1).
    pub fn begin(round: u64, sender: EngineId, receiver: EngineId, amount: u64) -> Result<Self> {
        Self::begin_with_purpose(round, sender, receiver, amount, RoundPurpose::Balance)
    }

    /// [`RelocationRound::begin`] with an explicit purpose (elastic
    /// drain / join-rebalance rounds).
    pub fn begin_with_purpose(
        round: u64,
        sender: EngineId,
        receiver: EngineId,
        amount: u64,
        purpose: RoundPurpose,
    ) -> Result<Self> {
        if sender == receiver {
            return Err(DcapeError::protocol(
                "relocation sender and receiver must differ",
            ));
        }
        Ok(RelocationRound {
            round,
            sender,
            receiver,
            amount,
            purpose,
            parts: Vec::new(),
            phase: Phase::WaitPtv,
            paused_at: VirtualTime::ZERO,
        })
    }

    /// Round id.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Why the round was opened.
    pub fn purpose(&self) -> RoundPurpose {
        self.purpose
    }

    /// The sender engine.
    pub fn sender(&self) -> EngineId {
        self.sender
    }

    /// The receiver engine.
    pub fn receiver(&self) -> EngineId {
        self.receiver
    }

    /// Bytes requested to move.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Current phase.
    pub fn phase(&self) -> &Phase {
        &self.phase
    }

    /// The partitions being moved (valid from step 2 onward).
    pub fn parts(&self) -> &[PartitionId] {
        &self.parts
    }

    /// When the round's partitions were paused at the splits (step 3);
    /// `VirtualTime::ZERO` before the pause happens.
    pub fn paused_at(&self) -> VirtualTime {
        self.paused_at
    }

    /// Step 2 arrived: the sender chose `parts`. `now` stamps the
    /// pause (step 3 follows immediately), marking when the purge
    /// watermark starts being held for this round.
    pub fn on_ptv(
        &mut self,
        from: EngineId,
        round: u64,
        parts: Vec<PartitionId>,
        now: VirtualTime,
    ) -> Result<Action> {
        self.expect_phase(Phase::WaitPtv, "ptv")?;
        self.expect_round(round, "ptv")?;
        if from != self.sender {
            return Err(DcapeError::protocol(format!(
                "ptv from {from}, expected sender {}",
                self.sender
            )));
        }
        if parts.is_empty() {
            self.phase = Phase::Done;
            return Ok(Action::Abort);
        }
        self.parts = parts.clone();
        self.phase = Phase::WaitAck;
        self.paused_at = now;
        Ok(Action::PauseAndTransfer {
            parts,
            sender: self.sender,
            receiver: self.receiver,
        })
    }

    /// Step 6 arrived: the receiver installed the state.
    pub fn on_transfer_ack(&mut self, from: EngineId, round: u64) -> Result<Action> {
        self.expect_phase(Phase::WaitAck, "transfer_ack")?;
        self.expect_round(round, "transfer_ack")?;
        if from != self.receiver {
            return Err(DcapeError::protocol(format!(
                "transfer_ack from {from}, expected receiver {}",
                self.receiver
            )));
        }
        self.phase = Phase::Done;
        Ok(Action::RemapAndResume {
            parts: self.parts.clone(),
            receiver: self.receiver,
            held_since: self.paused_at,
        })
    }

    /// Is the round finished?
    pub fn is_done(&self) -> bool {
        self.phase == Phase::Done
    }

    fn expect_phase(&self, expected: Phase, event: &str) -> Result<()> {
        if self.phase != expected {
            return Err(DcapeError::protocol(format!(
                "{event} in phase {:?} (expected {expected:?})",
                self.phase
            )));
        }
        Ok(())
    }

    fn expect_round(&self, round: u64, event: &str) -> Result<()> {
        if round != self.round {
            return Err(DcapeError::protocol(format!(
                "{event} for round {round}, active round is {}",
                self.round
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(ids: &[u32]) -> Vec<PartitionId> {
        ids.iter().map(|&i| PartitionId(i)).collect()
    }

    #[test]
    fn happy_path_walks_all_phases() {
        let mut r = RelocationRound::begin(7, EngineId(0), EngineId(1), 1000).unwrap();
        assert_eq!(*r.phase(), Phase::WaitPtv);
        assert_eq!(r.round(), 7);
        assert_eq!(r.amount(), 1000);

        let action = r
            .on_ptv(EngineId(0), 7, pids(&[3, 5]), VirtualTime::from_millis(250))
            .unwrap();
        assert_eq!(
            action,
            Action::PauseAndTransfer {
                parts: pids(&[3, 5]),
                sender: EngineId(0),
                receiver: EngineId(1),
            }
        );
        assert_eq!(*r.phase(), Phase::WaitAck);
        assert_eq!(r.parts(), pids(&[3, 5]).as_slice());

        let action = r.on_transfer_ack(EngineId(1), 7).unwrap();
        assert_eq!(
            action,
            Action::RemapAndResume {
                parts: pids(&[3, 5]),
                receiver: EngineId(1),
                held_since: VirtualTime::from_millis(250),
            }
        );
        assert!(r.is_done());
    }

    #[test]
    fn empty_ptv_aborts() {
        let mut r = RelocationRound::begin(1, EngineId(0), EngineId(1), 10).unwrap();
        assert_eq!(
            r.on_ptv(EngineId(0), 1, vec![], VirtualTime::ZERO).unwrap(),
            Action::Abort
        );
        assert!(r.is_done());
    }

    #[test]
    fn wrong_order_rejected() {
        let mut r = RelocationRound::begin(1, EngineId(0), EngineId(1), 10).unwrap();
        assert!(r.on_transfer_ack(EngineId(1), 1).is_err(), "ack before ptv");
        r.on_ptv(EngineId(0), 1, pids(&[1]), VirtualTime::ZERO)
            .unwrap();
        assert!(
            r.on_ptv(EngineId(0), 1, pids(&[1]), VirtualTime::ZERO)
                .is_err(),
            "double ptv"
        );
    }

    #[test]
    fn wrong_party_rejected() {
        let mut r = RelocationRound::begin(1, EngineId(0), EngineId(1), 10).unwrap();
        assert!(r
            .on_ptv(EngineId(1), 1, pids(&[1]), VirtualTime::ZERO)
            .is_err());
        r.on_ptv(EngineId(0), 1, pids(&[1]), VirtualTime::ZERO)
            .unwrap();
        assert!(r.on_transfer_ack(EngineId(0), 1).is_err());
    }

    #[test]
    fn wrong_round_rejected() {
        let mut r = RelocationRound::begin(2, EngineId(0), EngineId(1), 10).unwrap();
        assert!(r
            .on_ptv(EngineId(0), 3, pids(&[1]), VirtualTime::ZERO)
            .is_err());
    }

    #[test]
    fn self_relocation_rejected() {
        assert!(RelocationRound::begin(1, EngineId(0), EngineId(0), 10).is_err());
    }
}
