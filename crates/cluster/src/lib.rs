//! # dcape-cluster
//!
//! The distributed half of the reproduction: the global coordinator, the
//! 8-step state-relocation protocol, the integrated adaptation
//! strategies (lazy-disk / active-disk, §5), and two drivers that
//! execute a partitioned query over a set of engines:
//!
//! * [`runtime::sim`] — deterministic virtual-time driver used by the
//!   experiment harness (hour-long paper runs in seconds, identical
//!   engine/strategy code);
//! * [`runtime::threaded`] — one OS thread per query engine connected by
//!   crossbeam channels, exercising the full asynchronous message
//!   protocol, standing in for the paper's PC cluster;
//! * [`runtime::socket`] — one OS *process* per query engine, exchanging
//!   the same protocol as length-framed binary messages over TCP
//!   ([`wire`]), with crash-restart as real process kill + respawn.
//!
//! Supporting modules: [`placement`] (partition → engine map with the
//! split operator's pause/buffer behaviour), [`netmodel`] (virtual-time
//! transfer costs), [`stats`] (cluster-wide view of engine reports),
//! [`messages`] (the protocol vocabulary), [`relocation`] (the
//! coordinator-side protocol state machine), [`strategy`] and
//! [`coordinator`].

pub mod coordinator;
pub mod faults;
pub mod messages;
pub mod netmodel;
pub mod placement;
pub mod relocation;
pub mod runtime;
pub mod split;
pub mod stats;
pub mod strategy;
pub mod wire;

pub use coordinator::GlobalCoordinator;
pub use faults::{FaultConfig, FaultDecision, FaultEdge, FaultPlan};
pub use netmodel::NetworkModel;
pub use placement::{PlacementMap, PlacementSpec};
pub use runtime::sim::{SimConfig, SimDriver, SimReport};
pub use split::SplitOperator;
pub use stats::ClusterStats;
pub use strategy::{Decision, StrategyConfig};
