//! Cluster-wide view over per-engine statistics reports.
//!
//! The global coordinator's decisions (Algorithms 1–2) are expressed in
//! terms of `max_load` / `min_load` and `max_product` / `min_product`
//! over the latest report from every engine; [`ClusterStats`] provides
//! those reductions.

use dcape_common::ids::EngineId;
use dcape_engine::stats::EngineStatsReport;
use dcape_metrics::journal::AdaptEvent;

/// The latest report from every engine, indexed by engine id.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    reports: Vec<EngineStatsReport>,
}

impl ClusterStats {
    /// Build from one report per engine (any order; sorted internally).
    pub fn new(mut reports: Vec<EngineStatsReport>) -> Self {
        reports.sort_by_key(|r| r.engine);
        ClusterStats { reports }
    }

    /// All reports, sorted by engine.
    pub fn reports(&self) -> &[EngineStatsReport] {
        &self.reports
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if there are no reports.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Engine with the maximum memory used (`M_max`, the sender
    /// candidate). Ties break toward the lower engine id.
    pub fn max_load(&self) -> Option<&EngineStatsReport> {
        self.reports.iter().max_by(|a, b| {
            a.memory_used
                .cmp(&b.memory_used)
                .then(b.engine.cmp(&a.engine))
        })
    }

    /// Engine with the minimum memory used (`M_least`, the receiver
    /// candidate).
    pub fn min_load(&self) -> Option<&EngineStatsReport> {
        self.reports.iter().min_by(|a, b| {
            a.memory_used
                .cmp(&b.memory_used)
                .then(a.engine.cmp(&b.engine))
        })
    }

    /// `M_least / M_max`; 1.0 when the cluster is empty or idle.
    pub fn load_ratio(&self) -> f64 {
        match (self.min_load(), self.max_load()) {
            (Some(min), Some(max)) if max.memory_used > 0 => {
                min.memory_used as f64 / max.memory_used as f64
            }
            _ => 1.0,
        }
    }

    /// Engine with the maximum average productivity rate `R`.
    pub fn max_productivity(&self) -> Option<&EngineStatsReport> {
        self.reports.iter().max_by(|a, b| {
            a.avg_productivity_rate
                .partial_cmp(&b.avg_productivity_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.engine.cmp(&a.engine))
        })
    }

    /// Engine with the minimum average productivity rate `R`.
    pub fn min_productivity(&self) -> Option<&EngineStatsReport> {
        self.reports.iter().min_by(|a, b| {
            a.avg_productivity_rate
                .partial_cmp(&b.avg_productivity_rate)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.engine.cmp(&b.engine))
        })
    }

    /// `R_max / R_min`; 1.0 when undefined.
    pub fn productivity_ratio(&self) -> f64 {
        match (self.max_productivity(), self.min_productivity()) {
            (Some(max), Some(min)) if min.avg_productivity_rate > 0.0 => {
                max.avg_productivity_rate / min.avg_productivity_rate
            }
            (Some(max), Some(_min)) if max.avg_productivity_rate > 0.0 => f64::INFINITY,
            _ => 1.0,
        }
    }

    /// Report for a specific engine.
    pub fn engine(&self, id: EngineId) -> Option<&EngineStatsReport> {
        self.reports.iter().find(|r| r.engine == id)
    }

    /// Total memory used across the cluster.
    pub fn total_memory_used(&self) -> u64 {
        self.reports.iter().map(|r| r.memory_used).sum()
    }

    /// Total memory budget across the cluster (`M_cluster`).
    pub fn total_memory_budget(&self) -> u64 {
        self.reports.iter().map(|r| r.memory_budget).sum()
    }

    /// Total output across the cluster.
    pub fn total_output(&self) -> u64 {
        self.reports.iter().map(|r| r.total_output).sum()
    }

    /// Snapshot of the reductions the strategies read, as a journal
    /// event (recorded once per coordinator evaluation).
    pub fn sample_event(&self) -> AdaptEvent {
        AdaptEvent::StatsSample {
            engines: self.len() as u32,
            max_load: self.max_load().map_or(0.0, |r| r.memory_used as f64),
            min_load: self.min_load().map_or(0.0, |r| r.memory_used as f64),
            load_ratio: self.load_ratio(),
            productivity_ratio: self.productivity_ratio(),
            memory_used: self.total_memory_used(),
            // Unbounded engines report a budget of u64::MAX; saturate
            // instead of overflowing the cluster-wide sum.
            memory_budget: self
                .reports
                .iter()
                .fold(0u64, |acc, r| acc.saturating_add(r.memory_budget)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::time::VirtualTime;

    fn report(engine: u16, mem: u64, rate: f64) -> EngineStatsReport {
        EngineStatsReport {
            engine: EngineId(engine),
            at: VirtualTime::ZERO,
            memory_used: mem,
            memory_budget: 1000,
            num_groups: 10,
            window_output: 0,
            total_output: mem * 2,
            avg_productivity_rate: rate,
            spilled_bytes: 0,
            spill_count: 0,
        }
    }

    #[test]
    fn min_max_load_and_ratio() {
        let s = ClusterStats::new(vec![
            report(0, 800, 2.0),
            report(1, 200, 8.0),
            report(2, 500, 4.0),
        ]);
        assert_eq!(s.max_load().unwrap().engine, EngineId(0));
        assert_eq!(s.min_load().unwrap().engine, EngineId(1));
        assert!((s.load_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.total_memory_used(), 1500);
        assert_eq!(s.total_memory_budget(), 3000);
        assert_eq!(s.total_output(), 3000);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn productivity_extremes() {
        let s = ClusterStats::new(vec![report(0, 100, 2.0), report(1, 100, 8.0)]);
        assert_eq!(s.max_productivity().unwrap().engine, EngineId(1));
        assert_eq!(s.min_productivity().unwrap().engine, EngineId(0));
        assert!((s.productivity_ratio() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = ClusterStats::new(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.load_ratio(), 1.0);
        assert_eq!(empty.productivity_ratio(), 1.0);
        let idle = ClusterStats::new(vec![report(0, 0, 0.0), report(1, 0, 0.0)]);
        assert_eq!(idle.load_ratio(), 1.0);
        assert_eq!(idle.productivity_ratio(), 1.0);
        let one_zero = ClusterStats::new(vec![report(0, 10, 0.0), report(1, 10, 5.0)]);
        assert!(one_zero.productivity_ratio().is_infinite());
    }

    #[test]
    fn engine_lookup() {
        let s = ClusterStats::new(vec![report(1, 1, 1.0), report(0, 2, 2.0)]);
        assert_eq!(s.engine(EngineId(1)).unwrap().memory_used, 1);
        assert!(s.engine(EngineId(9)).is_none());
        // Sorted by engine id.
        assert_eq!(s.reports()[0].engine, EngineId(0));
    }
}
