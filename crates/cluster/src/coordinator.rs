//! The global coordinator (GC).
//!
//! §2: "a dedicated global coordinator is in charge of a set of query
//! engines … it collects and analyzes running statistics of each
//! processor [and] makes coarse-grained adaptation decisions such as how
//! many states to relocate from one processor to the other but *not
//! which partition groups*". The coordinator therefore owns:
//!
//! * the pluggable [`AdaptationStrategy`] (lazy-disk / active-disk /
//!   none),
//! * the lifecycle of at most one in-flight [`RelocationRound`],
//! * adaptation counters for reporting.
//!
//! It is runtime-agnostic: both the simulated and the threaded driver
//! feed it statistics and protocol events and execute the actions it
//! returns.

use dcape_common::error::Result;
use dcape_common::hash::FxHashMap;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::{AdaptEvent, JournalHandle};

use crate::relocation::{Action, Phase, RelocationRound};
use crate::stats::ClusterStats;
use crate::strategy::{AdaptationStrategy, Decision, StrategyConfig};

/// Per-phase timeout and bounded-retry policy for relocation rounds.
///
/// Without a policy the coordinator waits forever — correct on a
/// reliable fabric and exactly the pre-chaos behaviour. With one, each
/// protocol phase (WaitPtv, WaitAck) gets a deadline; on expiry the
/// coordinator re-issues the phase's message up to `max_retries` times
/// and then **aborts** the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual time allowed per phase attempt.
    pub phase_timeout: VirtualDuration,
    /// Re-sends per phase before the round is abandoned.
    pub max_retries: u32,
    /// Consecutive aborted rounds toward one receiver before the
    /// coordinator declares the peer dead and degrades relocations to
    /// local spills.
    pub peer_death_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(2),
            max_retries: 3,
            peer_death_threshold: 3,
        }
    }
}

/// What the driver must do after a phase deadline expired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Re-send step 1 (`Cptv`) to the sender with the new attempt.
    RetryCptv {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// Bytes to vacate.
        amount: u64,
        /// New delivery attempt number.
        attempt: u32,
    },
    /// Re-send step 4 (`SendStates`) to the sender with the new
    /// attempt; the sender re-ships its retained outbound copy.
    RetrySendStates {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// The receiver engine.
        receiver: EngineId,
        /// Partitions being moved.
        parts: Vec<PartitionId>,
        /// New delivery attempt number.
        attempt: u32,
    },
    /// Retries exhausted: abandon the round. The driver must send
    /// `AbortRound` to sender and receiver, release the paused
    /// partitions *without* remapping (`parts` is empty when the round
    /// died in WaitPtv, before anything paused), replay their buffered
    /// tuples to the original owner, and release the held watermark.
    AbortRound {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// The receiver engine.
        receiver: EngineId,
        /// Paused partitions to release (empty if none were paused).
        parts: Vec<PartitionId>,
        /// When the partitions were paused (watermark-held accounting);
        /// `None` if the round never reached the pause.
        held_since: Option<VirtualTime>,
    },
}

/// The global adaptation controller.
#[derive(Debug)]
pub struct GlobalCoordinator {
    strategy: Box<dyn AdaptationStrategy>,
    active_round: Option<RelocationRound>,
    next_round: u64,
    relocations_completed: u64,
    relocations_aborted: u64,
    force_spills_issued: u64,
    journal: JournalHandle,
    /// Per-phase timeout policy; `None` waits forever (default).
    retry: Option<RetryPolicy>,
    /// Deadline for the current phase attempt, when a policy is set.
    phase_deadline: Option<VirtualTime>,
    /// Delivery attempt within the current phase (0 = first send).
    attempt: u32,
    /// Consecutive aborted rounds per receiver (reset on success).
    consecutive_aborts: FxHashMap<EngineId, u32>,
    /// Receivers declared dead: relocations toward them degrade to
    /// local force-spills at the sender.
    dead_peers: Vec<EngineId>,
}

impl GlobalCoordinator {
    /// Build a coordinator running the given strategy.
    pub fn new(strategy: &StrategyConfig) -> Self {
        GlobalCoordinator {
            strategy: strategy.build(),
            active_round: None,
            next_round: 0,
            relocations_completed: 0,
            relocations_aborted: 0,
            force_spills_issued: 0,
            journal: JournalHandle::disabled(),
            retry: None,
            phase_deadline: None,
            attempt: 0,
            consecutive_aborts: FxHashMap::default(),
            dead_peers: Vec::new(),
        }
    }

    /// Arm per-phase timeouts with bounded retry then abort. Without
    /// this call phases never time out (the pre-chaos behaviour).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Receivers declared dead after repeated aborted rounds.
    pub fn dead_peers(&self) -> &[EngineId] {
        &self.dead_peers
    }

    /// Attach a journal; the strategy shares it (recording a
    /// `StatsSample` per evaluation), and the coordinator records the
    /// protocol steps it observes directly (1, 2 and 6).
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.strategy.attach_journal(journal.clone());
        self.journal = journal;
    }

    /// The strategy's name (for reports).
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Is a relocation round in flight?
    pub fn relocation_active(&self) -> bool {
        self.active_round.is_some()
    }

    /// Completed relocation rounds.
    pub fn relocations_completed(&self) -> u64 {
        self.relocations_completed
    }

    /// Aborted relocation rounds (sender had nothing to move).
    pub fn relocations_aborted(&self) -> u64 {
        self.relocations_aborted
    }

    /// Forced spills issued (active-disk).
    pub fn force_spills_issued(&self) -> u64 {
        self.force_spills_issued
    }

    /// Evaluate fresh statistics (the `sr_timer`/`lb_timer` expiry of
    /// Algorithms 1–2) and return the decision the driver must execute.
    ///
    /// When the decision is [`Decision::Relocate`], the coordinator has
    /// already opened the relocation round — the driver must send
    /// `Cptv(amount)` (step 1) to the sender and later feed
    /// [`GlobalCoordinator::on_ptv`] / \
    /// [`GlobalCoordinator::on_transfer_ack`].
    pub fn evaluate(&mut self, stats: &ClusterStats, now: VirtualTime) -> Result<Decision> {
        let mut decision = self.strategy.decide(stats, now, self.relocation_active());
        // Graceful degradation: relocating toward a peer declared dead
        // would just burn another timeout ladder — shed the memory
        // pressure locally instead.
        if let Decision::Relocate {
            sender,
            receiver,
            amount,
        } = decision
        {
            if self.dead_peers.contains(&receiver) {
                self.journal.record(
                    now,
                    AdaptEvent::ProtocolWarning {
                        code: "relocation_degraded_to_spill",
                        engine: receiver,
                        round: self.next_round,
                        detail: amount,
                    },
                );
                decision = Decision::ForceSpill {
                    engine: sender,
                    amount,
                };
            }
        }
        match &decision {
            Decision::Relocate {
                sender,
                receiver,
                amount,
            } => {
                let round = RelocationRound::begin(self.next_round, *sender, *receiver, *amount)?;
                self.journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round: round.round(),
                        step: 1,
                        sender: *sender,
                        receiver: *receiver,
                        parts: Vec::new(),
                        bytes: *amount,
                        buffered_tuples: 0,
                        load_ratio: stats.load_ratio(),
                    },
                );
                self.next_round += 1;
                self.active_round = Some(round);
                self.arm_phase(now);
            }
            Decision::ForceSpill { .. } => {
                self.force_spills_issued += 1;
            }
            Decision::None => {}
        }
        Ok(decision)
    }

    /// Start a fresh deadline/attempt ladder for the phase that just
    /// began (no-op without a retry policy).
    fn arm_phase(&mut self, now: VirtualTime) {
        self.attempt = 0;
        self.phase_deadline = self.retry.map(|p| now + p.phase_timeout);
    }

    /// The current phase's delivery attempt (0 = first send). Drivers
    /// stamp outgoing protocol messages with this so the chaos layer's
    /// decisions key on it.
    pub fn current_attempt(&self) -> u32 {
        self.attempt
    }

    /// The active phase's deadline, if a retry policy armed one.
    /// Drivers use it to know how far to advance the clock when
    /// draining the protocol at end of input.
    pub fn phase_deadline(&self) -> Option<VirtualTime> {
        self.phase_deadline
    }

    /// Poll the phase deadline. Returns the recovery action the driver
    /// must execute if the current phase has timed out at `now`:
    /// re-send the phase message (bounded) or abort the round. `None`
    /// when no round is active, no policy is set, or the deadline has
    /// not passed.
    pub fn check_timeout(&mut self, now: VirtualTime) -> Option<TimeoutAction> {
        let policy = self.retry?;
        let deadline = self.phase_deadline?;
        if now < deadline {
            return None;
        }
        let active = self.active_round.as_ref()?;
        let round = active.round();
        let (sender, receiver) = (active.sender(), active.receiver());
        let step: u64 = match active.phase() {
            Phase::WaitPtv => 1,
            Phase::WaitAck => 4,
            Phase::Done => return None,
        };
        if self.attempt < policy.max_retries {
            self.attempt += 1;
            self.phase_deadline = Some(now + policy.phase_timeout);
            self.journal.record(
                now,
                AdaptEvent::ProtocolWarning {
                    code: "phase_timeout_retry",
                    engine: sender,
                    round,
                    detail: step,
                },
            );
            self.journal.add_msgs_retried(1);
            let attempt = self.attempt;
            return Some(match active.phase() {
                Phase::WaitPtv => TimeoutAction::RetryCptv {
                    round,
                    sender,
                    amount: active.amount(),
                    attempt,
                },
                Phase::WaitAck => TimeoutAction::RetrySendStates {
                    round,
                    sender,
                    receiver,
                    parts: active.parts().to_vec(),
                    attempt,
                },
                Phase::Done => unreachable!("filtered above"),
            });
        }
        // Retries exhausted: abandon the round.
        let (parts, held_since) = match active.phase() {
            Phase::WaitAck => (active.parts().to_vec(), Some(active.paused_at())),
            _ => (Vec::new(), None),
        };
        self.journal.record(
            now,
            AdaptEvent::ProtocolWarning {
                code: "round_aborted",
                engine: receiver,
                round,
                detail: step,
            },
        );
        self.journal.add_rounds_aborted(1);
        self.active_round = None;
        self.phase_deadline = None;
        self.relocations_aborted += 1;
        let aborts = self.consecutive_aborts.entry(receiver).or_insert(0);
        *aborts += 1;
        if *aborts >= policy.peer_death_threshold && !self.dead_peers.contains(&receiver) {
            self.dead_peers.push(receiver);
            self.journal.record(
                now,
                AdaptEvent::ProtocolWarning {
                    code: "peer_declared_dead",
                    engine: receiver,
                    round,
                    detail: u64::from(*aborts),
                },
            );
        }
        Some(TimeoutAction::AbortRound {
            round,
            sender,
            receiver,
            parts,
            held_since,
        })
    }

    /// The id and amount of the active round (for issuing `Cptv`).
    pub fn active_round_info(&self) -> Option<(u64, EngineId, EngineId, u64)> {
        self.active_round
            .as_ref()
            .map(|r| (r.round(), r.sender(), r.receiver(), r.amount()))
    }

    /// True if `round` names a round that already finished (completed
    /// or aborted) — the signature of a late or duplicated message.
    fn is_stale_round(&self, round: u64) -> bool {
        round < self.next_round
            && self
                .active_round
                .as_ref()
                .is_none_or(|active| round != active.round())
    }

    /// Journal a tolerated protocol anomaly.
    fn warn(
        &self,
        code: &'static str,
        engine: EngineId,
        round: u64,
        detail: u64,
        now: VirtualTime,
    ) {
        self.journal.record(
            now,
            AdaptEvent::ProtocolWarning {
                code,
                engine,
                round,
                detail,
            },
        );
    }

    /// Step 2: the sender's partition list arrived at virtual time
    /// `now`.
    ///
    /// Returns `Ok(None)` for a late or duplicated message — a `Ptv`
    /// for a round that already finished, or a re-delivered `Ptv` for
    /// the active round — journaled as a warning instead of poisoning
    /// the coordinator (a retried message must never wedge adaptation).
    pub fn on_ptv(
        &mut self,
        from: EngineId,
        round: u64,
        parts: Vec<PartitionId>,
        now: VirtualTime,
    ) -> Result<Option<Action>> {
        if self.is_stale_round(round) || self.active_round.is_none() {
            self.warn("stale_ptv", from, round, 2, now);
            return Ok(None);
        }
        let active = self.active_round.as_mut().expect("checked above");
        if *active.phase() != Phase::WaitPtv && from == active.sender() {
            // Re-delivered Ptv for the round in flight: the first copy
            // already advanced the phase; this one is a no-op.
            self.warn("duplicate_ptv", from, round, 2, now);
            return Ok(None);
        }
        let (sender, receiver) = (active.sender(), active.receiver());
        let event_parts = parts.clone();
        let action = active.on_ptv(from, round, parts, now)?;
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 2,
                sender,
                receiver,
                parts: event_parts,
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        if matches!(action, Action::Abort) {
            self.active_round = None;
            self.phase_deadline = None;
            self.relocations_aborted += 1;
        } else {
            // Step 3 pauses immediately; the WaitAck phase starts now.
            self.arm_phase(now);
        }
        Ok(Some(action))
    }

    /// Step 6: the receiver's transfer ack arrived at virtual time
    /// `now`. Returns the final remap-and-resume action and closes the
    /// round.
    ///
    /// Returns `Ok(None)` for a late or duplicated ack (a retried
    /// transfer can deliver the same ack twice; the round may have
    /// completed — or aborted — by the time the second copy lands).
    pub fn on_transfer_ack(
        &mut self,
        from: EngineId,
        round: u64,
        now: VirtualTime,
    ) -> Result<Option<Action>> {
        if self.is_stale_round(round) || self.active_round.is_none() {
            self.warn("stale_transfer_ack", from, round, 6, now);
            return Ok(None);
        }
        let active = self.active_round.as_mut().expect("checked above");
        let (sender, receiver) = (active.sender(), active.receiver());
        let action = active.on_transfer_ack(from, round)?;
        debug_assert!(active.is_done());
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 6,
                sender,
                receiver,
                parts: Vec::new(),
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        self.active_round = None;
        self.phase_deadline = None;
        self.relocations_completed += 1;
        // A completed round proves the receiver is alive.
        self.consecutive_aborts.insert(receiver, 0);
        Ok(Some(action))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;
    use dcape_common::time::VirtualDuration;

    fn imbalanced() -> ClusterStats {
        ClusterStats::new(vec![report(0, 1000, 1.0), report(1, 100, 1.0)])
    }

    fn lazy() -> GlobalCoordinator {
        GlobalCoordinator::new(&StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
        })
    }

    #[test]
    fn full_relocation_lifecycle() {
        let mut gc = lazy();
        assert!(!gc.relocation_active());
        let d = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap();
        let Decision::Relocate {
            sender,
            receiver,
            amount,
        } = d
        else {
            panic!("expected relocation, got {d:?}");
        };
        assert!(gc.relocation_active());
        let (round, s, r, a) = gc.active_round_info().unwrap();
        assert_eq!((s, r, a), (sender, receiver, amount));

        // While active, further evaluations do nothing.
        let d2 = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(d2, Decision::None);

        let action = gc
            .on_ptv(
                sender,
                round,
                vec![PartitionId(1), PartitionId(2)],
                VirtualTime::from_secs(3),
            )
            .unwrap();
        assert!(matches!(action, Some(Action::PauseAndTransfer { .. })));
        let action = gc
            .on_transfer_ack(receiver, round, VirtualTime::from_secs(4))
            .unwrap();
        assert!(matches!(action, Some(Action::RemapAndResume { .. })));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_completed(), 1);
        assert_eq!(gc.relocations_aborted(), 0);
    }

    #[test]
    fn abort_on_empty_ptv() {
        let mut gc = lazy();
        let Decision::Relocate { sender, .. } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        let action = gc
            .on_ptv(sender, round, vec![], VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(action, Some(Action::Abort));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_aborted(), 1);
        assert_eq!(gc.relocations_completed(), 0);
    }

    #[test]
    fn stale_and_duplicate_messages_are_warnings_not_errors() {
        let mut gc = lazy();
        gc.set_journal(JournalHandle::with_capacity(64));
        // No round at all: late messages are tolerated.
        assert_eq!(
            gc.on_ptv(EngineId(0), 0, vec![], VirtualTime::ZERO)
                .unwrap(),
            None
        );
        assert_eq!(
            gc.on_transfer_ack(EngineId(0), 0, VirtualTime::ZERO)
                .unwrap(),
            None
        );
        // Run a full round, then replay its messages: both are stale.
        let Decision::Relocate {
            sender, receiver, ..
        } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        // Duplicate Ptv while the round is in WaitAck: no-op.
        gc.on_ptv(
            sender,
            round,
            vec![PartitionId(1)],
            VirtualTime::from_secs(2),
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            gc.on_ptv(
                sender,
                round,
                vec![PartitionId(1)],
                VirtualTime::from_secs(2)
            )
            .unwrap(),
            None
        );
        gc.on_transfer_ack(receiver, round, VirtualTime::from_secs(3))
            .unwrap()
            .unwrap();
        // Retried ack for the completed round: tolerated, still closed.
        assert_eq!(
            gc.on_transfer_ack(receiver, round, VirtualTime::from_secs(4))
                .unwrap(),
            None
        );
        assert_eq!(gc.relocations_completed(), 1);
        let warnings: Vec<_> = gc
            .journal
            .snapshot()
            .into_iter()
            .filter(|e| e.event.kind() == "protocol_warning")
            .collect();
        assert_eq!(warnings.len(), 4);
    }

    #[test]
    fn phase_timeout_retries_then_aborts() {
        let mut gc = lazy();
        gc.set_journal(JournalHandle::with_capacity(64));
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 2,
            peer_death_threshold: 2,
        });
        // Without an active round, no timeout fires.
        assert_eq!(gc.check_timeout(VirtualTime::from_secs(100)), None);
        let Decision::Relocate { sender, amount, .. } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        // Before the deadline: nothing.
        assert_eq!(gc.check_timeout(VirtualTime::from_millis(1500)), None);
        // First expiry: retry Cptv with attempt 1.
        assert_eq!(
            gc.check_timeout(VirtualTime::from_secs(2)),
            Some(TimeoutAction::RetryCptv {
                round,
                sender,
                amount,
                attempt: 1,
            })
        );
        assert_eq!(gc.current_attempt(), 1);
        // Second expiry: retry with attempt 2 (the cap).
        assert!(matches!(
            gc.check_timeout(VirtualTime::from_secs(3)),
            Some(TimeoutAction::RetryCptv { attempt: 2, .. })
        ));
        // Third expiry: retries exhausted, round aborts in WaitPtv
        // (nothing was paused).
        let abort = gc.check_timeout(VirtualTime::from_secs(4)).unwrap();
        assert!(matches!(
            &abort,
            TimeoutAction::AbortRound {
                parts,
                held_since: None,
                ..
            } if parts.is_empty()
        ));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_aborted(), 1);
        let c = gc.journal.counters().unwrap();
        assert_eq!(c.msgs_retried(), 2);
        assert_eq!(c.rounds_aborted(), 1);
        // No round anymore: the poll goes quiet.
        assert_eq!(gc.check_timeout(VirtualTime::from_secs(5)), None);
    }

    #[test]
    fn wait_ack_timeout_aborts_with_paused_parts() {
        let mut gc = lazy();
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 0,
            peer_death_threshold: 99,
        });
        let Decision::Relocate {
            sender, receiver, ..
        } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        gc.on_ptv(
            sender,
            round,
            vec![PartitionId(4)],
            VirtualTime::from_secs(2),
        )
        .unwrap()
        .unwrap();
        // The WaitAck phase re-armed at the Ptv; zero retries allowed,
        // so the first expiry aborts and carries the paused parts.
        let abort = gc.check_timeout(VirtualTime::from_secs(3)).unwrap();
        assert_eq!(
            abort,
            TimeoutAction::AbortRound {
                round,
                sender,
                receiver,
                parts: vec![PartitionId(4)],
                held_since: Some(VirtualTime::from_secs(2)),
            }
        );
    }

    #[test]
    fn repeated_aborts_declare_peer_dead_and_degrade_to_spill() {
        let mut gc = lazy();
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 0,
            peer_death_threshold: 2,
        });
        let mut now = VirtualTime::from_secs(1);
        for _ in 0..2 {
            let Decision::Relocate { .. } = gc.evaluate(&imbalanced(), now).unwrap() else {
                panic!()
            };
            now += VirtualDuration::from_secs(10);
            assert!(matches!(
                gc.check_timeout(now),
                Some(TimeoutAction::AbortRound { .. })
            ));
            now += VirtualDuration::from_secs(10);
        }
        assert_eq!(gc.dead_peers().len(), 1);
        // The same imbalance now degrades to a local force-spill at
        // the overloaded sender.
        let d = gc.evaluate(&imbalanced(), now).unwrap();
        assert!(
            matches!(d, Decision::ForceSpill { engine, .. } if engine == EngineId(0)),
            "expected degraded spill, got {d:?}"
        );
        assert_eq!(gc.force_spills_issued(), 1);
    }

    #[test]
    fn force_spill_counter() {
        let mut gc = GlobalCoordinator::new(&StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 30,
        });
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 950, 1.0)]);
        let d = gc.evaluate(&stats, VirtualTime::from_secs(1)).unwrap();
        assert!(matches!(d, Decision::ForceSpill { .. }));
        assert_eq!(gc.force_spills_issued(), 1);
        assert_eq!(gc.strategy_name(), "active-disk");
    }
}
