//! The global coordinator (GC).
//!
//! §2: "a dedicated global coordinator is in charge of a set of query
//! engines … it collects and analyzes running statistics of each
//! processor [and] makes coarse-grained adaptation decisions such as how
//! many states to relocate from one processor to the other but *not
//! which partition groups*". The coordinator therefore owns:
//!
//! * the pluggable [`AdaptationStrategy`] (lazy-disk / active-disk /
//!   none),
//! * the lifecycle of at most one in-flight [`RelocationRound`],
//! * adaptation counters for reporting.
//!
//! It is runtime-agnostic: both the simulated and the threaded driver
//! feed it statistics and protocol events and execute the actions it
//! returns.

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::VirtualTime;
use dcape_metrics::journal::{AdaptEvent, JournalHandle};

use crate::relocation::{Action, RelocationRound};
use crate::stats::ClusterStats;
use crate::strategy::{AdaptationStrategy, Decision, StrategyConfig};

/// The global adaptation controller.
#[derive(Debug)]
pub struct GlobalCoordinator {
    strategy: Box<dyn AdaptationStrategy>,
    active_round: Option<RelocationRound>,
    next_round: u64,
    relocations_completed: u64,
    relocations_aborted: u64,
    force_spills_issued: u64,
    journal: JournalHandle,
}

impl GlobalCoordinator {
    /// Build a coordinator running the given strategy.
    pub fn new(strategy: &StrategyConfig) -> Self {
        GlobalCoordinator {
            strategy: strategy.build(),
            active_round: None,
            next_round: 0,
            relocations_completed: 0,
            relocations_aborted: 0,
            force_spills_issued: 0,
            journal: JournalHandle::disabled(),
        }
    }

    /// Attach a journal; the strategy shares it (recording a
    /// `StatsSample` per evaluation), and the coordinator records the
    /// protocol steps it observes directly (1, 2 and 6).
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.strategy.attach_journal(journal.clone());
        self.journal = journal;
    }

    /// The strategy's name (for reports).
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Is a relocation round in flight?
    pub fn relocation_active(&self) -> bool {
        self.active_round.is_some()
    }

    /// Completed relocation rounds.
    pub fn relocations_completed(&self) -> u64 {
        self.relocations_completed
    }

    /// Aborted relocation rounds (sender had nothing to move).
    pub fn relocations_aborted(&self) -> u64 {
        self.relocations_aborted
    }

    /// Forced spills issued (active-disk).
    pub fn force_spills_issued(&self) -> u64 {
        self.force_spills_issued
    }

    /// Evaluate fresh statistics (the `sr_timer`/`lb_timer` expiry of
    /// Algorithms 1–2) and return the decision the driver must execute.
    ///
    /// When the decision is [`Decision::Relocate`], the coordinator has
    /// already opened the relocation round — the driver must send
    /// `Cptv(amount)` (step 1) to the sender and later feed
    /// [`GlobalCoordinator::on_ptv`] / \
    /// [`GlobalCoordinator::on_transfer_ack`].
    pub fn evaluate(&mut self, stats: &ClusterStats, now: VirtualTime) -> Result<Decision> {
        let decision = self.strategy.decide(stats, now, self.relocation_active());
        match &decision {
            Decision::Relocate {
                sender,
                receiver,
                amount,
            } => {
                let round = RelocationRound::begin(self.next_round, *sender, *receiver, *amount)?;
                self.journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round: round.round(),
                        step: 1,
                        sender: *sender,
                        receiver: *receiver,
                        parts: Vec::new(),
                        bytes: *amount,
                        buffered_tuples: 0,
                        load_ratio: stats.load_ratio(),
                    },
                );
                self.next_round += 1;
                self.active_round = Some(round);
            }
            Decision::ForceSpill { .. } => {
                self.force_spills_issued += 1;
            }
            Decision::None => {}
        }
        Ok(decision)
    }

    /// The id and amount of the active round (for issuing `Cptv`).
    pub fn active_round_info(&self) -> Option<(u64, EngineId, EngineId, u64)> {
        self.active_round
            .as_ref()
            .map(|r| (r.round(), r.sender(), r.receiver(), r.amount()))
    }

    /// Step 2: the sender's partition list arrived at virtual time
    /// `now`.
    pub fn on_ptv(
        &mut self,
        from: EngineId,
        round: u64,
        parts: Vec<PartitionId>,
        now: VirtualTime,
    ) -> Result<Action> {
        let active = self
            .active_round
            .as_mut()
            .ok_or_else(|| DcapeError::protocol("ptv with no active relocation"))?;
        let (sender, receiver) = (active.sender(), active.receiver());
        let event_parts = parts.clone();
        let action = active.on_ptv(from, round, parts, now)?;
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 2,
                sender,
                receiver,
                parts: event_parts,
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        if matches!(action, Action::Abort) {
            self.active_round = None;
            self.relocations_aborted += 1;
        }
        Ok(action)
    }

    /// Step 6: the receiver's transfer ack arrived at virtual time
    /// `now`. Returns the final remap-and-resume action and closes the
    /// round.
    pub fn on_transfer_ack(
        &mut self,
        from: EngineId,
        round: u64,
        now: VirtualTime,
    ) -> Result<Action> {
        let active = self
            .active_round
            .as_mut()
            .ok_or_else(|| DcapeError::protocol("transfer_ack with no active relocation"))?;
        let (sender, receiver) = (active.sender(), active.receiver());
        let action = active.on_transfer_ack(from, round)?;
        debug_assert!(active.is_done());
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 6,
                sender,
                receiver,
                parts: Vec::new(),
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        self.active_round = None;
        self.relocations_completed += 1;
        Ok(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;
    use dcape_common::time::VirtualDuration;

    fn imbalanced() -> ClusterStats {
        ClusterStats::new(vec![report(0, 1000, 1.0), report(1, 100, 1.0)])
    }

    fn lazy() -> GlobalCoordinator {
        GlobalCoordinator::new(&StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
        })
    }

    #[test]
    fn full_relocation_lifecycle() {
        let mut gc = lazy();
        assert!(!gc.relocation_active());
        let d = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap();
        let Decision::Relocate {
            sender,
            receiver,
            amount,
        } = d
        else {
            panic!("expected relocation, got {d:?}");
        };
        assert!(gc.relocation_active());
        let (round, s, r, a) = gc.active_round_info().unwrap();
        assert_eq!((s, r, a), (sender, receiver, amount));

        // While active, further evaluations do nothing.
        let d2 = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(d2, Decision::None);

        let action = gc
            .on_ptv(
                sender,
                round,
                vec![PartitionId(1), PartitionId(2)],
                VirtualTime::from_secs(3),
            )
            .unwrap();
        assert!(matches!(action, Action::PauseAndTransfer { .. }));
        let action = gc
            .on_transfer_ack(receiver, round, VirtualTime::from_secs(4))
            .unwrap();
        assert!(matches!(action, Action::RemapAndResume { .. }));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_completed(), 1);
        assert_eq!(gc.relocations_aborted(), 0);
    }

    #[test]
    fn abort_on_empty_ptv() {
        let mut gc = lazy();
        let Decision::Relocate { sender, .. } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        let action = gc
            .on_ptv(sender, round, vec![], VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(action, Action::Abort);
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_aborted(), 1);
        assert_eq!(gc.relocations_completed(), 0);
    }

    #[test]
    fn protocol_events_without_round_are_errors() {
        let mut gc = lazy();
        assert!(gc
            .on_ptv(EngineId(0), 0, vec![], VirtualTime::ZERO)
            .is_err());
        assert!(gc
            .on_transfer_ack(EngineId(0), 0, VirtualTime::ZERO)
            .is_err());
    }

    #[test]
    fn force_spill_counter() {
        let mut gc = GlobalCoordinator::new(&StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 30,
        });
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 950, 1.0)]);
        let d = gc.evaluate(&stats, VirtualTime::from_secs(1)).unwrap();
        assert!(matches!(d, Decision::ForceSpill { .. }));
        assert_eq!(gc.force_spills_issued(), 1);
        assert_eq!(gc.strategy_name(), "active-disk");
    }
}
