//! The global coordinator (GC).
//!
//! §2: "a dedicated global coordinator is in charge of a set of query
//! engines … it collects and analyzes running statistics of each
//! processor [and] makes coarse-grained adaptation decisions such as how
//! many states to relocate from one processor to the other but *not
//! which partition groups*". The coordinator therefore owns:
//!
//! * the pluggable [`AdaptationStrategy`] (lazy-disk / active-disk /
//!   none),
//! * the lifecycle of at most one in-flight [`RelocationRound`],
//! * adaptation counters for reporting.
//!
//! It is runtime-agnostic: both the simulated and the threaded driver
//! feed it statistics and protocol events and execute the actions it
//! returns.

use dcape_common::error::{DcapeError, Result};
use dcape_common::hash::FxHashMap;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::{AdaptEvent, JournalHandle};

use crate::relocation::{Action, Phase, RelocationRound, RoundPurpose};
use crate::stats::ClusterStats;
use crate::strategy::{AdaptationStrategy, Decision, RebalancePlanner, StrategyConfig};

/// Consecutive aborted drain rounds before the coordinator stops trying
/// to relocate off the draining engine and degrades to a forced spill
/// (the segments still reach their new owners through the cleanup
/// hand-off, so the drain terminates under any chaos schedule).
const DRAIN_ABORTS_TO_DEGRADE: u32 = 3;

/// Lifecycle of one engine in the elastic membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineState {
    /// Slot provisioned (capacity pre-sized) but the engine has not
    /// been admitted yet.
    NotJoined,
    /// Full member: owns partitions, receives placements.
    Active,
    /// Fenced and shedding state via drain relocation rounds.
    Draining,
    /// Owns nothing; handing its spilled segments to the new owners
    /// (mid-run `PrepareCleanup`/`StartCleanup` exchange).
    DrainCleanup,
    /// Gone: counters folded, clean exit.
    Drained,
}

#[derive(Debug, Clone, Copy)]
struct Member {
    state: EngineState,
    /// `JoinReady` received — the engine is up and reachable, so the
    /// rebalance planner may move state toward it.
    ready: bool,
    /// Admitted after the run started (journal/report bookkeeping).
    mid_run_joiner: bool,
}

/// Book-keeping for the (single) drain in progress.
#[derive(Debug)]
struct DrainCtl {
    engine: EngineId,
    /// Elastic moves executed for this drain (rounds + final remap).
    moves: u64,
    consecutive_aborts: u32,
    degraded: bool,
    /// `drain_degraded_to_spill` journaled (once).
    degrade_warned: bool,
}

/// What the driver must do after feeding a [`FromEngine::DrainState`]
/// report into [`GlobalCoordinator::on_drain_state`].
///
/// [`FromEngine::DrainState`]: crate::messages::FromEngine
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainStep {
    /// Nothing right now (a relocation round is still in flight, or the
    /// report was stale). The driver re-polls with `BeginDrain` when
    /// the round ends.
    Wait,
    /// A drain relocation round was opened: send `Cptv(amount)` to the
    /// draining engine (step 1).
    Relocate {
        /// Round id.
        round: u64,
        /// The draining engine (sender).
        sender: EngineId,
        /// Target engine for the shed state.
        receiver: EngineId,
        /// Bytes to vacate (all resident state).
        amount: u64,
    },
    /// Drain rounds keep aborting: force the engine to spill everything
    /// to disk instead. The segments reach their owners in the cleanup
    /// hand-off after the final remap.
    ForceSpill {
        /// The draining engine.
        engine: EngineId,
        /// Bytes to spill (`u64::MAX` = everything).
        amount: u64,
    },
    /// No resident state left: pause + remap the engine's remaining
    /// (zero-state) partitions straight to `receiver`, then start the
    /// cleanup hand-off (`StartSpill(MAX)` + `PrepareCleanup` to the
    /// draining engine). The driver reports back via
    /// [`GlobalCoordinator::drain_finalized`].
    FinalizeRemap {
        /// The draining engine.
        engine: EngineId,
        /// New owner for its remaining partitions.
        receiver: EngineId,
    },
}

/// Per-phase timeout and bounded-retry policy for relocation rounds.
///
/// Without a policy the coordinator waits forever — correct on a
/// reliable fabric and exactly the pre-chaos behaviour. With one, each
/// protocol phase (WaitPtv, WaitAck) gets a deadline; on expiry the
/// coordinator re-issues the phase's message up to `max_retries` times
/// and then **aborts** the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Virtual time allowed per phase attempt.
    pub phase_timeout: VirtualDuration,
    /// Re-sends per phase before the round is abandoned.
    pub max_retries: u32,
    /// Consecutive aborted rounds toward one receiver before the
    /// coordinator declares the peer dead and degrades relocations to
    /// local spills.
    pub peer_death_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(2),
            max_retries: 3,
            peer_death_threshold: 3,
        }
    }
}

/// What the driver must do after a phase deadline expired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Re-send step 1 (`Cptv`) to the sender with the new attempt.
    RetryCptv {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// Bytes to vacate.
        amount: u64,
        /// New delivery attempt number.
        attempt: u32,
    },
    /// Re-send step 4 (`SendStates`) to the sender with the new
    /// attempt; the sender re-ships its retained outbound copy.
    RetrySendStates {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// The receiver engine.
        receiver: EngineId,
        /// Partitions being moved.
        parts: Vec<PartitionId>,
        /// New delivery attempt number.
        attempt: u32,
    },
    /// Retries exhausted: abandon the round. The driver must send
    /// `AbortRound` to sender and receiver, release the paused
    /// partitions *without* remapping (`parts` is empty when the round
    /// died in WaitPtv, before anything paused), replay their buffered
    /// tuples to the original owner, and release the held watermark.
    AbortRound {
        /// Round id.
        round: u64,
        /// The sender engine.
        sender: EngineId,
        /// The receiver engine.
        receiver: EngineId,
        /// Paused partitions to release (empty if none were paused).
        parts: Vec<PartitionId>,
        /// When the partitions were paused (watermark-held accounting);
        /// `None` if the round never reached the pause.
        held_since: Option<VirtualTime>,
    },
}

/// The global adaptation controller.
#[derive(Debug)]
pub struct GlobalCoordinator {
    strategy: Box<dyn AdaptationStrategy>,
    active_round: Option<RelocationRound>,
    next_round: u64,
    relocations_completed: u64,
    relocations_aborted: u64,
    force_spills_issued: u64,
    journal: JournalHandle,
    /// Per-phase timeout policy; `None` waits forever (default).
    retry: Option<RetryPolicy>,
    /// Deadline for the current phase attempt, when a policy is set.
    phase_deadline: Option<VirtualTime>,
    /// Delivery attempt within the current phase (0 = first send).
    attempt: u32,
    /// Consecutive aborted rounds per receiver (reset on success).
    consecutive_aborts: FxHashMap<EngineId, u32>,
    /// Receivers declared dead: relocations toward them degrade to
    /// local force-spills at the sender.
    dead_peers: Vec<EngineId>,
    /// Elastic membership, indexed by engine id. Empty = legacy mode
    /// (fixed engine set, every engine implicitly active).
    members: Vec<Member>,
    /// Last known memory load per engine (from the stats feed); drain
    /// rounds pick the least-loaded active engine as receiver.
    last_loads: Vec<Option<u64>>,
    /// Join-time rebalancing planner.
    rebalance: RebalancePlanner,
    /// The drain in progress, if any (at most one at a time).
    drain: Option<DrainCtl>,
    /// Drain requested while a relocation round targeted the engine;
    /// started as soon as that round ends.
    pending_drain: Option<EngineId>,
}

impl GlobalCoordinator {
    /// Build a coordinator running the given strategy.
    pub fn new(strategy: &StrategyConfig) -> Self {
        GlobalCoordinator {
            strategy: strategy.build(),
            active_round: None,
            next_round: 0,
            relocations_completed: 0,
            relocations_aborted: 0,
            force_spills_issued: 0,
            journal: JournalHandle::disabled(),
            retry: None,
            phase_deadline: None,
            attempt: 0,
            consecutive_aborts: FxHashMap::default(),
            dead_peers: Vec::new(),
            members: Vec::new(),
            last_loads: Vec::new(),
            rebalance: RebalancePlanner::default(),
            drain: None,
            pending_drain: None,
        }
    }

    /// Arm per-phase timeouts with bounded retry then abort. Without
    /// this call phases never time out (the pre-chaos behaviour).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.retry = Some(policy);
    }

    /// Receivers declared dead after repeated aborted rounds.
    pub fn dead_peers(&self) -> &[EngineId] {
        &self.dead_peers
    }

    // ---- elastic membership -------------------------------------------

    /// Enable the elastic membership: `initial` engines start active,
    /// slots up to `capacity` (initial + scheduled joins) are
    /// provisioned but not joined. Without this call the coordinator
    /// runs in the legacy fixed-set mode.
    pub fn init_membership(&mut self, initial: usize, capacity: usize) {
        let capacity = capacity.max(initial);
        self.members = (0..capacity)
            .map(|i| Member {
                state: if i < initial {
                    EngineState::Active
                } else {
                    EngineState::NotJoined
                },
                ready: false,
                mid_run_joiner: false,
            })
            .collect();
        self.last_loads = vec![None; capacity];
    }

    /// Lifecycle state of `engine`. Legacy mode (no membership) reports
    /// every engine active.
    pub fn engine_state(&self, engine: EngineId) -> EngineState {
        if self.members.is_empty() {
            return EngineState::Active;
        }
        self.members
            .get(engine.index())
            .map_or(EngineState::NotJoined, |m| m.state)
    }

    /// Engines in [`EngineState::Active`], ascending.
    pub fn active_engines(&self) -> Vec<EngineId> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state == EngineState::Active)
            .map(|(i, _)| EngineId(i as u16))
            .collect()
    }

    /// Engines that still participate in the protocol (active,
    /// draining, or in the cleanup hand-off) — the broadcast set.
    pub fn participating_engines(&self) -> Vec<EngineId> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                matches!(
                    m.state,
                    EngineState::Active | EngineState::Draining | EngineState::DrainCleanup
                )
            })
            .map(|(i, _)| EngineId(i as u16))
            .collect()
    }

    /// Admit a provisioned engine (scale-out event): it becomes active
    /// and a rebalance target once its `JoinReady` arrives.
    pub fn admit_engine(&mut self, engine: EngineId, now: VirtualTime) -> Result<()> {
        let m = self
            .members
            .get_mut(engine.index())
            .ok_or_else(|| DcapeError::state(format!("admit of unprovisioned engine {engine}")))?;
        if m.state != EngineState::NotJoined {
            return Err(DcapeError::protocol(format!(
                "engine {engine} admitted twice"
            )));
        }
        m.state = EngineState::Active;
        m.mid_run_joiner = true;
        self.last_loads[engine.index()] = Some(0);
        let members = self.participating_engines().len() as u32;
        self.journal
            .record(now, AdaptEvent::EngineJoined { engine, members });
        Ok(())
    }

    /// An engine announced it is up and connected. Idempotent: the
    /// second copy (e.g. after a crash-restart mid-admission) is
    /// journaled as `duplicate_join_ready` and ignored.
    pub fn on_join_ready(&mut self, engine: EngineId, now: VirtualTime) {
        let Some(m) = self.members.get_mut(engine.index()) else {
            return;
        };
        if m.ready {
            self.warn("duplicate_join_ready", engine, self.next_round, 0, now);
        } else {
            m.ready = true;
        }
    }

    /// Mid-run joiners that are active and ready — the rebalance
    /// planner's receiver candidates.
    fn ready_joiners(&self) -> Vec<EngineId> {
        self.members
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state == EngineState::Active && m.ready && m.mid_run_joiner)
            .map(|(i, _)| EngineId(i as u16))
            .collect()
    }

    /// Is a drain in progress (any phase)?
    pub fn drain_in_progress(&self) -> bool {
        self.drain.is_some() || self.pending_drain.is_some()
    }

    /// The engine currently shedding state — the driver's `BeginDrain`
    /// poll target. `None` once the drain reaches the cleanup hand-off.
    pub fn draining_engine(&self) -> Option<EngineId> {
        self.drain
            .as_ref()
            .filter(|d| self.engine_state(d.engine) == EngineState::Draining)
            .map(|d| d.engine)
    }

    /// Request a drain (scale-in event). Returns `true` when the drain
    /// started immediately — the driver must fence the engine in the
    /// placement map, broadcast `FenceNotice`, and send `BeginDrain`.
    /// Returns `false` when an in-flight relocation round targets the
    /// engine: the drain is deferred, and
    /// [`GlobalCoordinator::poll_pending_drain`] hands it back once the
    /// round ends.
    pub fn request_drain(&mut self, engine: EngineId, now: VirtualTime) -> Result<bool> {
        if self.members.is_empty() {
            return Err(DcapeError::state("drain requires elastic membership"));
        }
        if self.drain_in_progress() {
            return Err(DcapeError::protocol(format!(
                "drain of {engine} requested while another drain is in progress"
            )));
        }
        if self.engine_state(engine) != EngineState::Active {
            return Err(DcapeError::protocol(format!(
                "drain of non-active engine {engine}"
            )));
        }
        if self.active_engines().len() < 2 {
            return Err(DcapeError::state("cannot drain the last active engine"));
        }
        let deferred = self
            .active_round
            .as_ref()
            .is_some_and(|r| r.receiver() == engine);
        if deferred {
            self.pending_drain = Some(engine);
            return Ok(false);
        }
        self.start_drain(engine, now);
        Ok(true)
    }

    /// Start a deferred drain once the blocking round is gone. The
    /// driver calls this after every round completion/abort; a returned
    /// engine needs the same fencing + `BeginDrain` as an immediate
    /// [`GlobalCoordinator::request_drain`].
    pub fn poll_pending_drain(&mut self, now: VirtualTime) -> Option<EngineId> {
        if self.relocation_active() {
            return None;
        }
        let engine = self.pending_drain.take()?;
        self.start_drain(engine, now);
        Some(engine)
    }

    fn start_drain(&mut self, engine: EngineId, now: VirtualTime) {
        self.members[engine.index()].state = EngineState::Draining;
        self.warn("drain_started", engine, self.next_round, 0, now);
        self.drain = Some(DrainCtl {
            engine,
            moves: 0,
            consecutive_aborts: 0,
            degraded: false,
            degrade_warned: false,
        });
    }

    /// The least-loaded active engine other than `exclude` — the drain
    /// receiver (fresh joiners sit at load 0, so they are naturally
    /// preferred; ties break to the lowest id).
    fn min_load_receiver(&self, exclude: EngineId) -> Option<EngineId> {
        self.active_engines()
            .into_iter()
            .filter(|e| *e != exclude)
            .min_by_key(|e| (self.last_loads[e.index()].unwrap_or(0), *e))
    }

    /// A `DrainState` report arrived: decide the next drain step.
    pub fn on_drain_state(
        &mut self,
        engine: EngineId,
        resident_bytes: u64,
        now: VirtualTime,
    ) -> Result<DrainStep> {
        if self.engine_state(engine) != EngineState::Draining
            || self.drain.as_ref().is_none_or(|d| d.engine != engine)
        {
            self.warn(
                "stale_drain_state",
                engine,
                self.next_round,
                resident_bytes,
                now,
            );
            return Ok(DrainStep::Wait);
        }
        if self.relocation_active() {
            return Ok(DrainStep::Wait);
        }
        let Some(receiver) = self.min_load_receiver(engine) else {
            return Err(DcapeError::state(format!(
                "no active receiver left for drain of {engine}"
            )));
        };
        if resident_bytes == 0 {
            return Ok(DrainStep::FinalizeRemap { engine, receiver });
        }
        let ctl = self.drain.as_mut().expect("checked above");
        if ctl.degraded {
            if !ctl.degrade_warned {
                ctl.degrade_warned = true;
                self.warn(
                    "drain_degraded_to_spill",
                    engine,
                    self.next_round,
                    resident_bytes,
                    now,
                );
            }
            self.force_spills_issued += 1;
            return Ok(DrainStep::ForceSpill {
                engine,
                amount: u64::MAX,
            });
        }
        let round = RelocationRound::begin_with_purpose(
            self.next_round,
            engine,
            receiver,
            resident_bytes,
            RoundPurpose::Drain,
        )?;
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round: round.round(),
                step: 1,
                sender: engine,
                receiver,
                parts: Vec::new(),
                bytes: resident_bytes,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        let id = round.round();
        self.next_round += 1;
        self.active_round = Some(round);
        self.arm_phase(now);
        Ok(DrainStep::Relocate {
            round: id,
            sender: engine,
            receiver,
            amount: resident_bytes,
        })
    }

    /// The driver executed [`DrainStep::FinalizeRemap`], remapping
    /// `remapped_parts` partitions (possibly zero). The drain enters
    /// the cleanup hand-off; the driver follows with `StartSpill(MAX)`
    /// and `PrepareCleanup` to the engine and routes its `CleanupReady`
    /// / `CleanupDone` through [`GlobalCoordinator::finish_drain`].
    pub fn drain_finalized(&mut self, engine: EngineId, remapped_parts: usize, now: VirtualTime) {
        debug_assert_eq!(self.engine_state(engine), EngineState::Draining);
        if remapped_parts > 0 {
            if let Some(ctl) = self.drain.as_mut() {
                ctl.moves += 1;
            }
            self.journal.add_rebalance_moves(1);
            self.warn(
                "drain_remainder_remapped",
                engine,
                self.next_round,
                remapped_parts as u64,
                now,
            );
        }
        self.members[engine.index()].state = EngineState::DrainCleanup;
    }

    /// The drained engine's `CleanupDone` arrived: close the drain,
    /// journal [`AdaptEvent::EngineDrained`], and return the move count.
    pub fn finish_drain(&mut self, engine: EngineId, now: VirtualTime) -> u64 {
        debug_assert_eq!(self.engine_state(engine), EngineState::DrainCleanup);
        self.members[engine.index()].state = EngineState::Drained;
        let moves = self.drain.take().map_or(0, |d| d.moves);
        self.journal
            .record(now, AdaptEvent::EngineDrained { engine, moves });
        moves
    }

    /// Record the latest loads (for drain receiver selection).
    fn note_loads(&mut self, stats: &ClusterStats) {
        for r in stats.reports() {
            if let Some(slot) = self.last_loads.get_mut(r.engine.index()) {
                *slot = Some(r.memory_used);
            }
        }
    }

    // ---- end elastic membership ---------------------------------------

    /// Attach a journal; the strategy shares it (recording a
    /// `StatsSample` per evaluation), and the coordinator records the
    /// protocol steps it observes directly (1, 2 and 6).
    pub fn set_journal(&mut self, journal: JournalHandle) {
        self.strategy.attach_journal(journal.clone());
        self.journal = journal;
    }

    /// The strategy's name (for reports).
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Is a relocation round in flight?
    pub fn relocation_active(&self) -> bool {
        self.active_round.is_some()
    }

    /// Completed relocation rounds.
    pub fn relocations_completed(&self) -> u64 {
        self.relocations_completed
    }

    /// Aborted relocation rounds (sender had nothing to move).
    pub fn relocations_aborted(&self) -> u64 {
        self.relocations_aborted
    }

    /// Forced spills issued (active-disk).
    pub fn force_spills_issued(&self) -> u64 {
        self.force_spills_issued
    }

    /// Evaluate fresh statistics (the `sr_timer`/`lb_timer` expiry of
    /// Algorithms 1–2) and return the decision the driver must execute.
    ///
    /// When the decision is [`Decision::Relocate`], the coordinator has
    /// already opened the relocation round — the driver must send
    /// `Cptv(amount)` (step 1) to the sender and later feed
    /// [`GlobalCoordinator::on_ptv`] / \
    /// [`GlobalCoordinator::on_transfer_ack`].
    pub fn evaluate(&mut self, stats: &ClusterStats, now: VirtualTime) -> Result<Decision> {
        self.note_loads(stats);
        // A drain owns the single round slot until it completes; the
        // strategy and the join planner stay quiet meanwhile.
        if self.drain_in_progress() {
            return Ok(Decision::None);
        }
        // Join-time rebalancing outranks the strategy: a fresh engine
        // is idle capacity, and the planner's hysteresis band keeps it
        // from fighting the strategy's own moves.
        if !self.relocation_active() {
            let joiners = self.ready_joiners();
            if let Some(mv) = self.rebalance.plan(stats, &joiners, now) {
                let round = RelocationRound::begin_with_purpose(
                    self.next_round,
                    mv.sender,
                    mv.receiver,
                    mv.amount,
                    RoundPurpose::JoinRebalance,
                )?;
                self.journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round: round.round(),
                        step: 1,
                        sender: mv.sender,
                        receiver: mv.receiver,
                        parts: Vec::new(),
                        bytes: mv.amount,
                        buffered_tuples: 0,
                        load_ratio: stats.load_ratio(),
                    },
                );
                self.next_round += 1;
                self.active_round = Some(round);
                self.arm_phase(now);
                return Ok(Decision::Relocate {
                    sender: mv.sender,
                    receiver: mv.receiver,
                    amount: mv.amount,
                });
            }
        }
        let mut decision = self.strategy.decide(stats, now, self.relocation_active());
        // Graceful degradation: relocating toward a peer declared dead
        // would just burn another timeout ladder — shed the memory
        // pressure locally instead.
        if let Decision::Relocate {
            sender,
            receiver,
            amount,
        } = decision
        {
            if self.dead_peers.contains(&receiver) {
                self.journal.record(
                    now,
                    AdaptEvent::ProtocolWarning {
                        code: "relocation_degraded_to_spill",
                        engine: receiver,
                        round: self.next_round,
                        detail: amount,
                    },
                );
                decision = Decision::ForceSpill {
                    engine: sender,
                    amount,
                };
            }
        }
        match &decision {
            Decision::Relocate {
                sender,
                receiver,
                amount,
            } => {
                let round = RelocationRound::begin(self.next_round, *sender, *receiver, *amount)?;
                self.journal.record(
                    now,
                    AdaptEvent::RelocationStep {
                        round: round.round(),
                        step: 1,
                        sender: *sender,
                        receiver: *receiver,
                        parts: Vec::new(),
                        bytes: *amount,
                        buffered_tuples: 0,
                        load_ratio: stats.load_ratio(),
                    },
                );
                self.next_round += 1;
                self.active_round = Some(round);
                self.arm_phase(now);
            }
            Decision::ForceSpill { .. } => {
                self.force_spills_issued += 1;
            }
            Decision::None => {}
        }
        Ok(decision)
    }

    /// Start a fresh deadline/attempt ladder for the phase that just
    /// began (no-op without a retry policy).
    fn arm_phase(&mut self, now: VirtualTime) {
        self.attempt = 0;
        self.phase_deadline = self.retry.map(|p| now + p.phase_timeout);
    }

    /// The current phase's delivery attempt (0 = first send). Drivers
    /// stamp outgoing protocol messages with this so the chaos layer's
    /// decisions key on it.
    pub fn current_attempt(&self) -> u32 {
        self.attempt
    }

    /// The active phase's deadline, if a retry policy armed one.
    /// Drivers use it to know how far to advance the clock when
    /// draining the protocol at end of input.
    pub fn phase_deadline(&self) -> Option<VirtualTime> {
        self.phase_deadline
    }

    /// Poll the phase deadline. Returns the recovery action the driver
    /// must execute if the current phase has timed out at `now`:
    /// re-send the phase message (bounded) or abort the round. `None`
    /// when no round is active, no policy is set, or the deadline has
    /// not passed.
    pub fn check_timeout(&mut self, now: VirtualTime) -> Option<TimeoutAction> {
        let policy = self.retry?;
        let deadline = self.phase_deadline?;
        if now < deadline {
            return None;
        }
        let active = self.active_round.as_ref()?;
        let round = active.round();
        let (sender, receiver) = (active.sender(), active.receiver());
        let step: u64 = match active.phase() {
            Phase::WaitPtv => 1,
            Phase::WaitAck => 4,
            Phase::Done => return None,
        };
        if self.attempt < policy.max_retries {
            self.attempt += 1;
            self.phase_deadline = Some(now + policy.phase_timeout);
            self.journal.record(
                now,
                AdaptEvent::ProtocolWarning {
                    code: "phase_timeout_retry",
                    engine: sender,
                    round,
                    detail: step,
                },
            );
            self.journal.add_msgs_retried(1);
            let attempt = self.attempt;
            return Some(match active.phase() {
                Phase::WaitPtv => TimeoutAction::RetryCptv {
                    round,
                    sender,
                    amount: active.amount(),
                    attempt,
                },
                Phase::WaitAck => TimeoutAction::RetrySendStates {
                    round,
                    sender,
                    receiver,
                    parts: active.parts().to_vec(),
                    attempt,
                },
                Phase::Done => unreachable!("filtered above"),
            });
        }
        // Retries exhausted: abandon the round.
        let purpose = active.purpose();
        let (parts, held_since) = match active.phase() {
            Phase::WaitAck => (active.parts().to_vec(), Some(active.paused_at())),
            _ => (Vec::new(), None),
        };
        self.journal.record(
            now,
            AdaptEvent::ProtocolWarning {
                code: "round_aborted",
                engine: receiver,
                round,
                detail: step,
            },
        );
        self.journal.add_rounds_aborted(1);
        self.active_round = None;
        self.phase_deadline = None;
        self.relocations_aborted += 1;
        if purpose == RoundPurpose::Drain {
            // Drain-round aborts almost always mean the *sender* (the
            // draining engine) is sick, not the receiver — count them
            // toward the spill degradation instead of peer death.
            self.note_drain_abort();
        } else {
            let aborts = self.consecutive_aborts.entry(receiver).or_insert(0);
            *aborts += 1;
            if *aborts >= policy.peer_death_threshold && !self.dead_peers.contains(&receiver) {
                self.dead_peers.push(receiver);
                self.journal.record(
                    now,
                    AdaptEvent::ProtocolWarning {
                        code: "peer_declared_dead",
                        engine: receiver,
                        round,
                        detail: u64::from(*aborts),
                    },
                );
            }
        }
        Some(TimeoutAction::AbortRound {
            round,
            sender,
            receiver,
            parts,
            held_since,
        })
    }

    /// The id and amount of the active round (for issuing `Cptv`).
    pub fn active_round_info(&self) -> Option<(u64, EngineId, EngineId, u64)> {
        self.active_round
            .as_ref()
            .map(|r| (r.round(), r.sender(), r.receiver(), r.amount()))
    }

    /// True if `round` names a round that already finished (completed
    /// or aborted) — the signature of a late or duplicated message.
    fn is_stale_round(&self, round: u64) -> bool {
        round < self.next_round
            && self
                .active_round
                .as_ref()
                .is_none_or(|active| round != active.round())
    }

    /// Journal a tolerated protocol anomaly.
    fn warn(
        &self,
        code: &'static str,
        engine: EngineId,
        round: u64,
        detail: u64,
        now: VirtualTime,
    ) {
        self.journal.record(
            now,
            AdaptEvent::ProtocolWarning {
                code,
                engine,
                round,
                detail,
            },
        );
    }

    /// Step 2: the sender's partition list arrived at virtual time
    /// `now`.
    ///
    /// Returns `Ok(None)` for a late or duplicated message — a `Ptv`
    /// for a round that already finished, or a re-delivered `Ptv` for
    /// the active round — journaled as a warning instead of poisoning
    /// the coordinator (a retried message must never wedge adaptation).
    pub fn on_ptv(
        &mut self,
        from: EngineId,
        round: u64,
        parts: Vec<PartitionId>,
        now: VirtualTime,
    ) -> Result<Option<Action>> {
        if self.is_stale_round(round) || self.active_round.is_none() {
            self.warn("stale_ptv", from, round, 2, now);
            return Ok(None);
        }
        let active = self.active_round.as_mut().expect("checked above");
        if *active.phase() != Phase::WaitPtv && from == active.sender() {
            // Re-delivered Ptv for the round in flight: the first copy
            // already advanced the phase; this one is a no-op.
            self.warn("duplicate_ptv", from, round, 2, now);
            return Ok(None);
        }
        let (sender, receiver) = (active.sender(), active.receiver());
        let event_parts = parts.clone();
        let action = active.on_ptv(from, round, parts, now)?;
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 2,
                sender,
                receiver,
                parts: event_parts,
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        if matches!(action, Action::Abort) {
            let purpose = self
                .active_round
                .as_ref()
                .map_or(RoundPurpose::Balance, RelocationRound::purpose);
            self.active_round = None;
            self.phase_deadline = None;
            self.relocations_aborted += 1;
            if purpose == RoundPurpose::Drain {
                self.note_drain_abort();
            }
        } else {
            // Step 3 pauses immediately; the WaitAck phase starts now.
            self.arm_phase(now);
        }
        Ok(Some(action))
    }

    /// Step 6: the receiver's transfer ack arrived at virtual time
    /// `now`. Returns the final remap-and-resume action and closes the
    /// round.
    ///
    /// Returns `Ok(None)` for a late or duplicated ack (a retried
    /// transfer can deliver the same ack twice; the round may have
    /// completed — or aborted — by the time the second copy lands).
    pub fn on_transfer_ack(
        &mut self,
        from: EngineId,
        round: u64,
        now: VirtualTime,
    ) -> Result<Option<Action>> {
        if self.is_stale_round(round) || self.active_round.is_none() {
            self.warn("stale_transfer_ack", from, round, 6, now);
            return Ok(None);
        }
        let active = self.active_round.as_mut().expect("checked above");
        let (sender, receiver) = (active.sender(), active.receiver());
        let purpose = active.purpose();
        let action = active.on_transfer_ack(from, round)?;
        debug_assert!(active.is_done());
        self.journal.record(
            now,
            AdaptEvent::RelocationStep {
                round,
                step: 6,
                sender,
                receiver,
                parts: Vec::new(),
                bytes: 0,
                buffered_tuples: 0,
                load_ratio: 0.0,
            },
        );
        self.active_round = None;
        self.phase_deadline = None;
        self.relocations_completed += 1;
        // A completed round proves the receiver is alive.
        self.consecutive_aborts.insert(receiver, 0);
        match purpose {
            RoundPurpose::Drain => {
                if let Some(ctl) = self.drain.as_mut() {
                    ctl.moves += 1;
                    ctl.consecutive_aborts = 0;
                }
                self.journal.add_rebalance_moves(1);
            }
            RoundPurpose::JoinRebalance => self.journal.add_rebalance_moves(1),
            RoundPurpose::Balance => {}
        }
        Ok(Some(action))
    }

    /// Count a drain-round abort toward the forced-spill degradation.
    fn note_drain_abort(&mut self) {
        if let Some(ctl) = self.drain.as_mut() {
            ctl.consecutive_aborts += 1;
            if ctl.consecutive_aborts >= DRAIN_ABORTS_TO_DEGRADE {
                ctl.degraded = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;
    use dcape_common::time::VirtualDuration;

    fn imbalanced() -> ClusterStats {
        ClusterStats::new(vec![report(0, 1000, 1.0), report(1, 100, 1.0)])
    }

    fn lazy() -> GlobalCoordinator {
        GlobalCoordinator::new(&StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
        })
    }

    #[test]
    fn full_relocation_lifecycle() {
        let mut gc = lazy();
        assert!(!gc.relocation_active());
        let d = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap();
        let Decision::Relocate {
            sender,
            receiver,
            amount,
        } = d
        else {
            panic!("expected relocation, got {d:?}");
        };
        assert!(gc.relocation_active());
        let (round, s, r, a) = gc.active_round_info().unwrap();
        assert_eq!((s, r, a), (sender, receiver, amount));

        // While active, further evaluations do nothing.
        let d2 = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(d2, Decision::None);

        let action = gc
            .on_ptv(
                sender,
                round,
                vec![PartitionId(1), PartitionId(2)],
                VirtualTime::from_secs(3),
            )
            .unwrap();
        assert!(matches!(action, Some(Action::PauseAndTransfer { .. })));
        let action = gc
            .on_transfer_ack(receiver, round, VirtualTime::from_secs(4))
            .unwrap();
        assert!(matches!(action, Some(Action::RemapAndResume { .. })));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_completed(), 1);
        assert_eq!(gc.relocations_aborted(), 0);
    }

    #[test]
    fn abort_on_empty_ptv() {
        let mut gc = lazy();
        let Decision::Relocate { sender, .. } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        let action = gc
            .on_ptv(sender, round, vec![], VirtualTime::from_secs(2))
            .unwrap();
        assert_eq!(action, Some(Action::Abort));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_aborted(), 1);
        assert_eq!(gc.relocations_completed(), 0);
    }

    #[test]
    fn stale_and_duplicate_messages_are_warnings_not_errors() {
        let mut gc = lazy();
        gc.set_journal(JournalHandle::with_capacity(64));
        // No round at all: late messages are tolerated.
        assert_eq!(
            gc.on_ptv(EngineId(0), 0, vec![], VirtualTime::ZERO)
                .unwrap(),
            None
        );
        assert_eq!(
            gc.on_transfer_ack(EngineId(0), 0, VirtualTime::ZERO)
                .unwrap(),
            None
        );
        // Run a full round, then replay its messages: both are stale.
        let Decision::Relocate {
            sender, receiver, ..
        } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        // Duplicate Ptv while the round is in WaitAck: no-op.
        gc.on_ptv(
            sender,
            round,
            vec![PartitionId(1)],
            VirtualTime::from_secs(2),
        )
        .unwrap()
        .unwrap();
        assert_eq!(
            gc.on_ptv(
                sender,
                round,
                vec![PartitionId(1)],
                VirtualTime::from_secs(2)
            )
            .unwrap(),
            None
        );
        gc.on_transfer_ack(receiver, round, VirtualTime::from_secs(3))
            .unwrap()
            .unwrap();
        // Retried ack for the completed round: tolerated, still closed.
        assert_eq!(
            gc.on_transfer_ack(receiver, round, VirtualTime::from_secs(4))
                .unwrap(),
            None
        );
        assert_eq!(gc.relocations_completed(), 1);
        let warnings: Vec<_> = gc
            .journal
            .snapshot()
            .into_iter()
            .filter(|e| e.event.kind() == "protocol_warning")
            .collect();
        assert_eq!(warnings.len(), 4);
    }

    #[test]
    fn phase_timeout_retries_then_aborts() {
        let mut gc = lazy();
        gc.set_journal(JournalHandle::with_capacity(64));
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 2,
            peer_death_threshold: 2,
        });
        // Without an active round, no timeout fires.
        assert_eq!(gc.check_timeout(VirtualTime::from_secs(100)), None);
        let Decision::Relocate { sender, amount, .. } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        // Before the deadline: nothing.
        assert_eq!(gc.check_timeout(VirtualTime::from_millis(1500)), None);
        // First expiry: retry Cptv with attempt 1.
        assert_eq!(
            gc.check_timeout(VirtualTime::from_secs(2)),
            Some(TimeoutAction::RetryCptv {
                round,
                sender,
                amount,
                attempt: 1,
            })
        );
        assert_eq!(gc.current_attempt(), 1);
        // Second expiry: retry with attempt 2 (the cap).
        assert!(matches!(
            gc.check_timeout(VirtualTime::from_secs(3)),
            Some(TimeoutAction::RetryCptv { attempt: 2, .. })
        ));
        // Third expiry: retries exhausted, round aborts in WaitPtv
        // (nothing was paused).
        let abort = gc.check_timeout(VirtualTime::from_secs(4)).unwrap();
        assert!(matches!(
            &abort,
            TimeoutAction::AbortRound {
                parts,
                held_since: None,
                ..
            } if parts.is_empty()
        ));
        assert!(!gc.relocation_active());
        assert_eq!(gc.relocations_aborted(), 1);
        let c = gc.journal.counters().unwrap();
        assert_eq!(c.msgs_retried(), 2);
        assert_eq!(c.rounds_aborted(), 1);
        // No round anymore: the poll goes quiet.
        assert_eq!(gc.check_timeout(VirtualTime::from_secs(5)), None);
    }

    #[test]
    fn wait_ack_timeout_aborts_with_paused_parts() {
        let mut gc = lazy();
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 0,
            peer_death_threshold: 99,
        });
        let Decision::Relocate {
            sender, receiver, ..
        } = gc
            .evaluate(&imbalanced(), VirtualTime::from_secs(1))
            .unwrap()
        else {
            panic!()
        };
        let (round, ..) = gc.active_round_info().unwrap();
        gc.on_ptv(
            sender,
            round,
            vec![PartitionId(4)],
            VirtualTime::from_secs(2),
        )
        .unwrap()
        .unwrap();
        // The WaitAck phase re-armed at the Ptv; zero retries allowed,
        // so the first expiry aborts and carries the paused parts.
        let abort = gc.check_timeout(VirtualTime::from_secs(3)).unwrap();
        assert_eq!(
            abort,
            TimeoutAction::AbortRound {
                round,
                sender,
                receiver,
                parts: vec![PartitionId(4)],
                held_since: Some(VirtualTime::from_secs(2)),
            }
        );
    }

    #[test]
    fn repeated_aborts_declare_peer_dead_and_degrade_to_spill() {
        let mut gc = lazy();
        gc.set_retry_policy(RetryPolicy {
            phase_timeout: VirtualDuration::from_secs(1),
            max_retries: 0,
            peer_death_threshold: 2,
        });
        let mut now = VirtualTime::from_secs(1);
        for _ in 0..2 {
            let Decision::Relocate { .. } = gc.evaluate(&imbalanced(), now).unwrap() else {
                panic!()
            };
            now += VirtualDuration::from_secs(10);
            assert!(matches!(
                gc.check_timeout(now),
                Some(TimeoutAction::AbortRound { .. })
            ));
            now += VirtualDuration::from_secs(10);
        }
        assert_eq!(gc.dead_peers().len(), 1);
        // The same imbalance now degrades to a local force-spill at
        // the overloaded sender.
        let d = gc.evaluate(&imbalanced(), now).unwrap();
        assert!(
            matches!(d, Decision::ForceSpill { engine, .. } if engine == EngineId(0)),
            "expected degraded spill, got {d:?}"
        );
        assert_eq!(gc.force_spills_issued(), 1);
    }

    #[test]
    fn force_spill_counter() {
        let mut gc = GlobalCoordinator::new(&StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::ZERO,
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 30,
        });
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 950, 1.0)]);
        let d = gc.evaluate(&stats, VirtualTime::from_secs(1)).unwrap();
        assert!(matches!(d, Decision::ForceSpill { .. }));
        assert_eq!(gc.force_spills_issued(), 1);
        assert_eq!(gc.strategy_name(), "active-disk");
    }
}
