//! Virtual-time network cost model.
//!
//! The paper's relocations cross a private gigabit ethernet and are
//! observed to be cheap (§4.2: "the cost of our pair-wised state
//! relocation is low in the context of our test environment … expected
//! to be higher if the underlying network is slow"). The simulated
//! driver charges relocation transfers through this model, so the
//! slow-network regime is a config change, not a code change.

use dcape_common::time::VirtualDuration;

/// Point-to-point transfer cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way message latency in virtual milliseconds.
    pub latency_ms: u64,
    /// Throughput in bytes per virtual millisecond.
    pub bytes_per_ms: u64,
}

impl NetworkModel {
    /// Gigabit ethernet (the paper's cluster): ~0.1 ms latency,
    /// ~125 MB/s ⇒ 125 000 bytes/ms. Latency rounds up to 1 ms on our
    /// millisecond clock.
    pub fn gigabit() -> Self {
        NetworkModel {
            latency_ms: 1,
            bytes_per_ms: 125_000,
        }
    }

    /// A slow, high-latency network (WAN-ish) for the sensitivity
    /// ablation.
    pub fn slow_wan() -> Self {
        NetworkModel {
            latency_ms: 50,
            bytes_per_ms: 1_250,
        }
    }

    /// A free network (isolates algorithmic effects).
    pub fn free() -> Self {
        NetworkModel {
            latency_ms: 0,
            bytes_per_ms: u64::MAX,
        }
    }

    /// Virtual time to move `bytes` in one transfer.
    pub fn transfer_cost(&self, bytes: u64) -> VirtualDuration {
        let transfer = if self.bytes_per_ms == u64::MAX {
            0
        } else {
            bytes.div_ceil(self.bytes_per_ms.max(1))
        };
        VirtualDuration::from_millis(self.latency_ms + transfer)
    }

    /// Cost of one control message (latency only).
    pub fn control_cost(&self) -> VirtualDuration {
        VirtualDuration::from_millis(self.latency_ms)
    }

    /// End-to-end cost of one relocation round moving `bytes`: the
    /// state transfer plus a control message for **every**
    /// message-bearing protocol step — Cptv (1), Ptv (2), SendStates
    /// (3/4), TransferAck (6) and Resume (7/8). Charging all of them
    /// uniformly keeps the sim and threaded horizons in agreement under
    /// high latency; charging only step 1 (the old behaviour) made
    /// `slow_wan` rounds look 4 control-latencies cheaper in the sim
    /// than on the wire.
    pub fn relocation_round_cost(&self, bytes: u64) -> VirtualDuration {
        const CONTROL_STEPS: u64 = 5;
        VirtualDuration::from_millis(
            self.transfer_cost(bytes).as_millis() + CONTROL_STEPS * self.latency_ms,
        )
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        Self::gigabit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gigabit_moves_60mb_in_about_half_a_second() {
        let n = NetworkModel::gigabit();
        let cost = n.transfer_cost(60_000_000);
        assert_eq!(cost.as_millis(), 481);
    }

    #[test]
    fn slow_wan_is_much_slower() {
        let fast = NetworkModel::gigabit().transfer_cost(1_000_000);
        let slow = NetworkModel::slow_wan().transfer_cost(1_000_000);
        assert!(slow.as_millis() > fast.as_millis() * 10);
    }

    #[test]
    fn free_network_costs_nothing() {
        let n = NetworkModel::free();
        assert_eq!(n.transfer_cost(u64::MAX).as_millis(), 0);
        assert_eq!(n.control_cost().as_millis(), 0);
    }

    #[test]
    fn round_cost_charges_every_control_step() {
        // One transfer + five control messages (steps 1, 2, 3/4, 6,
        // 7/8). Under slow_wan the difference is 4 × 50 ms per round —
        // exactly the gap the sim horizon used to be short by.
        let wan = NetworkModel::slow_wan();
        let round = wan.relocation_round_cost(1_000_000).as_millis();
        let old = (wan.transfer_cost(1_000_000) + wan.control_cost()).as_millis();
        assert_eq!(round, old + 4 * wan.latency_ms);
        // On a free network the round is still free.
        assert_eq!(
            NetworkModel::free()
                .relocation_round_cost(1 << 30)
                .as_millis(),
            0
        );
    }

    #[test]
    fn zero_throughput_guarded() {
        let n = NetworkModel {
            latency_ms: 2,
            bytes_per_ms: 0,
        };
        assert_eq!(n.transfer_cost(5).as_millis(), 7);
    }
}
