//! Relocation planning: when and between whom to move state.
//!
//! §4: "Various schemes of relocation among a set of machines have been
//! studied in the literature. Here we proceed with a simple model,
//! namely a pair-wised state relocation scheme. Other models could
//! fairly easily be incorporated into our framework." This module is
//! that incorporation point:
//!
//! * [`RelocationScheme::PairWise`] — the paper's scheme: one move of
//!   `(M_max − M_least)/2` bytes from the most- to the least-loaded
//!   engine per trigger.
//! * [`RelocationScheme::GlobalRebalance`] — when the trigger fires,
//!   plan a whole set of moves that brings every engine toward the mean
//!   load (greedy largest-surplus → largest-deficit matching), then
//!   execute them as consecutive relocation rounds (the protocol still
//!   moves one pair at a time — Figure 8 is per-pair).

use dcape_common::ids::EngineId;
use dcape_common::time::{VirtualDuration, VirtualTime};

use crate::stats::ClusterStats;
use crate::strategy::Decision;

/// Which engines exchange state when the relocation trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationScheme {
    /// The paper's pair-wise halving.
    PairWise,
    /// Plan a full mean-rebalancing set of pair moves per trigger.
    GlobalRebalance,
}

/// Stateful relocation planner shared by the lazy- and active-disk
/// strategies.
#[derive(Debug)]
pub struct RelocationPlanner {
    theta_r: f64,
    tau_m: VirtualDuration,
    scheme: RelocationScheme,
    last_trigger: Option<VirtualTime>,
    /// Remaining planned moves (GlobalRebalance only).
    queue: Vec<(EngineId, EngineId, u64)>,
    triggered: u64,
}

impl RelocationPlanner {
    /// Create a planner.
    pub fn new(theta_r: f64, tau_m: VirtualDuration, scheme: RelocationScheme) -> Self {
        assert!((0.0..=1.0).contains(&theta_r), "theta_r must be in [0, 1]");
        RelocationPlanner {
            theta_r,
            tau_m,
            scheme,
            last_trigger: None,
            queue: Vec::new(),
            triggered: 0,
        }
    }

    /// Relocation triggers so far (a GlobalRebalance plan counts once).
    pub fn triggered(&self) -> u64 {
        self.triggered
    }

    /// Moves still queued from the last plan.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Next relocation decision, if any. Called only when no round is in
    /// flight.
    pub fn next(&mut self, stats: &ClusterStats, now: VirtualTime) -> Option<Decision> {
        // Drain a queued plan first — these moves were already decided.
        if let Some((sender, receiver, amount)) = self.queue.pop() {
            return Some(Decision::Relocate {
                sender,
                receiver,
                amount,
            });
        }
        if stats.len() < 2 {
            return None;
        }
        if let Some(last) = self.last_trigger {
            if now.since(last) < self.tau_m {
                return None;
            }
        }
        if stats.load_ratio() >= self.theta_r {
            return None;
        }
        match self.scheme {
            RelocationScheme::PairWise => {
                let max = stats.max_load()?;
                let min = stats.min_load()?;
                let amount = (max.memory_used - min.memory_used) / 2;
                if amount == 0 || max.engine == min.engine {
                    return None;
                }
                self.last_trigger = Some(now);
                self.triggered += 1;
                Some(Decision::Relocate {
                    sender: max.engine,
                    receiver: min.engine,
                    amount,
                })
            }
            RelocationScheme::GlobalRebalance => {
                let plan = plan_rebalance(stats);
                let mut plan = plan;
                let first = plan.pop()?;
                // Remaining moves execute on subsequent evaluations.
                self.queue = plan;
                self.last_trigger = Some(now);
                self.triggered += 1;
                Some(Decision::Relocate {
                    sender: first.0,
                    receiver: first.1,
                    amount: first.2,
                })
            }
        }
    }
}

/// Compute a greedy mean-rebalancing move set: surpluses (load above the
/// mean) matched against deficits, largest first. Returned in reverse
/// execution order (callers `pop()`).
pub fn plan_rebalance(stats: &ClusterStats) -> Vec<(EngineId, EngineId, u64)> {
    let n = stats.len() as u64;
    if n < 2 {
        return Vec::new();
    }
    let mean = stats.total_memory_used() / n;
    let mut surpluses: Vec<(EngineId, u64)> = Vec::new();
    let mut deficits: Vec<(EngineId, u64)> = Vec::new();
    for r in stats.reports() {
        if r.memory_used > mean {
            surpluses.push((r.engine, r.memory_used - mean));
        } else if r.memory_used < mean {
            deficits.push((r.engine, mean - r.memory_used));
        }
    }
    surpluses.sort_by_key(|&(e, s)| (std::cmp::Reverse(s), e));
    deficits.sort_by_key(|&(e, d)| (std::cmp::Reverse(d), e));
    let mut moves = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < surpluses.len() && j < deficits.len() {
        let take = surpluses[i].1.min(deficits[j].1);
        if take > 0 {
            moves.push((surpluses[i].0, deficits[j].0, take));
        }
        surpluses[i].1 -= take;
        deficits[j].1 -= take;
        if surpluses[i].1 == 0 {
            i += 1;
        }
        if deficits[j].1 == 0 {
            j += 1;
        }
    }
    // Reverse so `pop()` yields execution order (largest move first).
    moves.reverse();
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;

    fn stats(loads: &[u64]) -> ClusterStats {
        ClusterStats::new(
            loads
                .iter()
                .enumerate()
                .map(|(i, &m)| report(i as u16, m, 1.0))
                .collect(),
        )
    }

    #[test]
    fn pairwise_matches_paper_formula() {
        let mut p = RelocationPlanner::new(0.8, VirtualDuration::ZERO, RelocationScheme::PairWise);
        let d = p
            .next(&stats(&[1000, 200]), VirtualTime::from_secs(1))
            .unwrap();
        assert_eq!(
            d,
            Decision::Relocate {
                sender: EngineId(0),
                receiver: EngineId(1),
                amount: 400,
            }
        );
        assert_eq!(p.triggered(), 1);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn plan_rebalance_matches_surplus_to_deficit() {
        let s = stats(&[100, 80, 20, 0]);
        // mean = 50; surpluses: e0 +50, e1 +30; deficits: e3 50, e2 30.
        let mut plan = plan_rebalance(&s);
        assert_eq!(plan.pop(), Some((EngineId(0), EngineId(3), 50)));
        assert_eq!(plan.pop(), Some((EngineId(1), EngineId(2), 30)));
        assert_eq!(plan.pop(), None);
    }

    #[test]
    fn plan_rebalance_splits_one_surplus_across_deficits() {
        let s = stats(&[90, 30, 30]);
        // mean = 50; e0 +40; deficits: e1 20, e2 20.
        let mut plan = plan_rebalance(&s);
        let a = plan.pop().unwrap();
        let b = plan.pop().unwrap();
        assert_eq!(a.0, EngineId(0));
        assert_eq!(b.0, EngineId(0));
        assert_eq!(a.2 + b.2, 40);
        assert!(plan.pop().is_none());
    }

    #[test]
    fn global_rebalance_drains_plan_across_calls() {
        let mut p = RelocationPlanner::new(
            0.8,
            VirtualDuration::from_secs(45),
            RelocationScheme::GlobalRebalance,
        );
        let s = stats(&[100, 80, 20, 0]);
        let d1 = p.next(&s, VirtualTime::from_secs(1)).unwrap();
        assert_eq!(
            d1,
            Decision::Relocate {
                sender: EngineId(0),
                receiver: EngineId(3),
                amount: 50,
            }
        );
        assert_eq!(p.queued(), 1);
        // Queued move executes immediately on the next call, ignoring
        // tau_m (it belongs to the same plan).
        let d2 = p.next(&s, VirtualTime::from_secs(2)).unwrap();
        assert_eq!(
            d2,
            Decision::Relocate {
                sender: EngineId(1),
                receiver: EngineId(2),
                amount: 30,
            }
        );
        // Plan drained; a fresh trigger now respects tau_m.
        assert_eq!(p.next(&s, VirtualTime::from_secs(3)), None);
        assert!(p.next(&s, VirtualTime::from_secs(50)).is_some());
        assert_eq!(p.triggered(), 2);
    }

    #[test]
    fn quiet_when_balanced_or_single_engine() {
        let mut p = RelocationPlanner::new(0.8, VirtualDuration::ZERO, RelocationScheme::PairWise);
        assert_eq!(p.next(&stats(&[100, 95]), VirtualTime::from_secs(1)), None);
        assert_eq!(p.next(&stats(&[100]), VirtualTime::from_secs(1)), None);
        assert!(plan_rebalance(&stats(&[100])).is_empty());
        assert!(plan_rebalance(&stats(&[50, 50])).is_empty());
    }

    #[test]
    fn tau_m_respected_for_new_triggers() {
        let mut p = RelocationPlanner::new(
            0.8,
            VirtualDuration::from_secs(45),
            RelocationScheme::PairWise,
        );
        assert!(p
            .next(&stats(&[1000, 100]), VirtualTime::from_secs(1))
            .is_some());
        assert_eq!(
            p.next(&stats(&[1000, 100]), VirtualTime::from_secs(30)),
            None
        );
        assert!(p
            .next(&stats(&[1000, 100]), VirtualTime::from_secs(46))
            .is_some());
    }
}
