//! Elastic rebalancing planner: moves state toward freshly-joined
//! engines via ordinary relocation rounds.
//!
//! A joining engine arrives with zero state; the regular strategies
//! (lazy/active-disk) would eventually even it out, but only when the
//! cluster-wide `M_least/M_max` ratio crosses θ_r. The planner instead
//! drains load toward the joiner proactively, weighing move **cost**
//! (state bytes shipped — the same bytes `transfer_bytes` accounts)
//! against **benefit** (the sender's `P_output/P_size` productivity:
//! shedding from a productive overloaded engine frees memory that keeps
//! producing on the joiner). A hysteresis band around the mean load plus
//! a cooldown between moves guarantee the planner never thrashes: a move
//! is only proposed while the receiver sits *below* the band and the
//! sender *above* it, and each move strictly narrows that gap.

use dcape_common::ids::EngineId;
use dcape_common::time::{VirtualDuration, VirtualTime};

use crate::stats::ClusterStats;

/// One planned elastic move (executed as a normal 8-step relocation
/// round with [`RoundPurpose::JoinRebalance`]).
///
/// [`RoundPurpose::JoinRebalance`]: crate::relocation::RoundPurpose
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceMove {
    /// Overloaded engine shedding state.
    pub sender: EngineId,
    /// The under-loaded joiner receiving it.
    pub receiver: EngineId,
    /// Bytes to move (`(M_sender − M_receiver) / 2`).
    pub amount: u64,
}

/// Hysteresis-banded planner for join-time rebalancing.
#[derive(Debug)]
pub struct RebalancePlanner {
    /// Half-width of the no-move band around the mean load, as a
    /// fraction (0.15 ⇒ receivers below 85 % of mean, senders above
    /// 115 %).
    hysteresis: f64,
    /// Moves smaller than this are not worth a relocation round's
    /// pause/replay cost.
    min_move_bytes: u64,
    /// Minimum spacing between planned moves (the elastic τ_m).
    cooldown: VirtualDuration,
    last_move: Option<VirtualTime>,
    moves_planned: u64,
}

impl RebalancePlanner {
    /// Planner with explicit tuning.
    pub fn new(hysteresis: f64, min_move_bytes: u64, cooldown: VirtualDuration) -> Self {
        RebalancePlanner {
            hysteresis,
            min_move_bytes,
            cooldown,
            last_move: None,
            moves_planned: 0,
        }
    }

    /// Moves proposed so far.
    pub fn moves_planned(&self) -> u64 {
        self.moves_planned
    }

    /// Propose at most one move toward a joiner.
    ///
    /// `stats` covers every participating engine's latest report;
    /// `receivers` lists the admitted-and-ready joiners still eligible
    /// as targets (the coordinator excludes fenced engines and joiners
    /// whose `JoinReady` has not arrived). Returns `None` while the
    /// cluster is inside the hysteresis band, during the cooldown, or
    /// when the best move is below `min_move_bytes`.
    pub fn plan(
        &mut self,
        stats: &ClusterStats,
        receivers: &[EngineId],
        now: VirtualTime,
    ) -> Option<RebalanceMove> {
        if receivers.is_empty() || stats.len() < 2 {
            return None;
        }
        if let Some(last) = self.last_move {
            if now < last + self.cooldown {
                return None;
            }
        }
        let mean = stats.total_memory_used() as f64 / stats.len() as f64;
        let low = mean * (1.0 - self.hysteresis);
        let high = mean * (1.0 + self.hysteresis);

        // Receiver: the emptiest eligible joiner, and only while it is
        // genuinely below the band (ties break to the lowest id).
        let receiver = receivers
            .iter()
            .filter_map(|e| stats.engine(*e))
            .filter(|r| (r.memory_used as f64) < low)
            .min_by(|a, b| {
                a.memory_used
                    .cmp(&b.memory_used)
                    .then(a.engine.cmp(&b.engine))
            })?;

        // Sender: above the band, preferring the most *productive*
        // overloaded engine — its groups keep producing once resident
        // on the joiner, so the shipped bytes buy the most output
        // (cost = bytes, benefit = P_output/P_size). Ties break to the
        // larger memory, then the lower id.
        let sender = stats
            .reports()
            .iter()
            .filter(|r| r.engine != receiver.engine)
            .filter(|r| (r.memory_used as f64) > high)
            .max_by(|a, b| {
                a.avg_productivity_rate
                    .partial_cmp(&b.avg_productivity_rate)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.memory_used.cmp(&b.memory_used))
                    .then(b.engine.cmp(&a.engine))
            })?;

        let amount = (sender.memory_used - receiver.memory_used) / 2;
        if amount < self.min_move_bytes {
            return None;
        }
        self.last_move = Some(now);
        self.moves_planned += 1;
        Some(RebalanceMove {
            sender: sender.engine,
            receiver: receiver.engine,
            amount,
        })
    }
}

impl Default for RebalancePlanner {
    /// 15 % band, 4 KiB minimum move, 5 s cooldown.
    fn default() -> Self {
        RebalancePlanner::new(0.15, 4096, VirtualDuration::from_secs(5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;

    fn secs(s: u64) -> VirtualTime {
        VirtualTime::from_millis(s * 1000)
    }

    #[test]
    fn moves_toward_empty_joiner() {
        let mut p = RebalancePlanner::new(0.15, 100, VirtualDuration::from_secs(5));
        let stats = ClusterStats::new(vec![
            report(0, 8000, 2.0),
            report(1, 6000, 9.0),
            report(2, 0, 0.0),
        ]);
        let m = p.plan(&stats, &[EngineId(2)], secs(1)).unwrap();
        // Engine 1 is above the band and the most productive sender.
        assert_eq!(m.sender, EngineId(1));
        assert_eq!(m.receiver, EngineId(2));
        assert_eq!(m.amount, 3000);
        assert_eq!(p.moves_planned(), 1);
    }

    #[test]
    fn balanced_cluster_is_left_alone() {
        let mut p = RebalancePlanner::default();
        let stats = ClusterStats::new(vec![
            report(0, 5000, 1.0),
            report(1, 5100, 1.0),
            report(2, 4900, 1.0),
        ]);
        assert!(p.plan(&stats, &[EngineId(2)], secs(1)).is_none());
    }

    #[test]
    fn cooldown_spaces_moves() {
        let mut p = RebalancePlanner::new(0.15, 100, VirtualDuration::from_secs(5));
        let stats = ClusterStats::new(vec![report(0, 9000, 2.0), report(1, 0, 0.0)]);
        assert!(p.plan(&stats, &[EngineId(1)], secs(1)).is_some());
        assert!(p.plan(&stats, &[EngineId(1)], secs(3)).is_none());
        assert!(p.plan(&stats, &[EngineId(1)], secs(7)).is_some());
    }

    #[test]
    fn tiny_moves_are_skipped() {
        let mut p = RebalancePlanner::new(0.15, 10_000, VirtualDuration::from_secs(5));
        let stats = ClusterStats::new(vec![report(0, 9000, 2.0), report(1, 0, 0.0)]);
        assert!(p.plan(&stats, &[EngineId(1)], secs(1)).is_none());
    }

    #[test]
    fn no_receivers_no_move() {
        let mut p = RebalancePlanner::default();
        let stats = ClusterStats::new(vec![report(0, 9000, 2.0), report(1, 0, 0.0)]);
        assert!(p.plan(&stats, &[], secs(1)).is_none());
    }

    #[test]
    fn receiver_inside_band_stops_the_flow() {
        // After enough moves the joiner sits inside the band — the
        // planner goes quiet instead of thrashing state back and forth.
        let mut p = RebalancePlanner::new(0.15, 100, VirtualDuration::from_secs(0));
        let stats = ClusterStats::new(vec![report(0, 5500, 2.0), report(1, 4500, 1.0)]);
        assert!(p.plan(&stats, &[EngineId(1)], secs(1)).is_none());
    }
}
