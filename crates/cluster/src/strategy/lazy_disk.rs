//! The lazy-disk strategy (Algorithm 1).

use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::JournalHandle;

use crate::stats::ClusterStats;
use crate::strategy::planner::{RelocationPlanner, RelocationScheme};
use crate::strategy::{AdaptationStrategy, Decision};

/// Lazy-disk: "state spill is postponed until there is no main memory in
/// the cluster that can hold the states from overloaded machines"
/// (§5.1). Globally this is pure relocation — spill happens only as the
/// engines' own last-resort `ss_timer` overflow reaction.
#[derive(Debug)]
pub struct LazyDisk {
    planner: RelocationPlanner,
    journal: JournalHandle,
}

impl LazyDisk {
    /// Create with the relocation threshold θ_r and minimum spacing τ_m
    /// (pair-wise scheme, as in the paper).
    pub fn new(theta_r: f64, tau_m: VirtualDuration) -> Self {
        Self::with_scheme(theta_r, tau_m, RelocationScheme::PairWise)
    }

    /// Create with an explicit relocation scheme.
    pub fn with_scheme(theta_r: f64, tau_m: VirtualDuration, scheme: RelocationScheme) -> Self {
        LazyDisk {
            planner: RelocationPlanner::new(theta_r, tau_m, scheme),
            journal: JournalHandle::disabled(),
        }
    }

    /// Relocations triggered so far.
    pub fn relocations_triggered(&self) -> u64 {
        self.planner.triggered()
    }
}

impl AdaptationStrategy for LazyDisk {
    fn name(&self) -> &'static str {
        "lazy-disk"
    }

    fn decide(&mut self, stats: &ClusterStats, now: VirtualTime, active: bool) -> Decision {
        self.journal.record(now, stats.sample_event());
        if active {
            return Decision::None;
        }
        self.planner.next(stats, now).unwrap_or(Decision::None)
    }

    fn attach_journal(&mut self, journal: JournalHandle) {
        self.journal = journal;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;
    use dcape_common::ids::EngineId;

    fn imbalanced() -> ClusterStats {
        ClusterStats::new(vec![report(0, 1000, 1.0), report(1, 100, 1.0)])
    }

    #[test]
    fn relocates_on_imbalance_and_counts() {
        let mut s = LazyDisk::new(0.8, VirtualDuration::from_secs(45));
        let d = s.decide(&imbalanced(), VirtualTime::from_secs(50), false);
        assert_eq!(
            d,
            Decision::Relocate {
                sender: EngineId(0),
                receiver: EngineId(1),
                amount: 450,
            }
        );
        assert_eq!(s.relocations_triggered(), 1);
    }

    #[test]
    fn suppressed_while_round_active() {
        let mut s = LazyDisk::new(0.8, VirtualDuration::ZERO);
        assert_eq!(
            s.decide(&imbalanced(), VirtualTime::from_secs(50), true),
            Decision::None
        );
        assert_eq!(s.relocations_triggered(), 0);
    }

    #[test]
    fn never_force_spills() {
        // Even with a huge productivity gap, lazy-disk only relocates.
        let mut s = LazyDisk::new(0.8, VirtualDuration::ZERO);
        let balanced_gap = ClusterStats::new(vec![report(0, 1000, 100.0), report(1, 950, 1.0)]);
        assert_eq!(
            s.decide(&balanced_gap, VirtualTime::from_secs(50), false),
            Decision::None
        );
    }

    #[test]
    #[should_panic(expected = "theta_r")]
    fn bad_theta_rejected() {
        let _ = LazyDisk::new(1.5, VirtualDuration::ZERO);
    }
}
