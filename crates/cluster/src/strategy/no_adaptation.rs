//! The "no-relocation" baseline.

use dcape_common::time::VirtualTime;

use crate::stats::ClusterStats;
use crate::strategy::{AdaptationStrategy, Decision};

/// Never intervenes globally. Engines still perform *local* spill when
/// their own memory overflows — this is the paper's "no-relocation"
/// comparison case (Figures 11 and 12).
#[derive(Debug, Default)]
pub struct NoAdaptation;

impl AdaptationStrategy for NoAdaptation {
    fn name(&self) -> &'static str {
        "no-adaptation"
    }

    fn decide(&mut self, _stats: &ClusterStats, _now: VirtualTime, _active: bool) -> Decision {
        Decision::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;

    #[test]
    fn always_none() {
        let mut s = NoAdaptation;
        let stats = ClusterStats::new(vec![report(0, 10_000, 1.0), report(1, 0, 9.0)]);
        assert_eq!(s.decide(&stats, VirtualTime::ZERO, false), Decision::None);
        assert_eq!(s.name(), "no-adaptation");
    }
}
