//! Integrated adaptation strategies (§5 of the paper).
//!
//! A strategy is the *global* half of the adaptation logic: given the
//! latest cluster statistics it decides whether to trigger a relocation
//! (and between whom), force a spill (active-disk only), or do nothing.
//! The *local* halves — picking concrete partition groups, executing the
//! spill — live in `dcape-engine`.
//!
//! * [`NoAdaptation`] — the "no-relocation" baseline: engines still
//!   spill locally when their own memory overflows, but the coordinator
//!   never intervenes.
//! * [`LazyDisk`] — Algorithm 1: relocate whenever
//!   `M_least/M_max < θ_r` (subject to the τ_m spacing of §4.2); spill
//!   remains a purely local decision.
//! * [`ActiveDisk`] — Algorithm 2: as lazy-disk, but when loads are
//!   balanced and the productivity gap `R_max/R_min` exceeds λ, force
//!   the least productive engine to spill, freeing aggregate memory for
//!   the productive partitions — bounded by the force-spill cap
//!   (the paper's `M_query − M_cluster` estimate, 100 MB in their runs).

mod active_disk;
mod lazy_disk;
mod no_adaptation;
pub mod planner;
pub mod rebalance;

pub use active_disk::ActiveDisk;
pub use lazy_disk::LazyDisk;
pub use no_adaptation::NoAdaptation;
pub use planner::{RelocationPlanner, RelocationScheme};
pub use rebalance::{RebalanceMove, RebalancePlanner};

use dcape_common::ids::EngineId;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::JournalHandle;

use crate::stats::ClusterStats;

/// A global adaptation decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Nothing to do this round.
    None,
    /// Start a relocation: move `amount` bytes from `sender` to
    /// `receiver` (the pair-wise scheme of §4).
    Relocate {
        /// Overloaded engine (`M_max`).
        sender: EngineId,
        /// Underloaded engine (`M_least`).
        receiver: EngineId,
        /// `(M_max - M_least) / 2` bytes.
        amount: u64,
    },
    /// Force `engine` to spill `amount` bytes (active-disk only).
    ForceSpill {
        /// The low-productivity engine.
        engine: EngineId,
        /// Bytes to push.
        amount: u64,
    },
}

/// The global half of an adaptation strategy.
pub trait AdaptationStrategy: std::fmt::Debug + Send {
    /// Human-readable name (report labels).
    fn name(&self) -> &'static str;

    /// Inspect the latest statistics and decide.
    ///
    /// Called at every coordinator evaluation tick (`sr_timer` /
    /// `lb_timer` expiry); must be cheap. `relocation_active` is true
    /// while a relocation round is still in flight — strategies never
    /// start overlapping adaptations.
    fn decide(
        &mut self,
        stats: &ClusterStats,
        now: VirtualTime,
        relocation_active: bool,
    ) -> Decision;

    /// Give the strategy a journal to record [`AdaptEvent::StatsSample`]
    /// snapshots of the inputs it decides on. Default: ignore it.
    ///
    /// [`AdaptEvent::StatsSample`]: dcape_metrics::journal::AdaptEvent
    fn attach_journal(&mut self, _journal: JournalHandle) {}
}

/// Declarative strategy configuration (what experiments specify).
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyConfig {
    /// No global adaptation.
    NoAdaptation,
    /// Lazy-disk (Algorithm 1).
    LazyDisk {
        /// Relocation trigger threshold θ_r.
        theta_r: f64,
        /// Minimum spacing between relocations τ_m.
        tau_m: VirtualDuration,
    },
    /// Lazy-disk with the global-rebalance relocation scheme (multiple
    /// planned pair moves per trigger — §4's "other models").
    LazyDiskRebalance {
        /// Relocation trigger threshold θ_r.
        theta_r: f64,
        /// Minimum spacing between plan triggers τ_m.
        tau_m: VirtualDuration,
    },
    /// Active-disk (Algorithm 2).
    ActiveDisk {
        /// Relocation trigger threshold θ_r.
        theta_r: f64,
        /// Minimum spacing between relocations τ_m.
        tau_m: VirtualDuration,
        /// Productivity-gap trigger λ.
        lambda: f64,
        /// Fraction of the target engine's memory to force-spill per
        /// adaptation (`computeAmountToSpill`).
        spill_fraction: f64,
        /// Cap on cumulative forced-spill bytes (the paper's
        /// `M_query − M_cluster` bound; 100 MB in their experiments).
        force_spill_cap: u64,
    },
}

impl StrategyConfig {
    /// Paper-default lazy-disk: θ_r = 0.8, τ_m = 45 s.
    pub fn lazy_default() -> Self {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    }

    /// Paper-default active-disk: θ_r = 0.8, τ_m = 45 s, λ = 2.
    pub fn active_default(force_spill_cap: u64) -> Self {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap,
        }
    }

    /// Instantiate the strategy.
    pub fn build(&self) -> Box<dyn AdaptationStrategy> {
        match self {
            StrategyConfig::NoAdaptation => Box::new(NoAdaptation),
            StrategyConfig::LazyDisk { theta_r, tau_m } => {
                Box::new(LazyDisk::new(*theta_r, *tau_m))
            }
            StrategyConfig::LazyDiskRebalance { theta_r, tau_m } => Box::new(
                LazyDisk::with_scheme(*theta_r, *tau_m, RelocationScheme::GlobalRebalance),
            ),
            StrategyConfig::ActiveDisk {
                theta_r,
                tau_m,
                lambda,
                spill_fraction,
                force_spill_cap,
            } => Box::new(ActiveDisk::new(
                *theta_r,
                *tau_m,
                *lambda,
                *spill_fraction,
                *force_spill_cap,
            )),
        }
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use dcape_common::ids::EngineId;
    use dcape_common::time::VirtualTime;
    use dcape_engine::stats::EngineStatsReport;

    /// Build a stats report with the fields strategies read.
    pub fn report(engine: u16, mem: u64, rate: f64) -> EngineStatsReport {
        EngineStatsReport {
            engine: EngineId(engine),
            at: VirtualTime::ZERO,
            memory_used: mem,
            memory_budget: 10_000,
            num_groups: 10,
            window_output: (rate * 10.0) as u64,
            total_output: 0,
            avg_productivity_rate: rate,
            spilled_bytes: 0,
            spill_count: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_builders_produce_named_strategies() {
        assert_eq!(StrategyConfig::NoAdaptation.build().name(), "no-adaptation");
        assert_eq!(StrategyConfig::lazy_default().build().name(), "lazy-disk");
        assert_eq!(
            StrategyConfig::active_default(100).build().name(),
            "active-disk"
        );
        let rebalance = StrategyConfig::LazyDiskRebalance {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        };
        assert_eq!(rebalance.build().name(), "lazy-disk");
    }
}
