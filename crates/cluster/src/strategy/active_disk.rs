//! The active-disk strategy (Algorithm 2).

use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_metrics::journal::JournalHandle;

use crate::stats::ClusterStats;
use crate::strategy::planner::{RelocationPlanner, RelocationScheme};
use crate::strategy::{AdaptationStrategy, Decision};

/// Active-disk: relocation first (as lazy-disk); when loads are already
/// balanced (`M_least/M_max ≥ θ_r`) but the productivity gap
/// `R_max/R_min` exceeds λ, proactively force the least productive
/// engine to spill, freeing aggregate memory for productive partitions
/// (§5.3). Cumulative forced spills are capped — "pushing more states
/// than necessary could be counter-productive" (§5.3/§5.4).
#[derive(Debug)]
pub struct ActiveDisk {
    planner: RelocationPlanner,
    lambda: f64,
    spill_fraction: f64,
    force_spill_cap: u64,
    forced_bytes: u64,
    force_spills_triggered: u64,
    journal: JournalHandle,
}

impl ActiveDisk {
    /// Create with relocation threshold θ_r, spacing τ_m, productivity
    /// trigger λ, per-adaptation spill fraction, and the cumulative
    /// forced-spill byte cap.
    pub fn new(
        theta_r: f64,
        tau_m: VirtualDuration,
        lambda: f64,
        spill_fraction: f64,
        force_spill_cap: u64,
    ) -> Self {
        assert!(lambda >= 1.0, "lambda must be >= 1");
        assert!(
            spill_fraction > 0.0 && spill_fraction <= 1.0,
            "spill_fraction must be in (0, 1]"
        );
        ActiveDisk {
            planner: RelocationPlanner::new(theta_r, tau_m, RelocationScheme::PairWise),
            lambda,
            spill_fraction,
            force_spill_cap,
            forced_bytes: 0,
            force_spills_triggered: 0,
            journal: JournalHandle::disabled(),
        }
    }

    /// Relocations triggered so far.
    pub fn relocations_triggered(&self) -> u64 {
        self.planner.triggered()
    }

    /// Forced spills triggered so far.
    pub fn force_spills_triggered(&self) -> u64 {
        self.force_spills_triggered
    }

    /// Cumulative forced-spill bytes.
    pub fn forced_bytes(&self) -> u64 {
        self.forced_bytes
    }
}

impl AdaptationStrategy for ActiveDisk {
    fn name(&self) -> &'static str {
        "active-disk"
    }

    fn decide(&mut self, stats: &ClusterStats, now: VirtualTime, active: bool) -> Decision {
        self.journal.record(now, stats.sample_event());
        if active {
            return Decision::None;
        }
        // Lines 5–11: relocation has priority.
        if let Some(d) = self.planner.next(stats, now) {
            return d;
        }
        // Lines 12–18: loads balanced; compare productivity rates.
        if stats.len() < 2 {
            return Decision::None;
        }
        let ratio = stats.productivity_ratio();
        // NaN-safe: only proceed when the gap strictly exceeds lambda.
        if ratio.partial_cmp(&self.lambda) != Some(std::cmp::Ordering::Greater) {
            return Decision::None;
        }
        let Some(min_prod) = stats.min_productivity() else {
            return Decision::None;
        };
        // `computeAmountToSpill`, bounded by the remaining cap.
        let want = ((min_prod.memory_used as f64) * self.spill_fraction) as u64;
        let remaining_cap = self.force_spill_cap.saturating_sub(self.forced_bytes);
        let amount = want.min(remaining_cap);
        if amount == 0 {
            return Decision::None;
        }
        self.forced_bytes += amount;
        self.force_spills_triggered += 1;
        Decision::ForceSpill {
            engine: min_prod.engine,
            amount,
        }
    }

    fn attach_journal(&mut self, journal: JournalHandle) {
        self.journal = journal;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::test_support::report;
    use dcape_common::ids::EngineId;

    fn active() -> ActiveDisk {
        ActiveDisk::new(0.8, VirtualDuration::from_secs(45), 2.0, 0.5, 10_000)
    }

    #[test]
    fn relocation_takes_priority() {
        let mut s = active();
        // Imbalanced load AND productivity gap: must relocate, not spill.
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 100, 1.0)]);
        let d = s.decide(&stats, VirtualTime::from_secs(50), false);
        assert!(matches!(d, Decision::Relocate { .. }));
        assert_eq!(s.relocations_triggered(), 1);
        assert_eq!(s.force_spills_triggered(), 0);
    }

    #[test]
    fn force_spill_when_balanced_but_productivity_gap() {
        let mut s = active();
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 900, 1.0)]);
        let d = s.decide(&stats, VirtualTime::from_secs(50), false);
        assert_eq!(
            d,
            Decision::ForceSpill {
                engine: EngineId(1),
                amount: 450, // 50% of 900
            }
        );
        assert_eq!(s.forced_bytes(), 450);
    }

    #[test]
    fn no_spill_below_lambda() {
        let mut s = active();
        let stats = ClusterStats::new(vec![report(0, 1000, 1.9), report(1, 900, 1.0)]);
        assert_eq!(
            s.decide(&stats, VirtualTime::from_secs(50), false),
            Decision::None
        );
    }

    #[test]
    fn cap_limits_cumulative_forced_spill() {
        let mut s = ActiveDisk::new(0.8, VirtualDuration::ZERO, 2.0, 1.0, 1000);
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 900, 1.0)]);
        // First spill takes min(900, 1000) = 900.
        let d = s.decide(&stats, VirtualTime::from_secs(1), false);
        assert_eq!(
            d,
            Decision::ForceSpill {
                engine: EngineId(1),
                amount: 900,
            }
        );
        // Second spill limited to the remaining 100.
        let d = s.decide(&stats, VirtualTime::from_secs(2), false);
        assert_eq!(
            d,
            Decision::ForceSpill {
                engine: EngineId(1),
                amount: 100,
            }
        );
        // Cap exhausted.
        assert_eq!(
            s.decide(&stats, VirtualTime::from_secs(3), false),
            Decision::None
        );
        assert_eq!(s.forced_bytes(), 1000);
        assert_eq!(s.force_spills_triggered(), 2);
    }

    #[test]
    fn suppressed_while_round_active() {
        let mut s = active();
        let stats = ClusterStats::new(vec![report(0, 1000, 10.0), report(1, 100, 1.0)]);
        assert_eq!(
            s.decide(&stats, VirtualTime::from_secs(50), true),
            Decision::None
        );
    }

    #[test]
    fn infinite_productivity_ratio_triggers_spill() {
        // One engine produced nothing in the window (rate 0) while the
        // other produced plenty: ratio is infinite.
        let mut s = active();
        let stats = ClusterStats::new(vec![report(0, 1000, 5.0), report(1, 900, 0.0)]);
        let d = s.decide(&stats, VirtualTime::from_secs(50), false);
        assert!(matches!(d, Decision::ForceSpill { engine, .. } if engine == EngineId(1)));
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn bad_lambda_rejected() {
        let _ = ActiveDisk::new(0.8, VirtualDuration::ZERO, 0.5, 0.3, 100);
    }
}
