//! `dcape-node` — a single query-engine worker process for the socket
//! runtime.
//!
//! ```text
//! dcape-node --connect HOST:PORT --engine-id N [--once]
//! ```
//!
//! Connects to the coordinator (a `repro --runtime socket` run, or any
//! caller of `dcape_cluster::runtime::socket::run_socket`), performs the
//! `Hello`/`Welcome` handshake, and then runs the engine loop until the
//! distributed cleanup completes. By default the worker then loops:
//! listen-mode harnesses execute one coordinator run per figure
//! configuration, and the worker serves each in turn, exiting cleanly
//! once the coordinator stops listening. With `--once` (what spawn
//! mode passes to its children) the worker serves exactly one run.
//! Exit codes: 0 after clean completion, 86 for a chaos-injected
//! crash-restart (the coordinator respawns the worker), 1 for
//! everything else.

use std::process::ExitCode;

use dcape_common::ids::EngineId;

const USAGE: &str = "usage: dcape-node --connect HOST:PORT --engine-id N [--once]";

fn main() -> ExitCode {
    let mut connect: Option<String> = None;
    let mut engine_id: Option<u16> = None;
    let mut once = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => match args.next() {
                Some(addr) => connect = Some(addr),
                None => {
                    eprintln!("--connect requires an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--engine-id" => match args.next().and_then(|s| s.parse().ok()) {
                Some(id) => engine_id = Some(id),
                None => {
                    eprintln!("--engine-id requires a small integer\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--once" => once = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    let (Some(addr), Some(id)) = (connect, engine_id) else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let outcome = if once {
        dcape_cluster::runtime::socket::worker_main(&addr, EngineId(id))
    } else {
        dcape_cluster::runtime::socket::worker_serve(&addr, EngineId(id)).map(|_served| ())
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcape-node (engine {id}): {e}");
            ExitCode::FAILURE
        }
    }
}
