//! Figures 13 & 14: lazy-disk vs active-disk.
//!
//! Setup (§5.4): three machines; the partitions initially owned by
//! machine `m1` have average join rate 4, the other two machines' rate
//! 1 — a per-machine productivity gap that the lazy-disk strategy never
//! sees (memory runs out roughly evenly, so no relocation fires), but
//! active-disk exploits: it forces the low-productivity machines to
//! spill, then relocation packs productive partitions into the freed
//! memory. θ_r = 0.8, τ_m = 45 s, λ = 2, spill threshold 60 MB,
//! force-spill cap 100 MB.
//!
//! Figure 14 widens the gap: the productive class gets a small tuple
//! range (15 K ⇒ higher join factor) and the unproductive class a
//! large one (45 K), so the active-disk advantage grows.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::error::Result;
use dcape_common::ids::PartitionId;
use dcape_common::time::VirtualDuration;
use dcape_metrics::{render_series_table, Recorder, Table};
use dcape_streamgen::{ClassAssignment, PartitionClass, StreamSetSpec};

use crate::opts::RunOpts;
use crate::scale;

/// One strategy's outcome.
#[derive(Debug)]
pub struct StrategyOutcome {
    /// Label.
    pub label: &'static str,
    /// Run-time output.
    pub runtime_output: u64,
    /// Forced spills issued by the coordinator.
    pub force_spills: u64,
    /// Relocations performed.
    pub relocations: usize,
}

/// Result of one of the two figures.
#[derive(Debug)]
pub struct FigLazyVsActiveResult {
    /// Lazy-disk outcome.
    pub lazy: StrategyOutcome,
    /// Active-disk outcome.
    pub active: StrategyOutcome,
    /// Throughput series.
    pub recorder: Recorder,
}

/// The Figure 13 workload: m1's partitions (first third, matching the
/// even placement blocks) at join rate 4, the rest at rate 1.
pub fn gap_workload(hot_range: u64, cold_range: u64) -> StreamSetSpec {
    let third = scale::NUM_PARTITIONS / 3;
    let hot: Vec<PartitionId> = (0..third).map(PartitionId).collect();
    let cold: Vec<PartitionId> = (third..scale::NUM_PARTITIONS).map(PartitionId).collect();
    let mut spec = scale::paper_workload();
    spec.classes = vec![
        PartitionClass {
            assignment: ClassAssignment::Explicit(hot),
            join_rate: 4,
            tuple_range: hot_range,
        },
        PartitionClass {
            assignment: ClassAssignment::Explicit(cold),
            join_rate: 1,
            tuple_range: cold_range,
        },
    ];
    spec
}

fn run_one(
    label: &'static str,
    active: bool,
    workload: StreamSetSpec,
    opts: &RunOpts,
    recorder: &mut Recorder,
    prefix: &str,
) -> Result<StrategyOutcome> {
    // Fast mode compresses the paper's hour-long crossover: shorter
    // run, but spill pressure starts proportionally earlier (lower
    // threshold) and multiplicities grow faster (the workload's tuple
    // ranges are shrunk by `fast_ranges`).
    let duration = if opts.fast {
        dcape_common::time::VirtualTime::from_mins(15)
    } else {
        scale::default_duration(false)
    };
    let threshold = if opts.fast {
        scale::THRESHOLD_60MB / 20
    } else {
        scale::THRESHOLD_60MB
    };
    let engine = scale::engine_with_threshold(threshold);
    let strategy = if active {
        StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 2.0,
            spill_fraction: 0.3,
            force_spill_cap: if opts.fast { 100 << 20 >> 5 } else { 100 << 20 },
        }
    } else {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    // Partitions placed in consecutive blocks: first third (the hot
    // class) on engine 0, mirroring "partitions assigned to machine m1".
    let cfg = SimConfig::new(3, engine, workload, strategy)
        .with_placement(PlacementSpec::Fractions(vec![
            1.0 / 3.0,
            1.0 / 3.0,
            1.0 / 3.0,
        ]))
        .with_stats_interval(VirtualDuration::from_secs(45))
        .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
        .with_faults(opts.fault_plan());
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(duration)?;
    let relocations = driver.relocations().len();
    let report = driver.finish()?;
    if let Some(s) = report.recorder.series("output/total") {
        for (t, v) in s.points() {
            recorder.record(&format!("{prefix}/{label}"), *t, *v);
        }
    }
    Ok(StrategyOutcome {
        label,
        runtime_output: report.runtime_output,
        force_spills: report.force_spills,
        relocations,
    })
}

fn run_figure(
    title: &str,
    csv_name: &str,
    hot_range: u64,
    cold_range: u64,
    opts: &RunOpts,
) -> Result<FigLazyVsActiveResult> {
    // Fast mode: shrink tuple ranges so join factors grow as much in 15
    // minutes as the paper's do in an hour.
    let (hot_range, cold_range) = if opts.fast {
        (hot_range / 5, cold_range / 5)
    } else {
        (hot_range, cold_range)
    };
    let mut recorder = Recorder::new();
    let lazy = run_one(
        "lazy-disk",
        false,
        gap_workload(hot_range, cold_range),
        opts,
        &mut recorder,
        "throughput",
    )?;
    let active = run_one(
        "active-disk",
        true,
        gap_workload(hot_range, cold_range),
        opts,
        &mut recorder,
        "throughput",
    )?;

    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig = render_series_table(&recorder.with_prefix("throughput/"), step);
    opts.emit(title, &fig);
    opts.csv(csv_name, &fig);

    let mut summary = Table::new(&["strategy", "runtime output", "force spills", "relocations"]);
    for o in [&lazy, &active] {
        summary.row(vec![
            o.label.to_string(),
            format!("{}", o.runtime_output),
            format!("{}", o.force_spills),
            format!("{}", o.relocations),
        ]);
    }
    opts.emit(&format!("{title} — summary"), &summary);

    Ok(FigLazyVsActiveResult {
        lazy,
        active,
        recorder,
    })
}

/// Run Figure 13 (uniform tuple ranges).
pub fn run_fig13(opts: &RunOpts) -> Result<FigLazyVsActiveResult> {
    run_figure(
        "Figure 13: lazy-disk vs active-disk (join-rate gap)",
        "fig13_throughput.csv",
        scale::TUPLE_RANGE,
        scale::TUPLE_RANGE,
        opts,
    )
}

/// Run Figure 14 (tuple ranges 15 K vs 45 K widen the gap).
pub fn run_fig14(opts: &RunOpts) -> Result<FigLazyVsActiveResult> {
    run_figure(
        "Figure 14: lazy-disk vs active-disk (widened gap)",
        "fig14_throughput.csv",
        15_000,
        45_000,
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gain(r: &FigLazyVsActiveResult) -> f64 {
        r.active.runtime_output as f64 / r.lazy.runtime_output.max(1) as f64
    }

    #[test]
    fn active_disk_beats_lazy_in_both_figures() {
        let opts = RunOpts::fast_quiet();
        let f13 = run_fig13(&opts).unwrap();
        assert!(
            f13.active.force_spills > 0,
            "active-disk must issue forced spills"
        );
        assert!(
            f13.active.runtime_output > f13.lazy.runtime_output,
            "Figure 13: active {} should beat lazy {}",
            f13.active.runtime_output,
            f13.lazy.runtime_output
        );
        let f14 = run_fig14(&opts).unwrap();
        assert!(
            f14.active.runtime_output > f14.lazy.runtime_output,
            "Figure 14: active {} should beat lazy {}",
            f14.active.runtime_output,
            f14.lazy.runtime_output
        );
        assert!(gain(&f13) > 1.0 && gain(&f14) > 1.0);
    }

    /// The gap-widening claim needs the paper-scale 60-minute runs (the
    /// fast compression distorts the two figures differently); measured
    /// full-scale gains are ~1.65x (Fig 13) vs ~1.85x (Fig 14) — see
    /// EXPERIMENTS.md. Run with `cargo test --release -- --ignored`.
    #[test]
    #[ignore = "paper-scale run, several minutes in release"]
    fn gap_widens_at_paper_scale() {
        let mut opts = RunOpts::fast_quiet();
        opts.fast = false;
        let f13 = run_fig13(&opts).unwrap();
        let f14 = run_fig14(&opts).unwrap();
        assert!(
            gain(&f14) > gain(&f13),
            "Figure 14's widened gap should increase the advantage: {} vs {}",
            gain(&f14),
            gain(&f13)
        );
    }
}
