//! Design-choice ablations (DESIGN.md §5).
//!
//! Not paper figures — these quantify the design decisions the paper
//! asserts qualitatively:
//!
//! 1. **Victim policy ladder** — random / largest-first (XJoin) /
//!    smallest-first / least-productive on one workload.
//! 2. **Relocation amount** — the paper's `(M_max−M_least)/2` pair-wise
//!    halving vs a fixed small quantum (convergence / #relocations).
//! 3. **Network sensitivity** — gigabit vs slow WAN relocation costs
//!    (§4.2's closing caveat).
//! 4. **Spill granularity** — partition-group vs per-input (XJoin-style
//!    with timestamp bookkeeping), §2/Figure 3.
//! 5. **Productivity estimator** — cumulative vs amortized/decaying
//!    under one-shot and cyclic drift (§2's remark).
//! 6. **Relocation scheme** — pair-wise vs planned global rebalance
//!    (§4's "other models").
//! 7. **Window sizes** — sliding windows bound steady-state memory
//!    (the intro's infinite-stream regime).

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::{NetworkModel, PlacementSpec};
use dcape_common::error::Result;
use dcape_common::time::VirtualDuration;
use dcape_engine::VictimPolicy;
use dcape_metrics::Table;

use crate::experiments::fig07::heterogeneous_workload;
use crate::experiments::fig09_10::alternating_workload;
use crate::opts::RunOpts;
use crate::scale;

/// Outcome of the victim-policy ladder.
#[derive(Debug)]
pub struct PolicyLadderResult {
    /// `(policy name, runtime output, cleanup tuples)`.
    pub rows: Vec<(&'static str, u64, u64)>,
}

/// Ablation 1: victim policies on the heterogeneous workload.
pub fn run_policy_ladder(opts: &RunOpts) -> Result<PolicyLadderResult> {
    let duration = scale::default_duration(opts.fast);
    let threshold = scale::scale_bytes(scale::THRESHOLD_200MB, opts.fast);
    let policies: &[(&'static str, VictimPolicy)] = &[
        ("random", VictimPolicy::Random),
        ("largest-first (XJoin)", VictimPolicy::LargestFirst),
        ("smallest-first", VictimPolicy::SmallestFirst),
        ("least-productive (paper)", VictimPolicy::LeastProductive),
    ];
    let mut rows = Vec::new();
    for (name, policy) in policies {
        let engine = scale::engine_with_threshold(threshold).with_policy(*policy);
        let cfg = SimConfig::new(
            1,
            engine,
            heterogeneous_workload(),
            StrategyConfig::NoAdaptation,
        );
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        let report = driver.finish()?;
        rows.push((*name, report.runtime_output, report.cleanup_output));
    }
    let mut table = Table::new(&["victim policy", "runtime output", "cleanup tuples"]);
    for (name, out, cleanup) in &rows {
        table.row(vec![
            name.to_string(),
            format!("{out}"),
            format!("{cleanup}"),
        ]);
    }
    opts.emit("Ablation: spill victim policies", &table);
    opts.csv("ablation_policies.csv", &table);
    Ok(PolicyLadderResult { rows })
}

/// Outcome of the relocation-amount ablation.
#[derive(Debug)]
pub struct AmountResult {
    /// Halving scheme: `(relocations, final output)`.
    pub halving: (usize, u64),
    /// Fixed-quantum scheme (simulated by a high θ with small moves):
    /// `(relocations, final output)`.
    pub eager: (usize, u64),
}

/// Ablation 2: pair-wise halving vs eager small moves (θ_r = 95 %,
/// τ_m = 10 s approximates "move a little, often").
pub fn run_relocation_amounts(opts: &RunOpts) -> Result<AmountResult> {
    let duration = scale::default_duration(opts.fast);
    let engine = scale::engine_with_threshold(u64::MAX / 4);
    let run_with = |theta_r: f64, tau_secs: u64| -> Result<(usize, u64)> {
        let cfg = SimConfig::new(
            2,
            engine.clone(),
            alternating_workload(opts.fast),
            StrategyConfig::LazyDisk {
                theta_r,
                tau_m: VirtualDuration::from_secs(tau_secs),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]));
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        let relocations = driver.relocations().len();
        let report = driver.finish()?;
        Ok((relocations, report.runtime_output))
    };
    let halving = run_with(0.8, 45)?;
    let eager = run_with(0.95, 10)?;
    let mut table = Table::new(&["scheme", "relocations", "runtime output"]);
    table.row(vec![
        "halving, theta=0.8, tau=45s (paper)".into(),
        format!("{}", halving.0),
        format!("{}", halving.1),
    ]);
    table.row(vec![
        "eager, theta=0.95, tau=10s".into(),
        format!("{}", eager.0),
        format!("{}", eager.1),
    ]);
    opts.emit("Ablation: relocation aggressiveness", &table);
    opts.csv("ablation_amounts.csv", &table);
    Ok(AmountResult { halving, eager })
}

/// Outcome of the network-sensitivity ablation.
#[derive(Debug)]
pub struct NetworkResult {
    /// `(label, relocations, total buffered tuples, runtime output)`.
    pub rows: Vec<(&'static str, usize, usize, u64)>,
}

/// Ablation 3: relocation on gigabit vs slow WAN.
pub fn run_network_sensitivity(opts: &RunOpts) -> Result<NetworkResult> {
    let duration = scale::default_duration(opts.fast);
    let engine = scale::engine_with_threshold(u64::MAX / 4);
    let nets: &[(&'static str, NetworkModel)] = &[
        ("gigabit", NetworkModel::gigabit()),
        ("slow WAN", NetworkModel::slow_wan()),
    ];
    let mut rows = Vec::new();
    for (label, net) in nets {
        let mut cfg = SimConfig::new(
            2,
            engine.clone(),
            alternating_workload(opts.fast),
            StrategyConfig::LazyDisk {
                theta_r: 0.9,
                tau_m: VirtualDuration::from_secs(45),
            },
        )
        .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]));
        cfg.network = *net;
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        let relocations = driver.relocations().len();
        let buffered: usize = driver.relocations().iter().map(|r| r.buffered_tuples).sum();
        let report = driver.finish()?;
        rows.push((*label, relocations, buffered, report.runtime_output));
    }
    let mut table = Table::new(&[
        "network",
        "relocations",
        "buffered tuples",
        "runtime output",
    ]);
    for (label, rel, buf, out) in &rows {
        table.row(vec![
            label.to_string(),
            format!("{rel}"),
            format!("{buf}"),
            format!("{out}"),
        ]);
    }
    opts.emit("Ablation: network sensitivity of relocation", &table);
    opts.csv("ablation_network.csv", &table);
    Ok(NetworkResult { rows })
}

/// Outcome of the spill-granularity ablation (§2, Figure 3).
#[derive(Debug)]
pub struct GranularityResult {
    /// Partition-group spill: `(runtime output, cleanup tuples)`.
    pub group: (u64, u64),
    /// Per-input (XJoin-style) spill: `(runtime output, cleanup
    /// tuples, timestamp comparisons paid during cleanup)`.
    pub per_input: (u64, u64, u64),
    /// Reference join count (both variants must total to this).
    pub reference: u64,
}

/// Ablation 4: the paper's partition-group spill unit vs the XJoin-style
/// per-input unit with timestamp bookkeeping. Both run the same input on
/// one engine with equivalent spill pressure; the measurable difference
/// is the cleanup-side bookkeeping the partition-group design removes.
pub fn run_spill_granularity(opts: &RunOpts) -> Result<GranularityResult> {
    use dcape_common::ids::EngineId;
    use dcape_common::mem::MemoryTracker;
    use dcape_common::time::VirtualTime;
    use dcape_engine::engine::QueryEngine;
    use dcape_engine::sink::CountingSink;
    use dcape_engine::spill::per_input::PerInputJoin;
    use dcape_streamgen::StreamSetGenerator;

    let spec =
        dcape_streamgen::StreamSetSpec::uniform(24, 2_400, 2, VirtualDuration::from_millis(30))
            .with_payload_pad(256);
    let deadline = VirtualTime::from_mins(if opts.fast { 4 } else { 20 });
    let threshold: u64 = if opts.fast { 300 << 10 } else { 4 << 20 };

    // Shared input.
    let mut gen = StreamSetGenerator::new(spec.clone())?;
    let partitioner = gen.partitioner();
    let tuples = gen.generate_until(deadline);

    // Reference count.
    let mut counts: std::collections::HashMap<(u8, i64), u64> = std::collections::HashMap::new();
    for t in &tuples {
        *counts
            .entry((t.stream().0, t.values()[0].as_int().unwrap()))
            .or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    let reference: u64 = keys
        .iter()
        .map(|k| {
            (0..3u8)
                .map(|s| counts.get(&(s, *k)).copied().unwrap_or(0))
                .product::<u64>()
        })
        .sum();

    // Variant A: partition-group spill (the paper's design).
    let engine_cfg = dcape_engine::config::EngineConfig::three_way(u64::MAX / 4, threshold);
    let mut engine = QueryEngine::in_memory(EngineId(0), engine_cfg)?;
    let mut a_runtime = CountingSink::new();
    for t in &tuples {
        let pid = partitioner.partition_of(&t.values()[0]);
        engine.process(pid, t.clone(), &mut a_runtime)?;
        engine.tick(t.ts())?;
    }
    let mut a_cleanup = CountingSink::new();
    engine.cleanup(&mut a_cleanup)?;

    // Variant B: per-input spill with timestamp bookkeeping. To apply
    // comparable pressure, whenever total memory crosses the threshold
    // we push the largest single-input partition (XJoin's flush).
    let tracker = MemoryTracker::new(u64::MAX / 4);
    let mut pij = PerInputJoin::new(vec![0, 0, 0], std::sync::Arc::clone(&tracker))?;
    let mut b_runtime = CountingSink::new();
    for t in &tuples {
        let pid = partitioner.partition_of(&t.values()[0]);
        pij.process(pid, t.clone(), &mut b_runtime)?;
        while tracker.used() > threshold {
            // Largest (pid, input) partition.
            let mut best: Option<(dcape_common::ids::PartitionId, usize, usize)> = None;
            for pid in pij.partitions() {
                for (stream, bytes) in pij.input_sizes(pid).into_iter().enumerate() {
                    if bytes > 0 && best.is_none_or(|(_, _, b)| bytes > b) {
                        best = Some((pid, stream, bytes));
                    }
                }
            }
            match best {
                Some((pid, stream, _)) => {
                    pij.spill_input(pid, stream);
                }
                None => break,
            }
        }
    }
    let mut b_cleanup = CountingSink::new();
    let b_report = pij.cleanup(&mut b_cleanup)?;

    let mut table = Table::new(&[
        "spill unit",
        "runtime output",
        "cleanup tuples",
        "stamp comparisons",
        "total",
    ]);
    table.row(vec![
        "partition group (paper)".into(),
        format!("{}", a_runtime.count()),
        format!("{}", a_cleanup.count()),
        "0 (none needed)".into(),
        format!("{}", a_runtime.count() + a_cleanup.count()),
    ]);
    table.row(vec![
        "per-input (XJoin-style)".into(),
        format!("{}", b_runtime.count()),
        format!("{}", b_cleanup.count()),
        format!("{}", b_report.stamp_comparisons),
        format!("{}", b_runtime.count() + b_cleanup.count()),
    ]);
    opts.emit(
        "Ablation: spill granularity — partition-group vs per-input (Fig 3)",
        &table,
    );
    opts.csv("ablation_granularity.csv", &table);

    Ok(GranularityResult {
        group: (a_runtime.count(), a_cleanup.count()),
        per_input: (
            b_runtime.count(),
            b_cleanup.count(),
            b_report.stamp_comparisons,
        ),
        reference,
    })
}

/// Outcome of the productivity-estimator ablation.
#[derive(Debug)]
pub struct EstimatorResult {
    /// One-shot drift: `(cumulative output, decaying output)`.
    pub one_shot: (u64, u64),
    /// Cyclic drift: `(cumulative output, decaying output)`.
    pub cyclic: (u64, u64),
}

/// Ablation 5: cumulative vs amortized (decaying) productivity
/// estimation under drift (§2's "amortized weight function … depending
/// on the perceived stability of the operator's behavior"). Two drift
/// regimes expose the trade-off:
///
/// * **one-shot** (the hot set changes permanently mid-run): the
///   cumulative metric keeps ranking the stale hot set as productive —
///   the decaying estimator adapts and wins;
/// * **cyclic** (alternating skew): the EWMA lags every phase flip and
///   spills partitions that are about to become hot, while the
///   cumulative metric approximates the long-run average — the paper's
///   default wins. This is precisely why the estimator is a pluggable
///   policy.
pub fn run_estimator_drift(opts: &RunOpts) -> Result<EstimatorResult> {
    use dcape_engine::state::productivity::ProductivityEstimator;
    use dcape_streamgen::ArrivalPattern;
    let duration = scale::default_duration(opts.fast);
    let threshold = scale::scale_bytes(scale::THRESHOLD_200MB, opts.fast);
    let n = scale::NUM_PARTITIONS as usize;
    let half_hot_then_cold: Vec<f64> = (0..n).map(|i| if i < n / 2 { 10.0 } else { 1.0 }).collect();
    let half_cold_then_hot: Vec<f64> = (0..n).map(|i| if i < n / 2 { 1.0 } else { 10.0 }).collect();
    let one_shot_pattern = ArrivalPattern::Shift {
        at: dcape_common::time::VirtualTime::from_millis(duration.as_millis() / 3),
        before: half_hot_then_cold,
        after: half_cold_then_hot,
    };
    let run_with = |estimator: ProductivityEstimator, pattern: ArrivalPattern| -> Result<u64> {
        let engine = scale::engine_with_threshold(threshold).with_estimator(estimator);
        let workload = scale::paper_workload().with_pattern(pattern);
        let cfg = SimConfig::new(1, engine, workload, StrategyConfig::NoAdaptation)
            .with_stats_interval(VirtualDuration::from_secs(30));
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        Ok(driver.finish()?.runtime_output)
    };
    let decaying = ProductivityEstimator::Decaying { alpha: 0.6 };
    let one_shot = (
        run_with(ProductivityEstimator::Cumulative, one_shot_pattern.clone())?,
        run_with(decaying, one_shot_pattern)?,
    );
    let cyclic_pattern = alternating_workload(opts.fast).pattern;
    let cyclic = (
        run_with(ProductivityEstimator::Cumulative, cyclic_pattern.clone())?,
        run_with(decaying, cyclic_pattern)?,
    );
    let mut table = Table::new(&["drift regime", "cumulative (paper)", "decaying (alpha=0.6)"]);
    table.row(vec![
        "one-shot shift".into(),
        format!("{}", one_shot.0),
        format!("{}", one_shot.1),
    ]);
    table.row(vec![
        "cyclic (alternating)".into(),
        format!("{}", cyclic.0),
        format!("{}", cyclic.1),
    ]);
    opts.emit("Ablation: productivity estimator under drift", &table);
    opts.csv("ablation_estimator.csv", &table);
    Ok(EstimatorResult { one_shot, cyclic })
}

/// Outcome of the relocation-scheme ablation.
#[derive(Debug)]
pub struct SchemeResult {
    /// Pair-wise: `(relocations, final max/min load ratio)`.
    pub pairwise: (usize, f64),
    /// Global rebalance: `(relocations, final max/min load ratio)`.
    pub rebalance: (usize, f64),
}

/// Ablation 6: the paper's pair-wise scheme vs planned global
/// rebalancing (§4's "other models could fairly easily be incorporated
/// into our framework") on a heavily skewed four-engine placement.
pub fn run_relocation_schemes(opts: &RunOpts) -> Result<SchemeResult> {
    let duration = scale::default_duration(opts.fast);
    let engine = scale::engine_with_threshold(u64::MAX / 4);
    let run_with = |strategy: StrategyConfig| -> Result<(usize, f64)> {
        let cfg = SimConfig::new(4, engine.clone(), scale::paper_workload(), strategy)
            .with_placement(PlacementSpec::Fractions(vec![0.55, 0.25, 0.15, 0.05]))
            .with_stats_interval(VirtualDuration::from_secs(30));
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        let relocations = driver.relocations().len();
        let mems: Vec<u64> = driver.engines().iter().map(|e| e.memory_used()).collect();
        let max = *mems.iter().max().unwrap() as f64;
        let min = *mems.iter().min().unwrap() as f64;
        let balance = if max > 0.0 { min / max } else { 1.0 };
        let _ = driver.finish()?;
        Ok((relocations, balance))
    };
    let pairwise = run_with(StrategyConfig::LazyDisk {
        theta_r: 0.8,
        tau_m: VirtualDuration::from_secs(45),
    })?;
    let rebalance = run_with(StrategyConfig::LazyDiskRebalance {
        theta_r: 0.8,
        tau_m: VirtualDuration::from_secs(45),
    })?;
    let mut table = Table::new(&["scheme", "relocations", "final min/max load"]);
    table.row(vec![
        "pair-wise (paper)".into(),
        format!("{}", pairwise.0),
        format!("{:.2}", pairwise.1),
    ]);
    table.row(vec![
        "global rebalance".into(),
        format!("{}", rebalance.0),
        format!("{:.2}", rebalance.1),
    ]);
    opts.emit("Ablation: relocation schemes on 4 engines", &table);
    opts.csv("ablation_schemes.csv", &table);
    Ok(SchemeResult {
        pairwise,
        rebalance,
    })
}

/// Outcome of the window-size ablation.
#[derive(Debug)]
pub struct WindowResult {
    /// `(window label, peak state bytes, runtime output)`; last row is
    /// the unbounded (no-window) run.
    pub rows: Vec<(String, u64, u64)>,
}

/// Ablation 7: sliding-window sizes vs steady-state memory — the
/// intro's infinite-stream regime ("as long as operators have finite
/// window sizes"). State must plateau for any finite window and grow
/// monotonically without one.
pub fn run_window_sizes(opts: &RunOpts) -> Result<WindowResult> {
    let duration = scale::default_duration(opts.fast);
    let windows: &[(&str, Option<u64>)] = &[
        ("60 s", Some(60)),
        ("300 s", Some(300)),
        ("unbounded", None),
    ];
    let mut rows = Vec::new();
    for (label, secs) in windows {
        let mut engine = scale::engine_with_threshold(u64::MAX / 4);
        if let Some(secs) = secs {
            engine.join = engine.join.with_window(VirtualDuration::from_secs(*secs));
        }
        let cfg = SimConfig::new(
            1,
            engine,
            scale::paper_workload(),
            StrategyConfig::NoAdaptation,
        )
        .with_sample_interval(VirtualDuration::from_secs(30));
        let mut driver = SimDriver::new(cfg)?;
        driver.run_until(duration)?;
        let report = driver.finish()?;
        let peak = report
            .recorder
            .series("mem/QE0")
            .and_then(dcape_metrics::TimeSeries::max)
            .unwrap_or(0.0) as u64;
        rows.push((label.to_string(), peak, report.runtime_output));
    }
    let mut table = Table::new(&["window", "peak state (MB)", "runtime output"]);
    for (label, peak, out) in &rows {
        table.row(vec![
            label.clone(),
            format!("{:.1}", *peak as f64 / (1 << 20) as f64),
            format!("{out}"),
        ]);
    }
    opts.emit("Ablation: window sizes vs steady-state memory", &table);
    opts.csv("ablation_windows.csv", &table);
    Ok(WindowResult { rows })
}

/// Run all ablations.
pub fn run(opts: &RunOpts) -> Result<()> {
    run_policy_ladder(opts)?;
    run_relocation_amounts(opts)?;
    run_network_sensitivity(opts)?;
    run_spill_granularity(opts)?;
    run_estimator_drift(opts)?;
    run_relocation_schemes(opts)?;
    run_window_sizes(opts)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_ladder_orders_paper_policy_first() {
        let opts = RunOpts::fast_quiet();
        let r = run_policy_ladder(&opts).unwrap();
        let get = |name: &str| {
            r.rows
                .iter()
                .find(|(n, _, _)| n.starts_with(name))
                .map(|(_, out, _)| *out)
                .unwrap()
        };
        let least = get("least-productive");
        for (name, out, _) in &r.rows {
            assert!(
                least >= *out,
                "least-productive should be best: {least} vs {name}={out}"
            );
        }
    }

    #[test]
    fn eager_relocation_moves_more_often() {
        let opts = RunOpts::fast_quiet();
        let r = run_relocation_amounts(&opts).unwrap();
        assert!(
            r.eager.0 >= r.halving.0,
            "eager scheme should relocate at least as often: {:?} vs {:?}",
            r.eager,
            r.halving
        );
    }

    #[test]
    fn slow_network_buffers_more() {
        let opts = RunOpts::fast_quiet();
        let r = run_network_sensitivity(&opts).unwrap();
        let gig = r.rows.iter().find(|(l, ..)| *l == "gigabit").unwrap();
        let wan = r.rows.iter().find(|(l, ..)| *l == "slow WAN").unwrap();
        // Longer transfers => more tuples buffered per relocation.
        if gig.1 > 0 && wan.1 > 0 {
            let per_gig = gig.2 as f64 / gig.1 as f64;
            let per_wan = wan.2 as f64 / wan.1 as f64;
            assert!(
                per_wan >= per_gig,
                "slow network should buffer more per relocation: {per_wan} vs {per_gig}"
            );
        }
    }
}

#[cfg(test)]
mod granularity_tests {
    use super::*;

    #[test]
    fn both_granularities_are_exact_and_group_needs_no_stamps() {
        let opts = RunOpts::fast_quiet();
        let r = run_spill_granularity(&opts).unwrap();
        assert_eq!(
            r.group.0 + r.group.1,
            r.reference,
            "partition-group variant lost results"
        );
        assert_eq!(
            r.per_input.0 + r.per_input.1,
            r.reference,
            "per-input variant lost results"
        );
        // The paper's argument, quantified: per-input cleanup pays
        // timestamp bookkeeping the partition-group design never does.
        assert!(
            r.per_input.2 > 0,
            "per-input cleanup must perform stamp comparisons"
        );
    }
}

#[cfg(test)]
mod estimator_tests {
    use super::*;

    #[test]
    fn estimator_tradeoff_matches_drift_regime() {
        let opts = RunOpts::fast_quiet();
        let r = run_estimator_drift(&opts).unwrap();
        assert!(r.one_shot.0 > 0 && r.cyclic.0 > 0);
        // One-shot drift: the decaying estimator adapts; cumulative
        // keeps favouring the stale hot set.
        assert!(
            r.one_shot.1 > r.one_shot.0,
            "one-shot: decaying {} should beat cumulative {}",
            r.one_shot.1,
            r.one_shot.0
        );
        // Cyclic drift: the EWMA lags every flip; cumulative wins.
        assert!(
            r.cyclic.0 >= r.cyclic.1,
            "cyclic: cumulative {} should beat decaying {}",
            r.cyclic.0,
            r.cyclic.1
        );
    }
}

#[cfg(test)]
mod scheme_tests {
    use super::*;

    #[test]
    fn both_schemes_balance_the_skewed_cluster() {
        let opts = RunOpts::fast_quiet();
        let r = run_relocation_schemes(&opts).unwrap();
        assert!(r.pairwise.0 > 0, "pair-wise must relocate");
        assert!(r.rebalance.0 > 0, "rebalance must relocate");
        // Both end reasonably balanced on an all-in-memory workload.
        assert!(r.pairwise.1 > 0.4, "pairwise balance {:?}", r.pairwise);
        assert!(r.rebalance.1 > 0.4, "rebalance balance {:?}", r.rebalance);
    }
}

#[cfg(test)]
mod window_tests {
    use super::*;

    #[test]
    fn finite_windows_bound_state() {
        let opts = RunOpts::fast_quiet();
        let r = run_window_sizes(&opts).unwrap();
        let short = &r.rows[0];
        let long = &r.rows[1];
        let unbounded = &r.rows[2];
        assert!(short.1 < long.1, "shorter window => less state");
        assert!(
            long.1 < unbounded.1,
            "finite window must bound state below the unbounded run"
        );
        // Narrower windows admit fewer results.
        assert!(short.2 <= long.2 && long.2 <= unbounded.2);
    }
}
