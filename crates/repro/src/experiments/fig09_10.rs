//! Figures 9 & 10: state relocation under alternating input skew.
//!
//! Setup (§4.2): two machines, each initially owning half the
//! partitions; memory large enough that the query runs fully in memory.
//! The input alternates: one machine's partitions receive 10× more
//! tuples than the other's, flipping every 10 minutes — "a worst case
//! situation in terms of input stream fluctuations". τ_m = 45 s.
//!
//! Expected shapes:
//! * Figure 9 — throughput is insensitive to θ_r ∈ {50…90 %} and all
//!   match All-mem (relocation is cheap on a fast network); but the
//!   *number* of relocations grows steeply with θ_r (paper: 24 at 90 %
//!   vs 2 at 50 %).
//! * Figure 10 — with relocation (θ_r = 90 %) the two machines' memory
//!   stays balanced; without it, usage diverges with the skew phases.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::error::Result;
use dcape_common::ids::PartitionId;
use dcape_common::time::VirtualDuration;
use dcape_metrics::{render_series_table, Recorder, Table};
use dcape_streamgen::{ArrivalPattern, StreamSetSpec};

use crate::opts::RunOpts;
use crate::scale;

/// One θ_r configuration's outcome.
#[derive(Debug)]
pub struct ThetaOutcome {
    /// θ_r in percent (0 = no-relocation baseline).
    pub theta_pct: u32,
    /// Run-time output.
    pub output: u64,
    /// Relocations performed.
    pub relocations: usize,
}

/// Result of Figures 9/10.
#[derive(Debug)]
pub struct Fig0910Result {
    /// Outcomes per θ_r plus the no-relocation baseline (theta = 0).
    pub outcomes: Vec<ThetaOutcome>,
    /// Recorded series (throughput per θ, memory per machine).
    pub recorder: Recorder,
}

/// Alternating-skew workload over two engine-sized partition halves.
pub fn alternating_workload(fast: bool) -> StreamSetSpec {
    let half: Vec<PartitionId> = (0..scale::NUM_PARTITIONS / 2).map(PartitionId).collect();
    scale::paper_workload().with_pattern(ArrivalPattern::AlternatingSkew {
        group_a: half,
        ratio: 10.0,
        period: VirtualDuration::from_mins(if fast { 2 } else { 10 }),
    })
}

fn run_theta(
    theta_pct: u32,
    opts: &RunOpts,
    recorder: &mut Recorder,
    record_memory: bool,
) -> Result<ThetaOutcome> {
    let duration = scale::default_duration(opts.fast);
    // All-in-memory: budget far above any possible state.
    let engine = scale::engine_with_threshold(u64::MAX / 4);
    let strategy = if theta_pct == 0 {
        StrategyConfig::NoAdaptation
    } else {
        StrategyConfig::LazyDisk {
            theta_r: theta_pct as f64 / 100.0,
            tau_m: VirtualDuration::from_secs(45),
        }
    };
    let mut cfg = SimConfig::new(2, engine, alternating_workload(opts.fast), strategy)
        .with_placement(PlacementSpec::Fractions(vec![0.5, 0.5]))
        .with_stats_interval(VirtualDuration::from_secs(45))
        .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
        .with_faults(opts.fault_plan());
    if opts.journal_enabled() {
        cfg = cfg.with_journal();
    }
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(duration)?;
    let relocations = driver.relocations().len();
    let report = driver.finish()?;
    let label = if theta_pct == 0 {
        "no-relocation".to_string()
    } else {
        format!("theta={theta_pct}%")
    };
    opts.write_journal(&format!("fig09-{label}"), &report.journal);
    if let Some(s) = report.recorder.series("output/total") {
        for (t, v) in s.points() {
            recorder.record(&format!("throughput/{label}"), *t, *v);
        }
    }
    if record_memory {
        for engine_label in ["QE0", "QE1"] {
            if let Some(s) = report.recorder.series(&format!("mem/{engine_label}")) {
                for (t, v) in s.points() {
                    recorder.record(&format!("mem/{label}/{engine_label}"), *t, *v);
                }
            }
        }
    }
    Ok(ThetaOutcome {
        theta_pct,
        output: report.runtime_output,
        relocations,
    })
}

/// Run Figures 9 and 10.
pub fn run(opts: &RunOpts) -> Result<Fig0910Result> {
    let mut recorder = Recorder::new();
    let thetas: &[u32] = if opts.fast {
        &[50, 90]
    } else {
        &[50, 70, 80, 90]
    };
    let mut outcomes = Vec::new();
    // Baseline (also provides Figure 10's "no-relocation" memory lines).
    outcomes.push(run_theta(0, opts, &mut recorder, true)?);
    for &t in thetas {
        outcomes.push(run_theta(t, opts, &mut recorder, t == 90)?);
    }

    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig9 = render_series_table(&recorder.with_prefix("throughput/"), step);
    opts.emit("Figure 9: throughput across relocation thresholds", &fig9);
    opts.csv("fig9_throughput.csv", &fig9);

    let mut counts = Table::new(&["theta_r", "relocations", "runtime output"]);
    for o in &outcomes {
        counts.row(vec![
            if o.theta_pct == 0 {
                "none".into()
            } else {
                format!("{}%", o.theta_pct)
            },
            format!("{}", o.relocations),
            format!("{}", o.output),
        ]);
    }
    opts.emit("Figure 9 (inset): relocation counts", &counts);
    opts.csv("fig9_counts.csv", &counts);

    let fig10 = render_series_table(&recorder.with_prefix("mem/"), step);
    opts.emit(
        "Figure 10: per-machine memory with vs without relocation",
        &fig10,
    );
    opts.csv("fig10_memory.csv", &fig10);

    Ok(Fig0910Result { outcomes, recorder })
}

/// Balance metric for tests: max |mem(QE0) − mem(QE1)| over samples.
pub fn max_memory_gap(recorder: &Recorder, label: &str) -> f64 {
    let a = recorder.series(&format!("mem/{label}/QE0"));
    let b = recorder.series(&format!("mem/{label}/QE1"));
    match (a, b) {
        (Some(a), Some(b)) => a
            .points()
            .iter()
            .zip(b.points())
            .map(|((_, x), (_, y))| (x - y).abs())
            .fold(0.0, f64::max),
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let opts = RunOpts::fast_quiet();
        let r = run(&opts).unwrap();
        let base = &r.outcomes[0];
        assert_eq!(base.theta_pct, 0);
        assert_eq!(base.relocations, 0);

        // Higher theta => more relocations (24 vs 2 in the paper).
        let by_theta: Vec<(u32, usize)> = r.outcomes[1..]
            .iter()
            .map(|o| (o.theta_pct, o.relocations))
            .collect();
        let low = by_theta.first().unwrap();
        let high = by_theta.last().unwrap();
        assert!(
            high.1 > low.1,
            "theta=90 should relocate more: {by_theta:?}"
        );
        assert!(high.1 >= 1 && low.1 >= 1);

        // Throughput roughly unaffected by relocations (within 2%).
        for o in &r.outcomes[1..] {
            let delta = (o.output as f64 - base.output as f64).abs() / base.output as f64;
            assert!(
                delta < 0.02,
                "theta={} output {} deviates {delta:.3} from baseline {}",
                o.theta_pct,
                o.output,
                base.output
            );
        }

        // Figure 10: relocation keeps memory more balanced.
        let gap_with = max_memory_gap(&r.recorder, "theta=90%");
        let gap_without = max_memory_gap(&r.recorder, "no-relocation");
        assert!(
            gap_with < gap_without,
            "relocation should shrink the memory gap: {gap_with} vs {gap_without}"
        );
    }
}
