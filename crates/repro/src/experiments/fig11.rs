//! Figure 11: relocation vs spill.
//!
//! Setup (§4.2): three machines; the initial distribution gives one
//! machine 60 % of the partitions and the other two 20 % each.
//! θ_r = 80 %, τ_m = 45 s, spill threshold 200 MB.
//!
//! Expected shape: the no-relocation run's throughput flattens once the
//! big machine overflows (~40 min in the paper) and starts spilling,
//! while the with-relocation run moves states to the idle machines and
//! keeps producing at the full rate.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::error::Result;
use dcape_common::time::VirtualDuration;
use dcape_metrics::{render_series_table, Recorder, Table};

use crate::opts::RunOpts;
use crate::scale;

/// One configuration's outcome.
#[derive(Debug)]
pub struct Fig11Outcome {
    /// Label ("no-relocation" / "with-relocation").
    pub label: &'static str,
    /// Run-time output.
    pub runtime_output: u64,
    /// Total spills across engines.
    pub spills: u64,
    /// Relocations performed.
    pub relocations: usize,
}

/// Result of Figure 11.
#[derive(Debug)]
pub struct Fig11Result {
    /// The no-relocation baseline.
    pub baseline: Fig11Outcome,
    /// The with-relocation run.
    pub with_relocation: Fig11Outcome,
    /// Throughput series.
    pub recorder: Recorder,
}

fn run_one(
    label: &'static str,
    relocate: bool,
    opts: &RunOpts,
    recorder: &mut Recorder,
) -> Result<Fig11Outcome> {
    let duration = scale::default_duration(opts.fast);
    let threshold = scale::scale_bytes(scale::THRESHOLD_200MB, opts.fast);
    let engine = scale::engine_with_threshold(threshold);
    let strategy = if relocate {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    } else {
        StrategyConfig::NoAdaptation
    };
    let mut cfg = SimConfig::new(3, engine, scale::paper_workload(), strategy)
        .with_placement(PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]))
        .with_stats_interval(VirtualDuration::from_secs(45))
        .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
        .with_faults(opts.fault_plan());
    if opts.journal_enabled() {
        cfg = cfg.with_journal();
    }
    let cfg = opts.with_scale_events(cfg);
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(duration)?;
    let relocations = driver.relocations().len();
    let report = driver.finish()?;
    opts.write_journal(&format!("fig11-{label}"), &report.journal);
    if let Some(s) = report.recorder.series("output/total") {
        for (t, v) in s.points() {
            recorder.record(&format!("throughput/{label}"), *t, *v);
        }
    }
    Ok(Fig11Outcome {
        label,
        runtime_output: report.runtime_output,
        spills: report.spill_counts.iter().sum(),
        relocations,
    })
}

/// Run Figure 11.
pub fn run(opts: &RunOpts) -> Result<Fig11Result> {
    let mut recorder = Recorder::new();
    let baseline = run_one("no-relocation", false, opts, &mut recorder)?;
    let with_relocation = run_one("with-relocation", true, opts, &mut recorder)?;

    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig11 = render_series_table(&recorder.with_prefix("throughput/"), step);
    opts.emit("Figure 11: relocation vs spill", &fig11);
    opts.csv("fig11_throughput.csv", &fig11);

    let mut summary = Table::new(&["config", "runtime output", "spills", "relocations"]);
    for o in [&baseline, &with_relocation] {
        summary.row(vec![
            o.label.to_string(),
            format!("{}", o.runtime_output),
            format!("{}", o.spills),
            format!("{}", o.relocations),
        ]);
    }
    opts.emit("Figure 11 summary", &summary);
    opts.csv("fig11_summary.csv", &summary);

    Ok(Fig11Result {
        baseline,
        with_relocation,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relocation_beats_spill_under_skewed_placement() {
        let opts = RunOpts::fast_quiet();
        let r = run(&opts).unwrap();
        assert!(
            r.baseline.spills > 0,
            "the 60% machine must overflow in the baseline"
        );
        assert!(r.with_relocation.relocations > 0);
        assert!(
            r.with_relocation.runtime_output > r.baseline.runtime_output,
            "with-relocation {} should out-produce no-relocation {}",
            r.with_relocation.runtime_output,
            r.baseline.runtime_output
        );
        assert!(
            r.with_relocation.spills < r.baseline.spills,
            "relocation should avoid (most) spills: {} vs {}",
            r.with_relocation.spills,
            r.baseline.spills
        );
    }
}
