//! Figure 7 + the §3.2 cleanup comparison (T-cleanup-1):
//! throughput-oriented spill — which partition groups to push.
//!
//! Setup: one machine; one third of the partitions have average join
//! rate 4, one third rate 2, one third rate 1. Policies compared:
//! `push-less-productive` (the paper's) vs `push-more-productive`
//! (adversarial baseline).
//!
//! Expected shapes:
//! * Figure 7 — push-less-productive ends ~70 % ahead in run-time
//!   output after 40 minutes.
//! * T-cleanup-1 — push-less-productive leaves far fewer missed results
//!   for the cleanup phase (paper: 194 308 tuples in 26.9 s vs 992 893
//!   in 359 s), so its cleanup is several times cheaper.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::error::Result;
use dcape_common::time::VirtualDuration;
use dcape_engine::VictimPolicy;
use dcape_metrics::{render_series_table, Recorder, Table};
use dcape_streamgen::{ClassAssignment, PartitionClass, StreamSetSpec};

use crate::opts::RunOpts;
use crate::scale;

/// Per-policy outcome.
#[derive(Debug)]
pub struct PolicyOutcome {
    /// Policy label.
    pub label: &'static str,
    /// Run-time output.
    pub runtime_output: u64,
    /// Cleanup (missed) results.
    pub cleanup_output: u64,
    /// Modeled cleanup cost in virtual ms.
    pub cleanup_ms: u64,
}

/// Result of the Figure 7 experiment.
#[derive(Debug)]
pub struct Fig07Result {
    /// push-less-productive outcome.
    pub less: PolicyOutcome,
    /// push-more-productive outcome.
    pub more: PolicyOutcome,
    /// Recorded throughput series.
    pub recorder: Recorder,
}

/// The heterogeneous workload: ⅓ of partitions at join rate 4, ⅓ at 2,
/// ⅓ at 1 (all at the default tuple range).
pub fn heterogeneous_workload() -> StreamSetSpec {
    let mut spec = scale::paper_workload();
    spec.classes = vec![
        PartitionClass {
            assignment: ClassAssignment::Fraction(1.0 / 3.0),
            join_rate: 4,
            tuple_range: scale::TUPLE_RANGE,
        },
        PartitionClass {
            assignment: ClassAssignment::Fraction(1.0 / 3.0),
            join_rate: 2,
            tuple_range: scale::TUPLE_RANGE,
        },
        PartitionClass {
            assignment: ClassAssignment::Fraction(1.0 / 3.0),
            join_rate: 1,
            tuple_range: scale::TUPLE_RANGE,
        },
    ];
    spec
}

fn run_policy(
    label: &'static str,
    policy: VictimPolicy,
    opts: &RunOpts,
    recorder: &mut Recorder,
) -> Result<PolicyOutcome> {
    let duration = scale::default_duration(opts.fast);
    let threshold = scale::scale_bytes(scale::THRESHOLD_200MB, opts.fast);
    let engine = scale::engine_with_threshold(threshold).with_policy(policy);
    let cfg = SimConfig::new(
        1,
        engine,
        heterogeneous_workload(),
        StrategyConfig::NoAdaptation,
    )
    .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
    .with_faults(opts.fault_plan());
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(duration)?;
    let report = driver.finish()?;
    if let Some(s) = report.recorder.series("output/total") {
        for (t, v) in s.points() {
            recorder.record(&format!("throughput/{label}"), *t, *v);
        }
    }
    Ok(PolicyOutcome {
        label,
        runtime_output: report.runtime_output,
        cleanup_output: report.cleanup_output,
        cleanup_ms: report.cleanup_wall_ms(),
    })
}

/// Run Figure 7 and T-cleanup-1.
pub fn run(opts: &RunOpts) -> Result<Fig07Result> {
    let mut recorder = Recorder::new();
    let less = run_policy(
        "push-less-productive",
        VictimPolicy::LeastProductive,
        opts,
        &mut recorder,
    )?;
    let more = run_policy(
        "push-more-productive",
        VictimPolicy::MostProductive,
        opts,
        &mut recorder,
    )?;

    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig7 = render_series_table(&recorder.with_prefix("throughput/"), step);
    opts.emit("Figure 7: throughput-oriented spill policies", &fig7);
    opts.csv("fig7_throughput.csv", &fig7);

    let mut cleanup = Table::new(&[
        "policy",
        "runtime output",
        "cleanup tuples",
        "cleanup time (ms, modeled)",
    ]);
    for o in [&less, &more] {
        cleanup.row(vec![
            o.label.to_string(),
            format!("{}", o.runtime_output),
            format!("{}", o.cleanup_output),
            format!("{}", o.cleanup_ms),
        ]);
    }
    opts.emit(
        "T-cleanup-1 (§3.2): cleanup effort after the Figure 7 runs",
        &cleanup,
    );
    opts.csv("cleanup1.csv", &cleanup);

    Ok(Fig07Result {
        less,
        more,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn less_productive_policy_wins_both_phases() {
        let opts = RunOpts::fast_quiet();
        let r = run(&opts).unwrap();
        assert!(
            r.less.runtime_output > r.more.runtime_output,
            "push-less-productive should out-produce push-more-productive: {} vs {}",
            r.less.runtime_output,
            r.more.runtime_output
        );
        assert!(
            r.less.cleanup_output < r.more.cleanup_output,
            "push-less-productive should owe fewer missed results: {} vs {}",
            r.less.cleanup_output,
            r.more.cleanup_output
        );
        assert!(
            r.less.cleanup_ms <= r.more.cleanup_ms,
            "cleanup time should follow missed-result volume"
        );
        // Totals agree: both policies eventually produce the same
        // complete result set.
        assert_eq!(
            r.less.runtime_output + r.less.cleanup_output,
            r.more.runtime_output + r.more.cleanup_output,
            "exactness violated: total results differ between policies"
        );
    }
}
