//! `repro verify` — the correctness gate, runnable standalone.
//!
//! Runs a mid-size workload under every adaptation strategy on both the
//! simulated and the threaded driver and checks the central invariant:
//! run-time results + cleanup results = the reference join, exactly.
//! Prints one PASS/FAIL row per configuration.

use std::collections::HashMap;

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::error::Result;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_metrics::Table;
use dcape_streamgen::{StreamSetGenerator, StreamSetSpec};

use crate::opts::RunOpts;

/// One verification row.
#[derive(Debug)]
pub struct VerifyRow {
    /// Configuration label.
    pub label: String,
    /// Measured total (runtime + cleanup).
    pub total: u64,
    /// Reference join count.
    pub reference: u64,
}

impl VerifyRow {
    /// Did the configuration produce exactly the reference join?
    pub fn pass(&self) -> bool {
        self.total == self.reference
    }
}

fn reference_count(spec: &StreamSetSpec, deadline: VirtualTime) -> Result<u64> {
    let mut gen = StreamSetGenerator::new(spec.clone())?;
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        *counts
            .entry((t.stream().0, t.values()[0].as_int().unwrap()))
            .or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    Ok(keys
        .into_iter()
        .map(|k| {
            (0..spec.num_streams as u8)
                .map(|s| counts.get(&(s, k)).copied().unwrap_or(0))
                .product::<u64>()
        })
        .sum())
}

/// Run the verification matrix; returns the rows (all must pass).
pub fn run(opts: &RunOpts) -> Result<Vec<VerifyRow>> {
    let deadline = if opts.fast {
        VirtualTime::from_mins(4)
    } else {
        VirtualTime::from_mins(10)
    };
    let spec = StreamSetSpec::uniform(24, 2_400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(0xFEED);
    let reference = reference_count(&spec, deadline)?;
    let engine = EngineConfig::three_way(1 << 22, 600 << 10);

    let strategies: Vec<(&str, StrategyConfig)> = vec![
        ("no-adaptation", StrategyConfig::NoAdaptation),
        ("lazy-disk", StrategyConfig::lazy_default()),
        (
            "lazy-disk+rebalance",
            StrategyConfig::LazyDiskRebalance {
                theta_r: 0.8,
                tau_m: VirtualDuration::from_secs(45),
            },
        ),
        ("active-disk", StrategyConfig::active_default(1 << 20)),
    ];

    let mut rows = Vec::new();
    for (name, strategy) in &strategies {
        let cfg = SimConfig::new(3, engine.clone(), spec.clone(), strategy.clone())
            .with_placement(PlacementSpec::Fractions(vec![0.6, 0.2, 0.2]))
            .with_stats_interval(VirtualDuration::from_secs(30))
            .with_faults(opts.fault_plan());
        // Sim driver.
        let mut driver = SimDriver::new(cfg.clone())?;
        driver.run_until(deadline)?;
        let report = driver.finish()?;
        rows.push(VerifyRow {
            label: format!("sim / {name}"),
            total: report.total_output(),
            reference,
        });
        // Threaded driver.
        let threaded = run_threaded(cfg, deadline)?;
        rows.push(VerifyRow {
            label: format!("threaded / {name}"),
            total: threaded.total_output(),
            reference,
        });
    }

    let mut table = Table::new(&["configuration", "total output", "reference", "verdict"]);
    for r in &rows {
        table.row(vec![
            r.label.clone(),
            format!("{}", r.total),
            format!("{}", r.reference),
            if r.pass() {
                "PASS".into()
            } else {
                "FAIL".into()
            },
        ]);
    }
    opts.emit(
        "Verification: exactness across strategies and drivers",
        &table,
    );
    opts.csv("verify.csv", &table);
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verification_matrix_passes() {
        let opts = RunOpts::fast_quiet();
        let rows = run(&opts).unwrap();
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.pass(), "{}: {} != {}", r.label, r.total, r.reference);
        }
    }
}
