//! Experiment modules, one per paper figure/table.

pub mod ablations;
pub mod fig05_06;
pub mod fig07;
pub mod fig09_10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod verify;
