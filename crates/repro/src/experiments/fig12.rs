//! Figure 12 + the §5.2 cleanup comparison (T-cleanup-2): lazy-disk in
//! a memory-constrained cluster.
//!
//! Setup: three machines, skewed initial distribution (one machine owns
//! ⅔ of the partitions, the others ⅙ each), and budgets low enough that
//! even the aggregate cluster memory cannot hold the query — the regime
//! where "state spills cannot be avoided any longer simply by
//! relocating states across machines" (§5).
//!
//! Expected shapes:
//! * Figure 12 — lazy-disk out-produces no-relocation at run time by
//!   using all three machines' memory before resorting to disk.
//! * T-cleanup-2 — total results are similar, but the cleanup stage
//!   differs dramatically: no-relocation leaves nearly all segments on
//!   one machine (paper: >1600 s) while lazy-disk spread the state so
//!   cleanup parallelizes (<400 s) — shape: ≈ #machines speedup.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::error::Result;
use dcape_common::time::VirtualDuration;
use dcape_metrics::{render_series_table, Recorder, Table};

use crate::opts::RunOpts;
use crate::scale;

/// One configuration's outcome.
#[derive(Debug)]
pub struct Fig12Outcome {
    /// Label.
    pub label: &'static str,
    /// Run-time output.
    pub runtime_output: u64,
    /// Cleanup (missed) results.
    pub cleanup_output: u64,
    /// Per-engine modeled cleanup cost (ms).
    pub cleanup_cost_ms: Vec<u64>,
    /// Parallel cleanup wall time = max per-engine cost.
    pub cleanup_wall_ms: u64,
    /// Spills per engine.
    pub spill_counts: Vec<u64>,
}

/// Result of Figure 12 / T-cleanup-2.
#[derive(Debug)]
pub struct Fig12Result {
    /// No-relocation baseline.
    pub baseline: Fig12Outcome,
    /// Lazy-disk run.
    pub lazy: Fig12Outcome,
    /// Throughput series.
    pub recorder: Recorder,
}

fn run_one(
    label: &'static str,
    relocate: bool,
    opts: &RunOpts,
    recorder: &mut Recorder,
) -> Result<Fig12Outcome> {
    let duration = scale::default_duration(opts.fast);
    // Tight budgets: the whole cluster cannot hold the state (§5.2's
    // "extremely heavy" 6-hour regime, compressed by lowering budgets
    // instead of stretching the run).
    let threshold = scale::scale_bytes(scale::THRESHOLD_60MB, opts.fast);
    let engine = scale::engine_with_threshold(threshold);
    let strategy = if relocate {
        StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }
    } else {
        StrategyConfig::NoAdaptation
    };
    let mut cfg = SimConfig::new(3, engine, scale::paper_workload(), strategy)
        .with_placement(PlacementSpec::Fractions(vec![
            2.0 / 3.0,
            1.0 / 6.0,
            1.0 / 6.0,
        ]))
        .with_stats_interval(VirtualDuration::from_secs(45))
        .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
        .with_faults(opts.fault_plan());
    if opts.journal_enabled() {
        cfg = cfg.with_journal();
    }
    let cfg = opts.with_scale_events(cfg);
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(duration)?;
    let report = driver.finish()?;
    opts.write_journal(&format!("fig12-{label}"), &report.journal);
    if let Some(s) = report.recorder.series("output/total") {
        for (t, v) in s.points() {
            recorder.record(&format!("throughput/{label}"), *t, *v);
        }
    }
    Ok(Fig12Outcome {
        label,
        runtime_output: report.runtime_output,
        cleanup_output: report.cleanup_output,
        cleanup_wall_ms: report.cleanup_wall_ms(),
        cleanup_cost_ms: report.cleanup_cost_ms,
        spill_counts: report.spill_counts,
    })
}

/// Run Figure 12 and T-cleanup-2.
pub fn run(opts: &RunOpts) -> Result<Fig12Result> {
    let mut recorder = Recorder::new();
    let baseline = run_one("no-relocation", false, opts, &mut recorder)?;
    let lazy = run_one("lazy-disk", true, opts, &mut recorder)?;

    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig12 = render_series_table(&recorder.with_prefix("throughput/"), step);
    opts.emit("Figure 12: lazy-disk vs no-relocation", &fig12);
    opts.csv("fig12_throughput.csv", &fig12);

    let mut cleanup = Table::new(&[
        "config",
        "runtime output",
        "cleanup tuples",
        "cleanup wall (ms)",
        "per-engine cleanup (ms)",
        "spills/engine",
    ]);
    for o in [&baseline, &lazy] {
        cleanup.row(vec![
            o.label.to_string(),
            format!("{}", o.runtime_output),
            format!("{}", o.cleanup_output),
            format!("{}", o.cleanup_wall_ms),
            format!("{:?}", o.cleanup_cost_ms),
            format!("{:?}", o.spill_counts),
        ]);
    }
    opts.emit("T-cleanup-2 (§5.2): cleanup-stage comparison", &cleanup);
    opts.csv("cleanup2.csv", &cleanup);

    Ok(Fig12Result {
        baseline,
        lazy,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_disk_wins_runtime_and_cleanup_parallelism() {
        let opts = RunOpts::fast_quiet();
        let r = run(&opts).unwrap();
        // Both configurations are memory constrained.
        assert!(r.baseline.spill_counts.iter().sum::<u64>() > 0);
        assert!(r.lazy.spill_counts.iter().sum::<u64>() > 0);
        // Figure 12: lazy-disk run-time throughput is higher.
        assert!(
            r.lazy.runtime_output > r.baseline.runtime_output,
            "lazy {} vs baseline {}",
            r.lazy.runtime_output,
            r.baseline.runtime_output
        );
        // Exactness: totals agree.
        assert_eq!(
            r.lazy.runtime_output + r.lazy.cleanup_output,
            r.baseline.runtime_output + r.baseline.cleanup_output
        );
        // T-cleanup-2: lazy-disk's parallel cleanup wall time is much
        // shorter because the work is spread over the machines.
        assert!(
            r.lazy.cleanup_wall_ms < r.baseline.cleanup_wall_ms,
            "lazy cleanup {} ms should beat baseline {} ms",
            r.lazy.cleanup_wall_ms,
            r.baseline.cleanup_wall_ms
        );
        // In the baseline, one machine carries (nearly) all the cost.
        let base_total: u64 = r.baseline.cleanup_cost_ms.iter().sum();
        let base_max = *r.baseline.cleanup_cost_ms.iter().max().unwrap();
        assert!(
            base_max as f64 > base_total as f64 * 0.9,
            "baseline cleanup should be concentrated: {:?}",
            r.baseline.cleanup_cost_ms
        );
    }
}
