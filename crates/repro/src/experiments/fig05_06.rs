//! Figures 5 & 6: sensitivity to the spill fraction `k%`.
//!
//! Setup (§3.2): one machine, three-way join, 30 ms input rate, tuple
//! range 30 K, join rate 3, spill triggered over 200 MB, victims chosen
//! *randomly* ("we randomly choose partition groups … since we
//! investigate the impact of which amount of state is to be pushed").
//!
//! Expected shapes:
//! * Figure 5 — the larger `k`, the lower the run-time throughput
//!   (pushed states stop producing); All-Mem is the upper bound.
//! * Figure 6 — sawtooth memory, bounded by the threshold; larger `k`
//!   ⇒ fewer, deeper zags.

use dcape_cluster::runtime::sim::{SimConfig, SimDriver};
use dcape_cluster::runtime::socket::{run_socket, SocketConfig};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::error::Result;
use dcape_common::time::VirtualDuration;
use dcape_engine::VictimPolicy;
use dcape_metrics::{render_series_table, Recorder, Table};

use crate::opts::{RunOpts, RuntimeKind};
use crate::scale;

/// Result of the k% sweep.
#[derive(Debug)]
pub struct KSweepResult {
    /// `(k_percent, total runtime output, spill count, peak memory)`.
    pub rows: Vec<(u32, u64, u64, f64)>,
    /// All-Mem total output (upper bound).
    pub all_mem_output: u64,
    /// Recorded series for both figures.
    pub recorder: Recorder,
}

/// Run one single-engine configuration and record its series.
fn run_one(
    label: &str,
    spill_fraction: f64,
    threshold: Option<u64>,
    opts: &RunOpts,
    recorder: &mut Recorder,
) -> Result<(u64, u64, f64)> {
    let duration = scale::default_duration(opts.fast);
    let threshold = threshold.unwrap_or(u64::MAX / 4);
    let mut engine = scale::engine_with_threshold(scale::scale_bytes(threshold, opts.fast))
        .with_policy(VictimPolicy::Random);
    if spill_fraction > 0.0 {
        engine.spill_fraction = spill_fraction;
    }
    let cfg = SimConfig::new(
        1,
        engine,
        scale::paper_workload(),
        StrategyConfig::NoAdaptation,
    )
    .with_sample_interval(VirtualDuration::from_secs(if opts.fast { 20 } else { 60 }))
    .with_faults(opts.fault_plan());
    let cfg = opts.with_scale_events(cfg);
    match opts.runtime {
        RuntimeKind::Sim => {
            let mut driver = SimDriver::new(cfg)?;
            driver.run_until(duration)?;
            let report = driver.finish()?;
            let throughput = report
                .recorder
                .series("output/total")
                .cloned()
                .unwrap_or_default();
            let memory = report
                .recorder
                .series("mem/QE0")
                .cloned()
                .unwrap_or_default();
            let peak_mem = memory.max().unwrap_or(0.0);
            for (t, v) in throughput.points() {
                recorder.record(&format!("throughput/{label}"), *t, *v);
            }
            for (t, v) in memory.points() {
                recorder.record(&format!("mem/{label}"), *t, *v);
            }
            Ok((
                report.runtime_output,
                report.spill_counts.iter().sum(),
                peak_mem,
            ))
        }
        // The concurrent drivers produce totals, not time series: the
        // figures keep their sim-recorded curves; the summary rows (and
        // the cross-runtime equivalence checks) come from real
        // execution.
        RuntimeKind::Threaded => {
            let report = run_threaded(cfg, duration)?;
            Ok((report.runtime_output, report.spill_counts.iter().sum(), 0.0))
        }
        RuntimeKind::Socket => {
            let report = run_socket(
                SocketConfig {
                    sim: cfg,
                    mode: opts.socket_mode(),
                    kill: None,
                },
                duration,
            )?;
            Ok((report.runtime_output, report.spill_counts.iter().sum(), 0.0))
        }
    }
}

/// Run the sweep for both figures.
pub fn run(opts: &RunOpts) -> Result<KSweepResult> {
    let mut recorder = Recorder::new();
    let ks: &[u32] = if opts.fast {
        &[10, 50, 100]
    } else {
        &[10, 20, 30, 50, 100]
    };
    let mut rows = Vec::new();
    for &k in ks {
        let label = format!("k={k}%");
        let (output, spills, peak) = run_one(
            &label,
            k as f64 / 100.0,
            Some(scale::THRESHOLD_200MB),
            opts,
            &mut recorder,
        )?;
        rows.push((k, output, spills, peak));
    }
    let (all_mem_output, _, _) = run_one("all-mem", 0.3, None, opts, &mut recorder)?;

    // Figure 5: throughput over time per k.
    let series = recorder.with_prefix("throughput/");
    let step = VirtualDuration::from_mins(if opts.fast { 1 } else { 5 });
    let fig5 = render_series_table(&series, step);
    opts.emit("Figure 5: run-time throughput vs spill fraction k%", &fig5);
    opts.csv("fig5_throughput.csv", &fig5);

    // Figure 6: memory over time per k.
    let series = recorder.with_prefix("mem/");
    let fig6 = render_series_table(&series, step);
    opts.emit("Figure 6: memory usage vs spill fraction k%", &fig6);
    opts.csv("fig6_memory.csv", &fig6);

    // Summary table.
    let mut summary = Table::new(&["k%", "runtime output", "spills", "peak mem (MB)"]);
    for (k, out, spills, peak) in &rows {
        summary.row(vec![
            format!("{k}"),
            format!("{out}"),
            format!("{spills}"),
            format!("{:.1}", peak / (1 << 20) as f64),
        ]);
    }
    summary.row(vec![
        "all-mem".into(),
        format!("{all_mem_output}"),
        "0".into(),
        "-".into(),
    ]);
    opts.emit("Figures 5/6 summary", &summary);
    opts.csv("fig5_6_summary.csv", &summary);

    Ok(KSweepResult {
        rows,
        all_mem_output,
        recorder,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let opts = RunOpts::fast_quiet();
        let r = run(&opts).unwrap();
        // All-Mem dominates every spilling configuration.
        for (k, out, spills, _) in &r.rows {
            assert!(
                r.all_mem_output >= *out,
                "k={k}%: spilling run out-produced All-Mem"
            );
            assert!(*spills > 0, "k={k}% must actually spill");
        }
        // Smaller k ⇒ more spills (Figure 6's zag count).
        let spills: Vec<u64> = r.rows.iter().map(|(_, _, s, _)| *s).collect();
        assert!(
            spills.first().unwrap() > spills.last().unwrap(),
            "k=10% should spill more often than k=100%: {spills:?}"
        );
        // Larger k ⇒ lower run-time throughput (Figure 5).
        let outs: Vec<u64> = r.rows.iter().map(|(_, o, _, _)| *o).collect();
        assert!(
            outs.first().unwrap() > outs.last().unwrap(),
            "k=10% should out-produce k=100%: {outs:?}"
        );
    }
}
