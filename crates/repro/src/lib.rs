//! # dcape-repro
//!
//! The experiment harness: one module per figure/table of the paper's
//! evaluation, each regenerating the corresponding result on the
//! simulated cluster (same engine/strategy code as the threaded
//! runtime, deterministic virtual time).
//!
//! | Module | Reproduces |
//! |--------|------------|
//! | [`experiments::fig05_06`] | Figures 5 & 6 — spill fraction `k%` sweep: throughput and memory over time |
//! | [`experiments::fig07`] | Figure 7 — productivity-ranked spill policies; plus the §3.2 cleanup comparison (T-cleanup-1) |
//! | [`experiments::fig09_10`] | Figures 9 & 10 — relocation threshold θ_r sweep and memory balancing under alternating skew |
//! | [`experiments::fig11`] | Figure 11 — relocation vs spill under skewed placement |
//! | [`experiments::fig12`] | Figure 12 — lazy-disk vs no-relocation in a memory-constrained cluster; plus the §5.2 cleanup comparison (T-cleanup-2) |
//! | [`experiments::fig13_14`] | Figures 13 & 14 — lazy-disk vs active-disk under productivity gaps |
//! | [`experiments::ablations`] | Design-choice ablations called out in DESIGN.md |
//!
//! Run everything with `cargo run -p dcape-repro --release -- all`.

pub mod bench_json;
pub mod experiments;
pub mod opts;
pub mod scale;

pub use opts::{RunOpts, RuntimeKind};
