//! Harness run options.

use std::path::PathBuf;

/// Which driver executes an experiment's cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeKind {
    /// Deterministic virtual-time simulation (default; the only driver
    /// that records time series for the figures).
    Sim,
    /// One OS thread per engine, real channel messages.
    Threaded,
    /// One OS process per engine, framed TCP messages
    /// (`dcape-node` workers; see `--listen` for multi-machine runs).
    Socket,
}

/// Options shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Scale the run down (~6 virtual minutes instead of the paper's
    /// 40–60) — used by tests and criterion benches.
    pub fast: bool,
    /// Where CSV outputs land (`results/` by default).
    pub out_dir: PathBuf,
    /// Suppress stdout tables (benches).
    pub quiet: bool,
    /// Base path for adaptation-event journals (`--journal`). When set,
    /// instrumented experiments record an event journal and write it as
    /// JSON lines, one file per run, named after this path.
    pub journal: Option<PathBuf>,
    /// Seed for the deterministic fault-injection layer
    /// (`--chaos-seed`). When set, every experiment run consults a
    /// seeded `FaultPlan` at each protocol message edge; the same seed
    /// reproduces the same fault schedule bit-for-bit.
    pub chaos_seed: Option<u64>,
    /// Per-edge fault rate for the chaos layer (`--fault-rate`,
    /// 0.0–1.0). Only meaningful with `--chaos-seed`.
    pub fault_rate: f64,
    /// Which driver runs the experiments (`--runtime`).
    pub runtime: RuntimeKind,
    /// With `--runtime socket`: listen on this address and wait for
    /// externally started `dcape-node` workers instead of spawning
    /// them on loopback (`--listen`).
    pub listen: Option<String>,
    /// Elastic scale events (`--scale-event add@T` / `--scale-event
    /// drain@T`, repeatable; `T` in virtual seconds). An `add` admits a
    /// fresh engine mid-run; a `drain` retires the highest-id active
    /// engine via relocation rounds. Applied to every cluster run the
    /// selected experiments execute.
    pub scale_events: Vec<dcape_cluster::runtime::sim::ScaleEvent>,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            fast: false,
            out_dir: PathBuf::from("results"),
            quiet: false,
            journal: None,
            chaos_seed: None,
            fault_rate: 0.05,
            runtime: RuntimeKind::Sim,
            listen: None,
            scale_events: Vec::new(),
        }
    }
}

impl RunOpts {
    /// Fast, quiet options for tests/benches.
    pub fn fast_quiet() -> Self {
        RunOpts {
            fast: true,
            quiet: true,
            out_dir: std::env::temp_dir().join("dcape-repro-fast"),
            journal: None,
            chaos_seed: None,
            fault_rate: 0.05,
            runtime: RuntimeKind::Sim,
            listen: None,
            scale_events: Vec::new(),
        }
    }

    /// Parse one `--scale-event` value: `add@T` or `drain@T`, `T` in
    /// virtual seconds.
    pub fn parse_scale_event(s: &str) -> Option<dcape_cluster::runtime::sim::ScaleEvent> {
        use dcape_cluster::runtime::sim::ScaleEvent;
        use dcape_common::time::VirtualTime;
        let (kind, at) = s.split_once('@')?;
        let at = VirtualTime::from_secs(at.trim().parse().ok()?);
        match kind.trim() {
            "add" => Some(ScaleEvent::add(at)),
            "drain" => Some(ScaleEvent::drain(at)),
            _ => None,
        }
    }

    /// Attach the CLI's scale events to a cluster run config (no-op
    /// without `--scale-event`).
    pub fn with_scale_events(
        &self,
        cfg: dcape_cluster::runtime::sim::SimConfig,
    ) -> dcape_cluster::runtime::sim::SimConfig {
        if self.scale_events.is_empty() {
            cfg
        } else {
            cfg.with_scale_events(self.scale_events.clone())
        }
    }

    /// The socket-runtime provisioning mode the CLI flags describe:
    /// manual listen when `--listen` was given, loopback spawn
    /// otherwise.
    pub fn socket_mode(&self) -> dcape_cluster::runtime::socket::SocketMode {
        use dcape_cluster::runtime::socket::{default_node_bin, SocketMode};
        match &self.listen {
            Some(addr) => SocketMode::Listen { addr: addr.clone() },
            None => SocketMode::Spawn {
                node_bin: default_node_bin(),
            },
        }
    }

    /// True when `--journal` was given.
    pub fn journal_enabled(&self) -> bool {
        self.journal.is_some()
    }

    /// The fault plan the CLI flags describe: disabled without
    /// `--chaos-seed`, a seeded uniform-rate plan with it.
    pub fn fault_plan(&self) -> dcape_cluster::faults::FaultPlan {
        use dcape_cluster::faults::{FaultConfig, FaultPlan};
        match self.chaos_seed {
            Some(seed) => FaultPlan::new(seed, FaultConfig::uniform(self.fault_rate)),
            None => FaultPlan::disabled(),
        }
    }

    /// Write one run's journal as JSON lines (no-op without
    /// `--journal`). The file lands next to the `--journal` path with
    /// the run label folded into the name: `--journal out.jsonl` plus
    /// label `fig11/with-relocation` writes
    /// `out-fig11-with-relocation.jsonl`.
    pub fn write_journal(&self, label: &str, entries: &[dcape_metrics::JournalEntry]) {
        let Some(base) = &self.journal else {
            return;
        };
        let stem = base
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("journal");
        let ext = base.extension().and_then(|s| s.to_str()).unwrap_or("jsonl");
        let tag: String = label
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let path = base.with_file_name(format!("{stem}-{tag}.{ext}"));
        match dcape_metrics::write_journal_jsonl(&path, entries) {
            Ok(()) if !self.quiet => {
                println!(
                    "journal: wrote {} events to {}",
                    entries.len(),
                    path.display()
                );
            }
            Err(e) if !self.quiet => {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
            _ => {}
        }
    }

    /// Print a table unless quiet; always returns the rendered string.
    pub fn emit(&self, title: &str, table: &dcape_metrics::Table) -> String {
        let rendered = table.render();
        if !self.quiet {
            println!("\n== {title} ==\n{rendered}");
        }
        rendered
    }

    /// Write a CSV unless the out dir is unset; ignores I/O errors in
    /// quiet mode (bench scratch dirs may vanish).
    pub fn csv(&self, name: &str, table: &dcape_metrics::Table) {
        let path = self.out_dir.join(name);
        if let Err(e) = table.write_csv(&path) {
            if !self.quiet {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_fast() {
        let d = RunOpts::default();
        assert!(!d.fast);
        assert_eq!(d.out_dir, PathBuf::from("results"));
        let f = RunOpts::fast_quiet();
        assert!(f.fast && f.quiet);
    }

    #[test]
    fn emit_respects_quiet() {
        let mut t = dcape_metrics::Table::new(&["a"]);
        t.row(vec!["1".into()]);
        let opts = RunOpts::fast_quiet();
        let s = opts.emit("test", &t);
        assert!(s.contains('1'));
    }
}
