//! Harness run options.

use std::path::PathBuf;

/// Options shared by all experiment runners.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Scale the run down (~6 virtual minutes instead of the paper's
    /// 40–60) — used by tests and criterion benches.
    pub fast: bool,
    /// Where CSV outputs land (`results/` by default).
    pub out_dir: PathBuf,
    /// Suppress stdout tables (benches).
    pub quiet: bool,
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            fast: false,
            out_dir: PathBuf::from("results"),
            quiet: false,
        }
    }
}

impl RunOpts {
    /// Fast, quiet options for tests/benches.
    pub fn fast_quiet() -> Self {
        RunOpts {
            fast: true,
            quiet: true,
            out_dir: std::env::temp_dir().join("dcape-repro-fast"),
        }
    }

    /// Print a table unless quiet; always returns the rendered string.
    pub fn emit(&self, title: &str, table: &dcape_metrics::Table) -> String {
        let rendered = table.render();
        if !self.quiet {
            println!("\n== {title} ==\n{rendered}");
        }
        rendered
    }

    /// Write a CSV unless the out dir is unset; ignores I/O errors in
    /// quiet mode (bench scratch dirs may vanish).
    pub fn csv(&self, name: &str, table: &dcape_metrics::Table) {
        let path = self.out_dir.join(name);
        if let Err(e) = table.write_csv(&path) {
            if !self.quiet {
                eprintln!("warning: failed to write {}: {e}", path.display());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_fast() {
        let d = RunOpts::default();
        assert!(!d.fast);
        assert_eq!(d.out_dir, PathBuf::from("results"));
        let f = RunOpts::fast_quiet();
        assert!(f.fast && f.quiet);
    }

    #[test]
    fn emit_respects_quiet() {
        let mut t = dcape_metrics::Table::new(&["a"]);
        t.row(vec!["1".into()]);
        let opts = RunOpts::fast_quiet();
        let s = opts.emit("test", &t);
        assert!(s.contains('1'));
    }
}
