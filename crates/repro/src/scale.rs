//! Scaled experiment parameters.
//!
//! Thanks to accounting-only `Pad` payloads (see `dcape_common::value`),
//! the harness runs the paper's *actual* workload numbers — 30 ms
//! inter-arrival, 30 K tuple range, join rate 3, 200 MB / 60 MB spill
//! thresholds — without allocating paper-scale RAM. Only run *duration*
//! is scaled by `--fast` (tests/benches).

use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::StreamSetSpec;

/// Paper default: 30 ms per stream (§3.2).
pub const INTER_ARRIVAL: VirtualDuration = VirtualDuration(30);

/// Paper default tuple range (§3.2): 30 K.
pub const TUPLE_RANGE: u64 = 30_000;

/// Paper default join rate (§3.2): 3.
pub const JOIN_RATE: u32 = 3;

/// Virtual bytes per tuple (pad) — sized so ~40 minutes of input crosses
/// the 200 MB threshold, as in the paper's Figure 11 timeline.
pub const TUPLE_PAD: u32 = 1024;

/// Number of partitions the splits create ("much larger … than the
/// number of available machines", §2 — the paper quotes 500 over 10
/// machines; we run up to 3 engines).
pub const NUM_PARTITIONS: u32 = 120;

/// The 200 MB spill threshold of §3.2 / Figure 11.
pub const THRESHOLD_200MB: u64 = 200 << 20;

/// The 60 MB spill threshold of §5.4 (Figures 13/14).
pub const THRESHOLD_60MB: u64 = 60 << 20;

/// Per-engine budget: a bit above the threshold, like the paper's 2 GB
/// machines never actually crashing.
pub fn budget_for(threshold: u64) -> u64 {
    threshold * 3 / 2
}

/// Experiment duration: the paper's throughput figures span 40–60 min.
pub fn default_duration(fast: bool) -> VirtualTime {
    if fast {
        VirtualTime::from_mins(6)
    } else {
        VirtualTime::from_mins(60)
    }
}

/// The paper's uniform workload (§3.2 defaults).
pub fn paper_workload() -> StreamSetSpec {
    StreamSetSpec::uniform(NUM_PARTITIONS, TUPLE_RANGE, JOIN_RATE, INTER_ARRIVAL)
        .with_payload_pad(TUPLE_PAD)
}

/// Scale a byte threshold down for fast runs (shorter runs accumulate
/// proportionally less state).
pub fn scale_bytes(bytes: u64, fast: bool) -> u64 {
    if fast {
        bytes / 10
    } else {
        bytes
    }
}

/// Engine config with the paper's spill knobs at the given threshold.
pub fn engine_with_threshold(threshold: u64) -> EngineConfig {
    EngineConfig::three_way(budget_for(threshold), threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_matches_paper_defaults() {
        let w = paper_workload();
        assert_eq!(w.num_streams, 3);
        assert_eq!(w.inter_arrival.as_millis(), 30);
        assert_eq!(w.classes[0].tuple_range, 30_000);
        assert_eq!(w.classes[0].join_rate, 3);
        assert!(w.resolve().is_ok());
    }

    #[test]
    fn scaling_helpers() {
        assert_eq!(budget_for(200), 300);
        assert_eq!(scale_bytes(100, true), 10);
        assert_eq!(scale_bytes(100, false), 100);
        assert!(default_duration(true) < default_duration(false));
    }

    #[test]
    fn engine_config_is_valid() {
        assert!(engine_with_threshold(THRESHOLD_200MB).validate().is_ok());
        assert!(engine_with_threshold(THRESHOLD_60MB).validate().is_ok());
    }
}
