//! `--bench-json PATH`: the machine-readable benchmark trajectory.
//!
//! Measures the columnar partition-group state against the row layout
//! on three levels and writes one JSON document:
//!
//! * `probe_micro` — the `MJoinOperator` hot loop in isolation on a
//!   windowed workload (binary-search window pruning active), with the
//!   count-first `CountingSink` on both arms, toggling only the state
//!   layout;
//! * `fig5_end_to_end_threaded_*` — fig5-style runs (paper workload,
//!   spill threshold, no adaptation) on the threaded runtime with
//!   PR2 batching and PR3 count-first delivery on in both arms,
//!   toggling only the state layout, reporting steady-state tuples/sec
//!   of wall-clock time — the row arm reproduces `BENCH_pr3`'s
//!   count-first arm, so the ratio is directly comparable;
//! * `spill_heavy` — deterministic sim runs with real `Value::Blob`
//!   payloads under tight memory, per adaptation strategy, reporting
//!   the encoded spill volume of the verbatim row codec vs the
//!   column-block codec (`spill_bytes_written` journal counter);
//! * `elasticity` — the same overloaded two-engine spill-heavy regime
//!   run static vs with a third engine joining mid-run via the elastic
//!   membership path, reporting the `spill_bytes_written` reduction the
//!   extra memory buys and the relocation overhead
//!   (`rebalance_moves`, `relocation_bytes`, `transfer_bytes`) the
//!   rebalancing rounds cost.
//!
//! Wall-clock numbers are per-machine; the committed `BENCH_pr10.json`
//! records the ratios on the machine that produced it. The spill-byte
//! and elasticity numbers are deterministic.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use dcape_cluster::runtime::sim::{ScaleEvent, SimConfig, SimDriver};
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::{MJoinConfig, StateLayout};
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::sink::{CountingSink, ResultSink};
use dcape_storage::SegmentCodec;
use dcape_streamgen::StreamSetSpec;

use crate::scale;

/// One measured arm: wall seconds and the derived throughput.
#[derive(Debug, Clone, Copy)]
pub struct Arm {
    /// Best wall-clock seconds across repeats.
    pub wall_seconds: f64,
    /// Tuples pushed through per wall-clock second.
    pub tuples_per_sec: f64,
}

/// One end-to-end measurement point: both layout arms plus the run's
/// invariant totals.
#[derive(Debug)]
pub struct E2ePoint {
    /// Human-readable workload description (embedded in the JSON).
    pub workload: String,
    /// Virtual run duration in minutes.
    pub virtual_minutes: u64,
    /// Row-layout state (the PR3 count-first baseline).
    pub row: Arm,
    /// Columnar state (this PR).
    pub columnar: Arm,
    /// Results produced (equal on both arms).
    pub output: u64,
    /// Tuples routed (equal on both arms).
    pub tuples: u64,
}

impl E2ePoint {
    /// Columnar / row throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.columnar.tuples_per_sec / self.row.tuples_per_sec
    }
}

/// One spill-heavy strategy arm: deterministic encoded-volume counters
/// for both spill codecs over the same workload and adaptation history.
#[derive(Debug)]
pub struct SpillPoint {
    /// Strategy label (embedded in the JSON).
    pub strategy: String,
    /// Accounted (pre-encoding) spill volume — equal across codecs.
    pub spill_bytes: u64,
    /// Encoded bytes written by the verbatim row codec.
    pub rows_written: u64,
    /// Encoded bytes written by the column-block codec.
    pub columns_written: u64,
}

impl SpillPoint {
    /// Row-codec / column-codec written-byte ratio (the headline
    /// reduction this PR claims).
    pub fn reduction(&self) -> f64 {
        self.rows_written as f64 / self.columns_written as f64
    }

    /// Accounted state bytes per encoded column-block byte.
    pub fn compression_ratio(&self) -> f64 {
        self.spill_bytes as f64 / self.columns_written as f64
    }
}

/// Elasticity point: the overloaded two-engine spill-heavy arm run
/// static vs with a third engine joining mid-run. Both runs are
/// deterministic sims over the identical input; only the membership
/// schedule differs, so the spill-write delta is exactly what the
/// joined engine's memory buys and the relocation counters are exactly
/// what admitting it cost.
#[derive(Debug)]
pub struct ElasticPoint {
    /// Human-readable workload description (embedded in the JSON).
    pub workload: String,
    /// Encoded spill bytes written by the static two-engine run.
    pub static_spill_written: u64,
    /// Encoded spill bytes written with the mid-run join.
    pub elastic_spill_written: u64,
    /// Runtime output of the static run.
    pub static_output: u64,
    /// Runtime output of the elastic run.
    pub elastic_output: u64,
    /// Relocation rounds the rebalancing planner issued to load the
    /// joiner.
    pub rebalance_moves: u64,
    /// Accounted state bytes shipped between engines by those rounds.
    pub relocation_bytes: u64,
    /// Physically encoded bytes shipped on the wire.
    pub transfer_bytes: u64,
}

impl ElasticPoint {
    /// Static / elastic spill-write ratio (the headline reduction the
    /// join buys).
    pub fn spill_reduction(&self) -> f64 {
        self.static_spill_written as f64 / self.elastic_spill_written as f64
    }

    /// Encoded relocation traffic per encoded spill byte the static
    /// arm paid — how much wire volume the join cost relative to the
    /// disk volume it was competing with.
    pub fn relocation_overhead(&self) -> f64 {
        self.transfer_bytes as f64 / self.static_spill_written as f64
    }
}

/// The full trajectory, returned for tests and rendered to JSON.
#[derive(Debug)]
pub struct BenchReport {
    /// Probe microbench: row-layout arm.
    pub probe_row: Arm,
    /// Probe microbench: columnar arm.
    pub probe_columnar: Arm,
    /// Fast fig5-style run (6 virtual minutes).
    pub e2e_fast: E2ePoint,
    /// Paper-scale fig5-style run (60 virtual minutes, output-bound) —
    /// whose row arm is BENCH_pr3's count-first arm re-measured.
    pub e2e_paper: E2ePoint,
    /// Spill-heavy real-payload arms, one per adaptation strategy.
    pub spill_heavy: Vec<SpillPoint>,
    /// Elasticity point: static overload vs mid-run join.
    pub elasticity: ElasticPoint,
}

impl BenchReport {
    /// Columnar / row throughput ratio of the probe microbench.
    pub fn probe_speedup(&self) -> f64 {
        self.probe_columnar.tuples_per_sec / self.probe_row.tuples_per_sec
    }

    /// Render the hand-rolled JSON document.
    pub fn to_json(&self) -> String {
        let arm = |a: &Arm| {
            format!(
                "{{\"wall_seconds\": {:.4}, \"tuples_per_sec\": {:.0}}}",
                a.wall_seconds, a.tuples_per_sec
            )
        };
        let e2e = |p: &E2ePoint| {
            format!(
                "{{\n    \"workload\": \"{}\",\n    \"virtual_minutes\": {},\n    \"tuples_routed\": {},\n    \"total_output\": {},\n    \"row\": {},\n    \"columnar\": {},\n    \"speedup\": {:.3}\n  }}",
                p.workload,
                p.virtual_minutes,
                p.tuples,
                p.output,
                arm(&p.row),
                arm(&p.columnar),
                p.speedup(),
            )
        };
        let spills = self
            .spill_heavy
            .iter()
            .map(|s| {
                format!(
                    "{{\n      \"strategy\": \"{}\",\n      \"spill_bytes\": {},\n      \"rows_written\": {},\n      \"columns_written\": {},\n      \"reduction\": {:.3},\n      \"compression_ratio\": {:.3}\n    }}",
                    s.strategy,
                    s.spill_bytes,
                    s.rows_written,
                    s.columns_written,
                    s.reduction(),
                    s.compression_ratio(),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n    ");
        let el = &self.elasticity;
        let elasticity = format!(
            "{{\n    \"workload\": \"{}\",\n    \"static\": {{\"spill_bytes_written\": {}, \"runtime_output\": {}}},\n    \"join_mid_run\": {{\"spill_bytes_written\": {}, \"runtime_output\": {}, \"rebalance_moves\": {}, \"relocation_bytes\": {}, \"transfer_bytes\": {}}},\n    \"spill_write_reduction\": {:.3},\n    \"relocation_overhead_vs_static_spill\": {:.4}\n  }}",
            el.workload,
            el.static_spill_written,
            el.static_output,
            el.elastic_spill_written,
            el.elastic_output,
            el.rebalance_moves,
            el.relocation_bytes,
            el.transfer_bytes,
            el.spill_reduction(),
            el.relocation_overhead(),
        );
        format!(
            "{{\n  \"pr\": 10,\n  \"description\": \"columnar partition-group state and column-block spill codec vs the row layout and verbatim row codec, plus the elastic join's spill relief vs relocation cost\",\n  \"probe_micro\": {{\n    \"row\": {},\n    \"columnar\": {},\n    \"speedup\": {:.3}\n  }},\n  \"fig5_end_to_end_threaded_fast\": {},\n  \"fig5_end_to_end_threaded_paper_scale\": {},\n  \"spill_heavy\": {{\n    \"workload\": \"24 partitions, 1 KiB blob payloads, 4 MiB budget, 2 engines, 6 virtual minutes\",\n    \"strategies\": [{}]\n  }},\n  \"elasticity\": {}\n}}\n",
            arm(&self.probe_row),
            arm(&self.probe_columnar),
            self.probe_speedup(),
            e2e(&self.e2e_fast),
            e2e(&self.e2e_paper),
            spills,
            elasticity,
        )
    }
}

fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq * 30))
        .value(key)
        .build()
}

/// Windowed join workload: keys recur cyclically, so each partition's
/// state grows over the whole run while the sliding window keeps only
/// the recent matches valid — probing must window-filter every list.
fn windowed_workload(rounds: u64, keys: u64) -> Vec<(PartitionId, Tuple)> {
    let mut out = Vec::with_capacity(rounds as usize * 3);
    for seq in 0..rounds {
        let key = (seq % keys) as i64;
        for s in 0..3u8 {
            out.push((PartitionId((key as u32) % 120), tpl(s, seq, key)));
        }
    }
    out
}

/// One timed pass of `body`, in seconds.
fn time_once<F: FnMut() -> Result<u64>>(mut body: F) -> Result<f64> {
    let start = Instant::now();
    body()?;
    Ok(start.elapsed().as_secs_f64())
}

/// Time two arms over `rounds` alternating blocks; each block is one
/// untimed warm-up pass followed by `samples` timed passes, and each
/// arm reports its best pass overall.
///
/// Both block structure and alternation matter on a shared vCPU. The
/// two arms free wildly different heaps when a pass finishes (row
/// layout tuple graphs vs columnar arenas), so timing a pass right
/// after the *other* arm's pass charges the allocator's re-adaptation
/// to whichever arm runs second — measured at up to 1.5x distortion on
/// the 60-minute point; the per-block warm-up absorbs that. And the
/// machine drifts between fast and slow phases on multi-second scales,
/// so alternating blocks (rather than two big contiguous ones) gives
/// each arm samples from the same phases before the best is taken.
fn time_pair<A, B>(tuples: u64, rounds: u32, samples: u32, mut a: A, mut b: B) -> Result<(Arm, Arm)>
where
    A: FnMut() -> Result<u64>,
    B: FnMut() -> Result<u64>,
{
    let (mut best_a, mut best_b) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        a()?;
        for _ in 0..samples {
            best_a = best_a.min(time_once(&mut a)?);
        }
        b()?;
        for _ in 0..samples {
            best_b = best_b.min(time_once(&mut b)?);
        }
    }
    let arm = |wall: f64| Arm {
        wall_seconds: wall,
        tuples_per_sec: tuples as f64 / wall,
    };
    Ok((arm(best_a), arm(best_b)))
}

fn probe_microbench() -> Result<(Arm, Arm)> {
    // Windowed, state-intensive regime: 150 cyclic keys over 24 000
    // rounds build ~160-tuple lists per (stream, key) while a 90 s
    // window keeps only the ~20 most recent valid — every probe pays
    // for window filtering over a long timestamp column, which is
    // exactly where the columnar binary search replaces the row scan.
    const ROUNDS: u64 = 24_000;
    const KEYS: u64 = 150;
    let tuples = windowed_workload(ROUNDS, KEYS);
    let window = VirtualDuration::from_secs(90);

    fn replay(
        tuples: &[(PartitionId, Tuple)],
        layout: StateLayout,
        window: VirtualDuration,
        sink: &mut impl ResultSink,
    ) -> Result<u64> {
        let cfg = MJoinConfig::same_column(3, 0)
            .with_window(window)
            .with_layout(layout);
        let mut op = MJoinOperator::new(cfg, MemoryTracker::new(u64::MAX))?;
        for (pid, t) in tuples {
            op.process(*pid, t.clone(), sink)?;
        }
        Ok(0)
    }

    // Both arms must count the same results.
    let mut row = CountingSink::new();
    let mut col = CountingSink::new();
    replay(&tuples, StateLayout::Row, window, &mut row)?;
    replay(&tuples, StateLayout::Columnar, window, &mut col)?;
    if row.count() != col.count() || row.count() == 0 {
        return Err(DcapeError::state(format!(
            "probe microbench arms disagree: row {} vs columnar {}",
            row.count(),
            col.count()
        )));
    }

    // First closure is the row arm, matching the (row, columnar)
    // return order.
    time_pair(
        tuples.len() as u64,
        3,
        3,
        || {
            let mut sink = CountingSink::new();
            replay(&tuples, StateLayout::Row, window, &mut sink)?;
            Ok(sink.count())
        },
        || {
            let mut sink = CountingSink::new();
            replay(&tuples, StateLayout::Columnar, window, &mut sink)?;
            Ok(sink.count())
        },
    )
}

fn e2e_config(layout: StateLayout, num_engines: usize, threshold: u64) -> SimConfig {
    // Both arms keep PR2's batching and PR3's count-first delivery on;
    // only the state layout differs, so the ratio isolates the
    // columnar win over the committed BENCH_pr3 count-first numbers.
    SimConfig::new(
        num_engines,
        scale::engine_with_threshold(threshold).with_layout(layout),
        scale::paper_workload(),
        StrategyConfig::NoAdaptation,
    )
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
    .with_batching(true)
    .with_count_first(true)
}

/// Measure one end-to-end point: interleaved repeats of the threaded
/// runtime with the row vs the columnar layout, totals cross-checked.
fn measure_e2e(
    workload: &str,
    virtual_minutes: u64,
    num_engines: usize,
    threshold: u64,
    rounds: u32,
    inner: u32,
) -> Result<E2ePoint> {
    let deadline = VirtualTime::from_mins(virtual_minutes);
    let totals = std::cell::RefCell::new([None::<(u64, u64)>; 2]);
    let run_e2e = |columnar: bool| -> Result<u64> {
        let layout = if columnar {
            StateLayout::Columnar
        } else {
            StateLayout::Row
        };
        let report = run_threaded(e2e_config(layout, num_engines, threshold), deadline)?;
        let pair = (report.total_output(), report.journal_counters.tuples_routed);
        let mut totals = totals.borrow_mut();
        let slot = &mut totals[columnar as usize];
        if let Some(prev) = *slot {
            if prev != pair {
                return Err(DcapeError::state(format!(
                    "end-to-end run not reproducible: {prev:?} vs {pair:?}"
                )));
            }
        }
        *slot = Some(pair);
        Ok(pair.1)
    };
    // Back-to-back runs per timed sample, so each sample is long enough
    // to ride out scheduler noise on a shared vCPU.
    let run_n = |columnar: bool| -> Result<u64> {
        let mut tuples = 0;
        for _ in 0..inner {
            tuples = run_e2e(columnar)?;
        }
        Ok(tuples)
    };
    // Establish the routed-tuple count (equal on both arms) first.
    let tuples = run_e2e(false)? * u64::from(inner);
    let (row, columnar) = time_pair(tuples, rounds, 2, || run_n(false), || run_n(true))?;
    let (out_a, tuples_a) = totals.borrow()[0].expect("ran");
    let (out_b, tuples_b) = totals.borrow()[1].expect("ran");
    if out_a != out_b || tuples_a != tuples_b {
        return Err(DcapeError::state(format!(
            "layout end-to-end run diverged: output {out_a} vs {out_b}, routed {tuples_a} vs {tuples_b}"
        )));
    }
    Ok(E2ePoint {
        workload: workload.to_string(),
        virtual_minutes,
        row,
        columnar,
        output: out_b,
        tuples: tuples_b,
    })
}

/// One deterministic spill-heavy sim run; returns the journal's
/// `(spill_bytes, spill_bytes_written)`.
fn spill_run(strategy: StrategyConfig, codec: SegmentCodec) -> Result<(u64, u64)> {
    let spec = StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_blob(1024)
        .with_seed(7);
    let engine = dcape_engine::config::EngineConfig::three_way(1 << 22, 600 << 10)
        .with_spill_fraction(0.4)
        .with_layout(StateLayout::Columnar)
        .with_spill_codec(codec);
    let cfg = SimConfig::new(2, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(VirtualTime::from_mins(6))?;
    let report = driver.finish()?;
    let c = report.journal_counters;
    if c.spill_bytes_written == 0 {
        return Err(DcapeError::state(
            "spill-heavy bench config produced no spills".to_string(),
        ));
    }
    Ok((c.spill_bytes, c.spill_bytes_written))
}

/// Spill volumes per adaptation strategy, both codecs over identical
/// (deterministic) runs.
fn measure_spill_heavy() -> Result<Vec<SpillPoint>> {
    type StrategyCtor = fn() -> StrategyConfig;
    let strategies: [(&str, StrategyCtor); 2] = [
        ("lazy_disk", || StrategyConfig::LazyDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
        }),
        ("active_disk", || StrategyConfig::ActiveDisk {
            theta_r: 0.8,
            tau_m: VirtualDuration::from_secs(45),
            lambda: 1.5,
            spill_fraction: 0.3,
            force_spill_cap: 1 << 20,
        }),
    ];
    strategies
        .iter()
        .map(|(name, mk)| {
            let (state_rows, rows_written) = spill_run(mk(), SegmentCodec::Rows)?;
            let (state_cols, columns_written) = spill_run(mk(), SegmentCodec::Columns)?;
            if state_rows != state_cols {
                return Err(DcapeError::state(format!(
                    "spill-heavy arms diverged: accounted {state_rows} vs {state_cols}"
                )));
            }
            Ok(SpillPoint {
                strategy: name.to_string(),
                spill_bytes: state_cols,
                rows_written,
                columns_written,
            })
        })
        .collect()
}

/// One arm of the elasticity point: the spill-heavy workload on two
/// tight-memory engines, optionally with a third engine joining
/// mid-run through the elastic membership path. Deterministic sim.
fn elastic_arm(
    join_at: Option<VirtualTime>,
) -> Result<(u64, dcape_metrics::journal::CountersSnapshot)> {
    let spec = StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_blob(1024)
        .with_seed(7);
    let engine = dcape_engine::config::EngineConfig::three_way(1 << 22, 600 << 10)
        .with_spill_fraction(0.4)
        .with_layout(StateLayout::Columnar)
        .with_spill_codec(SegmentCodec::Columns);
    let strategy = StrategyConfig::LazyDisk {
        theta_r: 0.8,
        tau_m: VirtualDuration::from_secs(45),
    };
    let mut cfg = SimConfig::new(2, engine, spec, strategy)
        .with_stats_interval(VirtualDuration::from_secs(30))
        .with_journal();
    if let Some(at) = join_at {
        cfg = cfg.with_scale_events(vec![ScaleEvent::add(at)]);
    }
    let mut driver = SimDriver::new(cfg)?;
    driver.run_until(VirtualTime::from_mins(6))?;
    let report = driver.finish()?;
    Ok((report.runtime_output, report.journal_counters))
}

/// The elasticity point: static overload vs the same run with a third
/// engine joining at the two-minute mark.
fn measure_elasticity() -> Result<ElasticPoint> {
    let (static_output, s) = elastic_arm(None)?;
    let (elastic_output, e) = elastic_arm(Some(VirtualTime::from_mins(2)))?;
    if s.spill_bytes_written == 0 {
        return Err(DcapeError::state(
            "elasticity bench static arm produced no spills".to_string(),
        ));
    }
    if e.rebalance_moves == 0 {
        return Err(DcapeError::state(
            "elasticity bench join arm issued no rebalance moves".to_string(),
        ));
    }
    Ok(ElasticPoint {
        workload: "24 partitions, 1 KiB blob payloads, 4 MiB budget, lazy-disk, \
                   2 engines + join at 2 min, 6 virtual minutes"
            .to_string(),
        static_spill_written: s.spill_bytes_written,
        elastic_spill_written: e.spill_bytes_written,
        static_output,
        elastic_output,
        rebalance_moves: e.rebalance_moves,
        relocation_bytes: e.relocation_bytes,
        transfer_bytes: e.transfer_bytes,
    })
}

/// Run the full trajectory.
pub fn measure() -> Result<BenchReport> {
    let (probe_row, probe_columnar) = probe_microbench()?;
    // Fast point: 6 virtual minutes keeps the join multiplicity low, so
    // per-tuple routing/insert costs dominate. Single engine like the
    // fig5 experiment itself; threshold above total state.
    let e2e_fast = measure_e2e(
        "paper uniform, 120 partitions, pad 1024, 1 engine, no adaptation, all-mem (fast)",
        scale::default_duration(true).as_millis() / 60_000,
        1,
        scale::THRESHOLD_200MB,
        3,
        8,
    )?;
    // Paper-scale point: 60 virtual minutes, output-bound (each tuple
    // emits ~50 results) — BENCH_pr3's count-first arm re-measured as
    // the row baseline. All-mem regime across 3 engines.
    let e2e_paper = measure_e2e(
        "paper uniform, 120 partitions, pad 1024, 3 engines, no adaptation, all-mem (paper scale)",
        60,
        3,
        scale::THRESHOLD_200MB,
        3,
        2,
    )?;
    let spill_heavy = measure_spill_heavy()?;
    let elasticity = measure_elasticity()?;
    Ok(BenchReport {
        probe_row,
        probe_columnar,
        e2e_fast,
        e2e_paper,
        spill_heavy,
        elasticity,
    })
}

/// Run the trajectory and write the JSON document to `path`.
pub fn run(path: &Path) -> Result<()> {
    let report = measure()?;
    let json = report.to_json();
    let mut f = std::fs::File::create(path)
        .map_err(|e| DcapeError::state(format!("create {}: {e}", path.display())))?;
    f.write_all(json.as_bytes())
        .map_err(|e| DcapeError::state(format!("write {}: {e}", path.display())))?;
    let spill = &report.spill_heavy[0];
    println!(
        "bench-json: probe micro {:.2}x, fig5 e2e {:.2}x fast / {:.2}x paper-scale, spill bytes written {:.2}x smaller ({} strategy), mid-run join cuts spill writes {:.2}x for {:.3}x relocation overhead -> {}",
        report.probe_speedup(),
        report.e2e_fast.speedup(),
        report.e2e_paper.speedup(),
        spill.reduction(),
        spill.strategy,
        report.elasticity.spill_reduction(),
        report.elasticity.relocation_overhead(),
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_complete() {
        let arm = Arm {
            wall_seconds: 1.5,
            tuples_per_sec: 1000.0,
        };
        let fast_arm = Arm {
            wall_seconds: 1.0,
            tuples_per_sec: 1500.0,
        };
        let point = |mins: u64, output: u64, tuples: u64| E2ePoint {
            workload: "test workload".into(),
            virtual_minutes: mins,
            row: arm,
            columnar: fast_arm,
            output,
            tuples,
        };
        let r = BenchReport {
            probe_row: arm,
            probe_columnar: fast_arm,
            e2e_fast: point(6, 42, 99),
            e2e_paper: point(60, 43, 100),
            spill_heavy: vec![SpillPoint {
                strategy: "lazy_disk".into(),
                spill_bytes: 4000,
                rows_written: 3000,
                columns_written: 1000,
            }],
            elasticity: ElasticPoint {
                workload: "elastic test workload".into(),
                static_spill_written: 8000,
                elastic_spill_written: 2000,
                static_output: 55,
                elastic_output: 66,
                rebalance_moves: 4,
                relocation_bytes: 900,
                transfer_bytes: 400,
            },
        };
        let json = r.to_json();
        for key in [
            "\"pr\": 10",
            "\"probe_micro\"",
            "\"fig5_end_to_end_threaded_fast\"",
            "\"fig5_end_to_end_threaded_paper_scale\"",
            "\"row\"",
            "\"columnar\"",
            "\"speedup\"",
            "\"tuples_routed\": 99",
            "\"total_output\": 42",
            "\"tuples_routed\": 100",
            "\"total_output\": 43",
            "\"virtual_minutes\": 6",
            "\"virtual_minutes\": 60",
            "\"spill_heavy\"",
            "\"strategy\": \"lazy_disk\"",
            "\"spill_bytes\": 4000",
            "\"rows_written\": 3000",
            "\"columns_written\": 1000",
            "\"reduction\": 3.000",
            "\"compression_ratio\": 4.000",
            "\"elasticity\"",
            "\"static\": {\"spill_bytes_written\": 8000, \"runtime_output\": 55}",
            "\"join_mid_run\": {\"spill_bytes_written\": 2000, \"runtime_output\": 66, \"rebalance_moves\": 4, \"relocation_bytes\": 900, \"transfer_bytes\": 400}",
            "\"spill_write_reduction\": 4.000",
            "\"relocation_overhead_vs_static_spill\": 0.0500",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((r.probe_speedup() - 1.5).abs() < 1e-9);
        assert!((r.e2e_fast.speedup() - 1.5).abs() < 1e-9);
        assert!((r.spill_heavy[0].reduction() - 3.0).abs() < 1e-9);
        assert!((r.elasticity.spill_reduction() - 4.0).abs() < 1e-9);
        assert!((r.elasticity.relocation_overhead() - 0.05).abs() < 1e-9);
    }

    /// The spill-heavy bench regime must actually spill and must show
    /// the column-block codec writing less than the row codec — this is
    /// the acceptance gate for the PR, kept as a test so a codec
    /// regression fails CI rather than silently shrinking the ratio.
    #[test]
    fn spill_heavy_reduction_holds() {
        let points = measure_spill_heavy().unwrap();
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.spill_bytes > 0 && p.rows_written > 0 && p.columns_written > 0);
            assert!(
                p.reduction() >= 2.0,
                "{}: column blocks must halve spill writes: rows {} vs columns {} ({:.2}x)",
                p.strategy,
                p.rows_written,
                p.columns_written,
                p.reduction()
            );
        }
    }

    /// The elasticity acceptance gate: the mid-run join arm must spill
    /// measurably fewer encoded bytes than the static overloaded arm,
    /// via real rebalance moves, at a relocation cost below the spill
    /// traffic it displaces. Deterministic, so a regression in the
    /// planner or the drain/join path fails CI rather than silently
    /// eroding the benefit.
    #[test]
    fn elastic_join_reduces_spill_writes() {
        let p = measure_elasticity().unwrap();
        assert!(p.static_spill_written > 0 && p.elastic_spill_written > 0);
        assert!(p.rebalance_moves > 0, "join arm must rebalance state");
        assert!(
            p.spill_reduction() >= 1.1,
            "mid-run join must cut spill writes by >= 10%: static {} vs elastic {} ({:.3}x)",
            p.static_spill_written,
            p.elastic_spill_written,
            p.spill_reduction()
        );
        assert!(
            p.relocation_overhead() < 1.0,
            "relocation traffic must stay below the static spill volume: {} transfer vs {} spill",
            p.transfer_bytes,
            p.static_spill_written
        );
    }
}
