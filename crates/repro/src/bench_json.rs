//! `--bench-json PATH`: the machine-readable benchmark trajectory.
//!
//! Measures count-first result delivery against the per-combination
//! enumerating path on two levels and writes one JSON document:
//!
//! * `probe_enumeration` — the `MJoinOperator` hot loop in isolation on
//!   an output-bound workload (high join multiplicity), with a
//!   count-first `CountingSink` vs the same sink wrapped in
//!   `EnumeratingSink` (which keeps the default per-combination
//!   `emit_product`);
//! * `fig5_end_to_end_threaded_*` — fig5-style runs (paper workload,
//!   spill threshold, no adaptation) on the threaded runtime with the
//!   PR2 batched data path in both arms, toggling only
//!   `count_first`, reporting steady-state tuples/sec of wall-clock
//!   time.
//!
//! Wall-clock numbers are per-machine; the committed `BENCH_pr3.json`
//! records the before/after ratio on the machine that produced it.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use dcape_cluster::runtime::sim::SimConfig;
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::MJoinConfig;
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::sink::{CountingSink, EnumeratingSink, ResultSink};

use crate::scale;

/// One measured arm: wall seconds and the derived throughput.
#[derive(Debug, Clone, Copy)]
pub struct Arm {
    /// Best wall-clock seconds across repeats.
    pub wall_seconds: f64,
    /// Tuples pushed through per wall-clock second.
    pub tuples_per_sec: f64,
}

/// One end-to-end measurement point: both arms plus the run's invariant
/// totals.
#[derive(Debug)]
pub struct E2ePoint {
    /// Human-readable workload description (embedded in the JSON).
    pub workload: String,
    /// Virtual run duration in minutes.
    pub virtual_minutes: u64,
    /// Per-combination enumerating delivery (the PR2 batched path).
    pub per_combination: Arm,
    /// Count-first delivery (span-based `emit_product`).
    pub count_first: Arm,
    /// Results produced (equal on both arms).
    pub output: u64,
    /// Tuples routed (equal on both arms).
    pub tuples: u64,
}

impl E2ePoint {
    /// Count-first / per-combination throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.count_first.tuples_per_sec / self.per_combination.tuples_per_sec
    }
}

/// The full trajectory, returned for tests and rendered to JSON.
#[derive(Debug)]
pub struct BenchReport {
    /// Probe-enumeration microbench: per-combination arm.
    pub probe_per_combination: Arm,
    /// Probe-enumeration microbench: count-first arm.
    pub probe_count_first: Arm,
    /// Fast fig5-style run: low join multiplicity, so per-tuple routing
    /// and channel costs dominate and there is little enumeration to
    /// skip.
    pub e2e_fast: E2ePoint,
    /// Paper-scale fig5-style run: output-bound (each tuple emits ~50
    /// results) — the point PR2's batching could not move, and the
    /// headline number for count-first delivery.
    pub e2e_paper: E2ePoint,
}

impl BenchReport {
    /// Count-first / per-combination throughput ratio of the probe
    /// microbench.
    pub fn probe_speedup(&self) -> f64 {
        self.probe_count_first.tuples_per_sec / self.probe_per_combination.tuples_per_sec
    }

    /// Render the hand-rolled JSON document.
    pub fn to_json(&self) -> String {
        let arm = |a: &Arm| {
            format!(
                "{{\"wall_seconds\": {:.4}, \"tuples_per_sec\": {:.0}}}",
                a.wall_seconds, a.tuples_per_sec
            )
        };
        let e2e = |p: &E2ePoint| {
            format!(
                "{{\n    \"workload\": \"{}\",\n    \"virtual_minutes\": {},\n    \"tuples_routed\": {},\n    \"total_output\": {},\n    \"per_combination\": {},\n    \"count_first\": {},\n    \"speedup\": {:.3}\n  }}",
                p.workload,
                p.virtual_minutes,
                p.tuples,
                p.output,
                arm(&p.per_combination),
                arm(&p.count_first),
                p.speedup(),
            )
        };
        format!(
            "{{\n  \"pr\": 3,\n  \"description\": \"count-first join output: per-combination enumeration vs span-based product counting\",\n  \"probe_enumeration\": {{\n    \"per_combination\": {},\n    \"count_first\": {},\n    \"speedup\": {:.3}\n  }},\n  \"fig5_end_to_end_threaded_fast\": {},\n  \"fig5_end_to_end_threaded_paper_scale\": {}\n}}\n",
            arm(&self.probe_per_combination),
            arm(&self.probe_count_first),
            self.probe_speedup(),
            e2e(&self.e2e_fast),
            e2e(&self.e2e_paper),
        )
    }
}

fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq))
        .value(key)
        .build()
}

/// Tick-shaped join workload: rounds of one tuple per stream.
fn join_workload(rounds: u64, multiplicity: u64) -> Vec<(PartitionId, Tuple)> {
    let mut out = Vec::with_capacity(rounds as usize * 3);
    for seq in 0..rounds {
        let key = (seq / multiplicity) as i64;
        for s in 0..3u8 {
            out.push((PartitionId((key as u32) % 120), tpl(s, seq, key)));
        }
    }
    out
}

fn fresh_join() -> Result<MJoinOperator> {
    MJoinOperator::new(MJoinConfig::same_column(3, 0), MemoryTracker::new(u64::MAX))
}

/// One timed pass of `body`, in seconds.
fn time_once<F: FnMut() -> Result<u64>>(mut body: F) -> Result<f64> {
    let start = Instant::now();
    body()?;
    Ok(start.elapsed().as_secs_f64())
}

/// Which per-arm statistic summarizes the repeated samples.
#[derive(Clone, Copy)]
enum Stat {
    /// Least-disturbed pass — right for sub-100ms microbench bodies.
    Min,
    /// Robust to one arm luckily landing in a quiet scheduling window —
    /// right for ~1s end-to-end runs on a shared vCPU.
    Median,
}

fn summarize(mut samples: Vec<f64>, stat: Stat) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    match stat {
        Stat::Min => samples[0],
        Stat::Median => samples[samples.len() / 2],
    }
}

/// Interleaved timing of two arms over `repeats` rounds. Alternating
/// the arms keeps a drifting machine (shared vCPU, frequency scaling)
/// from biasing whichever arm happens to run later.
fn time_pair<A, B>(tuples: u64, repeats: u32, stat: Stat, mut a: A, mut b: B) -> Result<(Arm, Arm)>
where
    A: FnMut() -> Result<u64>,
    B: FnMut() -> Result<u64>,
{
    let (mut walls_a, mut walls_b) = (Vec::new(), Vec::new());
    for _ in 0..repeats {
        walls_a.push(time_once(&mut a)?);
        walls_b.push(time_once(&mut b)?);
    }
    let arm = |wall: f64| Arm {
        wall_seconds: wall,
        tuples_per_sec: tuples as f64 / wall,
    };
    Ok((arm(summarize(walls_a, stat)), arm(summarize(walls_b, stat))))
}

fn probe_microbench() -> Result<(Arm, Arm)> {
    // Output-bound regime: multiplicity 48, so by the end of each key
    // run every insert probes two ~48-tuple lists (~2.3K combinations).
    // The count-first arm counts each probe as a product in O(m); the
    // enumerating arm (EnumeratingSink keeps the default per-combination
    // emit_product) walks the full odometer.
    const ROUNDS: u64 = 1_920;
    const MULTIPLICITY: u64 = 48;
    let tuples = join_workload(ROUNDS, MULTIPLICITY);

    fn replay(tuples: &[(PartitionId, Tuple)], sink: &mut impl ResultSink) -> Result<u64> {
        let mut op = fresh_join()?;
        for (pid, t) in tuples {
            op.process(*pid, t.clone(), sink)?;
        }
        Ok(0)
    }

    // Both arms must count the same results.
    let mut fast = CountingSink::new();
    let mut slow = EnumeratingSink(CountingSink::new());
    replay(&tuples, &mut fast)?;
    replay(&tuples, &mut slow)?;
    if fast.count() != slow.0.count() || fast.count() == 0 {
        return Err(DcapeError::state(format!(
            "probe microbench arms disagree: count-first {} vs enumerating {}",
            fast.count(),
            slow.0.count()
        )));
    }

    // First closure is the per-combination arm, matching the
    // (per_combination, count_first) return order.
    time_pair(
        tuples.len() as u64,
        9,
        Stat::Min,
        || {
            let mut sink = EnumeratingSink(CountingSink::new());
            replay(&tuples, &mut sink)?;
            Ok(sink.0.count())
        },
        || {
            let mut sink = CountingSink::new();
            replay(&tuples, &mut sink)?;
            Ok(sink.count())
        },
    )
}

fn e2e_config(count_first: bool, num_engines: usize, threshold: u64) -> SimConfig {
    // Both arms keep PR2's batched data path on; only the result
    // delivery differs, so the ratio isolates the count-first win.
    SimConfig::new(
        num_engines,
        scale::engine_with_threshold(threshold),
        scale::paper_workload(),
        StrategyConfig::NoAdaptation,
    )
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
    .with_batching(true)
    .with_count_first(count_first)
}

/// Measure one end-to-end point: interleaved repeats of the threaded
/// runtime with count-first delivery off vs on, totals cross-checked.
fn measure_e2e(
    workload: &str,
    virtual_minutes: u64,
    num_engines: usize,
    threshold: u64,
    repeats: u32,
    inner: u32,
) -> Result<E2ePoint> {
    let deadline = VirtualTime::from_mins(virtual_minutes);
    let totals = std::cell::RefCell::new([None::<(u64, u64)>; 2]);
    let run_e2e = |count_first: bool| -> Result<u64> {
        let report = run_threaded(e2e_config(count_first, num_engines, threshold), deadline)?;
        let pair = (report.total_output(), report.journal_counters.tuples_routed);
        let mut totals = totals.borrow_mut();
        let slot = &mut totals[count_first as usize];
        if let Some(prev) = *slot {
            if prev != pair {
                return Err(DcapeError::state(format!(
                    "end-to-end run not reproducible: {prev:?} vs {pair:?}"
                )));
            }
        }
        *slot = Some(pair);
        Ok(pair.1)
    };
    // Back-to-back runs per timed sample, so each sample is long enough
    // to ride out scheduler noise on a shared vCPU.
    let run_n = |count_first: bool| -> Result<u64> {
        let mut tuples = 0;
        for _ in 0..inner {
            tuples = run_e2e(count_first)?;
        }
        Ok(tuples)
    };
    // Establish the routed-tuple count (equal on both arms) first.
    let tuples = run_e2e(false)? * u64::from(inner);
    let (per_combination, count_first) = time_pair(
        tuples,
        repeats,
        Stat::Median,
        || run_n(false),
        || run_n(true),
    )?;
    let (out_a, tuples_a) = totals.borrow()[0].expect("ran");
    let (out_b, tuples_b) = totals.borrow()[1].expect("ran");
    if out_a != out_b || tuples_a != tuples_b {
        return Err(DcapeError::state(format!(
            "count-first end-to-end run diverged: output {out_a} vs {out_b}, routed {tuples_a} vs {tuples_b}"
        )));
    }
    Ok(E2ePoint {
        workload: workload.to_string(),
        virtual_minutes,
        per_combination,
        count_first,
        output: out_b,
        tuples: tuples_b,
    })
}

/// Run the full trajectory.
pub fn measure() -> Result<BenchReport> {
    let (probe_per_combination, probe_count_first) = probe_microbench()?;
    // Fast point: 6 virtual minutes keeps the join multiplicity low
    // (~1 match per key per stream), so per-tuple routing/channel costs
    // dominate and there is little enumeration to skip. Single engine
    // like the fig5 experiment itself; threshold above total state.
    let e2e_fast = measure_e2e(
        "paper uniform, 120 partitions, pad 1024, 1 engine, no adaptation, all-mem (fast)",
        scale::default_duration(true).as_millis() / 60_000,
        1,
        scale::THRESHOLD_200MB,
        9,
        8,
    )?;
    // Paper-scale point: 60 virtual minutes, output-bound (each tuple
    // emits ~50 results) — exactly the point PR2's batching measured at
    // 0.99x, now served by product counting. All-mem regime across 3
    // engines.
    let e2e_paper = measure_e2e(
        "paper uniform, 120 partitions, pad 1024, 3 engines, no adaptation, all-mem (paper scale)",
        60,
        3,
        scale::THRESHOLD_200MB,
        9,
        1,
    )?;
    Ok(BenchReport {
        probe_per_combination,
        probe_count_first,
        e2e_fast,
        e2e_paper,
    })
}

/// Run the trajectory and write the JSON document to `path`.
pub fn run(path: &Path) -> Result<()> {
    let report = measure()?;
    let json = report.to_json();
    let mut f = std::fs::File::create(path)
        .map_err(|e| DcapeError::state(format!("create {}: {e}", path.display())))?;
    f.write_all(json.as_bytes())
        .map_err(|e| DcapeError::state(format!("write {}: {e}", path.display())))?;
    println!(
        "bench-json: probe enumeration {:.2}x, fig5-style threaded end-to-end {:.2}x fast / {:.2}x paper-scale -> {}",
        report.probe_speedup(),
        report.e2e_fast.speedup(),
        report.e2e_paper.speedup(),
        path.display()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_complete() {
        let arm = Arm {
            wall_seconds: 1.5,
            tuples_per_sec: 1000.0,
        };
        let point = |mins: u64, output: u64, tuples: u64| E2ePoint {
            workload: "test workload".into(),
            virtual_minutes: mins,
            per_combination: arm,
            count_first: Arm {
                wall_seconds: 1.0,
                tuples_per_sec: 1500.0,
            },
            output,
            tuples,
        };
        let r = BenchReport {
            probe_per_combination: arm,
            probe_count_first: Arm {
                wall_seconds: 1.0,
                tuples_per_sec: 1500.0,
            },
            e2e_fast: point(6, 42, 99),
            e2e_paper: point(60, 43, 100),
        };
        let json = r.to_json();
        for key in [
            "\"pr\": 3",
            "\"probe_enumeration\"",
            "\"fig5_end_to_end_threaded_fast\"",
            "\"fig5_end_to_end_threaded_paper_scale\"",
            "\"per_combination\"",
            "\"count_first\"",
            "\"speedup\"",
            "\"tuples_routed\": 99",
            "\"total_output\": 42",
            "\"tuples_routed\": 100",
            "\"total_output\": 43",
            "\"virtual_minutes\": 6",
            "\"virtual_minutes\": 60",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!((r.probe_speedup() - 1.5).abs() < 1e-9);
        assert!((r.e2e_fast.speedup() - 1.5).abs() < 1e-9);
    }
}
