//! `repro` — regenerate the paper's figures and tables.
//!
//! ```text
//! repro [EXPERIMENT ...] [--fast] [--out DIR] [--journal PATH]
//!
//! EXPERIMENT: fig5 fig6 fig7 cleanup1 fig9 fig10 fig11 fig12 cleanup2
//!             fig13 fig14 ablations all        (default: all)
//! --fast      ~6 virtual minutes per run instead of the paper's 40–60
//! --out DIR   CSV output directory (default: results/)
//! --journal PATH  record adaptation-event journals and write them as
//!                 JSON lines, one file per instrumented run, named
//!                 after PATH
//! --chaos-seed N  arm the deterministic fault-injection layer with
//!                 seed N: messages of the relocation protocol are
//!                 dropped/duplicated/delayed/corrupted per a schedule
//!                 that is a pure function of the seed
//! --fault-rate R  per-edge fault rate for the chaos layer
//!                 (default 0.05; only meaningful with --chaos-seed)
//! --runtime KIND  driver for the cluster runs: sim (default,
//!                 virtual-time simulation), threaded (one OS thread
//!                 per engine), or socket (one OS process per engine,
//!                 framed TCP; spawns dcape-node workers on loopback).
//!                 threaded/socket produce totals rather than time
//!                 series and currently drive the fig5/fig6 k-sweep
//!                 only; other figures require the sim driver
//! --listen ADDR   with --runtime socket: listen on ADDR and wait for
//!                 externally started dcape-node workers instead of
//!                 spawning them
//! --scale-event add@T|drain@T  elastic membership change at virtual
//!                 second T (repeatable): add spawns and admits a fresh
//!                 engine mid-run, drain retires the highest-id active
//!                 engine by relocating its state away. Applies to every
//!                 cluster run the selected experiments execute; add
//!                 requires spawn-capable runtimes (not --listen)
//! ```
//!
//! Figures sharing a run are grouped: `fig5`/`fig6` both run the k%
//! sweep; `fig7`/`cleanup1`, `fig9`/`fig10`, and `fig12`/`cleanup2`
//! likewise.

use std::collections::BTreeSet;
use std::process::ExitCode;

use dcape_repro::experiments::{
    ablations, fig05_06, fig07, fig09_10, fig11, fig12, fig13_14, verify,
};
use dcape_repro::RunOpts;

const USAGE: &str = "usage: repro [fig5|fig6|fig7|cleanup1|fig9|fig10|fig11|fig12|cleanup2|fig13|fig14|ablations|verify|all ...] [--fast] [--out DIR] [--journal PATH] [--bench-json PATH] [--chaos-seed N] [--fault-rate R] [--runtime sim|threaded|socket] [--listen ADDR] [--scale-event add@T|drain@T ...]";

fn main() -> ExitCode {
    let mut opts = RunOpts::default();
    let mut picks: BTreeSet<&'static str> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fast" => opts.fast = true,
            "--quiet" => opts.quiet = true,
            "--out" => match args.next() {
                Some(dir) => opts.out_dir = dir.into(),
                None => {
                    eprintln!("--out requires a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--journal" => match args.next() {
                Some(path) => opts.journal = Some(path.into()),
                None => {
                    eprintln!("--journal requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--chaos-seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(seed) => opts.chaos_seed = Some(seed),
                None => {
                    eprintln!("--chaos-seed requires an integer seed\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--fault-rate" => match args.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(rate) if (0.0..=1.0).contains(&rate) => opts.fault_rate = rate,
                _ => {
                    eprintln!("--fault-rate requires a number in [0, 1]\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--runtime" => match args.next().as_deref() {
                Some("sim") => opts.runtime = dcape_repro::RuntimeKind::Sim,
                Some("threaded") => opts.runtime = dcape_repro::RuntimeKind::Threaded,
                Some("socket") => opts.runtime = dcape_repro::RuntimeKind::Socket,
                _ => {
                    eprintln!("--runtime requires one of sim|threaded|socket\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--listen" => match args.next() {
                Some(addr) => opts.listen = Some(addr),
                None => {
                    eprintln!("--listen requires an address\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--scale-event" => {
                match args.next().as_deref().and_then(RunOpts::parse_scale_event) {
                    Some(event) => opts.scale_events.push(event),
                    None => {
                        eprintln!("--scale-event requires add@T or drain@T (T in virtual seconds)\n{USAGE}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--bench-json" => match args.next() {
                Some(path) => {
                    // A measurement mode of its own: run the batched
                    // dataflow trajectory and exit.
                    return match dcape_repro::bench_json::run(std::path::Path::new(&path)) {
                        Ok(()) => ExitCode::SUCCESS,
                        Err(e) => {
                            eprintln!("bench-json failed: {e}");
                            ExitCode::FAILURE
                        }
                    };
                }
                None => {
                    eprintln!("--bench-json requires a path\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "fig5" | "fig6" => {
                picks.insert("k-sweep");
            }
            "fig7" | "cleanup1" => {
                picks.insert("fig7");
            }
            "fig9" | "fig10" => {
                picks.insert("fig9-10");
            }
            "fig11" => {
                picks.insert("fig11");
            }
            "fig12" | "cleanup2" => {
                picks.insert("fig12");
            }
            "fig13" => {
                picks.insert("fig13");
            }
            "fig14" => {
                picks.insert("fig14");
            }
            "ablations" => {
                picks.insert("ablations");
            }
            "verify" => {
                picks.insert("verify");
            }
            "all" => {
                picks.extend([
                    "k-sweep",
                    "fig7",
                    "fig9-10",
                    "fig11",
                    "fig12",
                    "fig13",
                    "fig14",
                    "ablations",
                ]);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }
    if opts.listen.is_some() && opts.runtime != dcape_repro::RuntimeKind::Socket {
        eprintln!("--listen only makes sense with --runtime socket\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if opts.listen.is_some()
        && opts.scale_events.iter().any(|e| {
            matches!(
                e.action,
                dcape_cluster::runtime::sim::ScaleAction::AddEngine
            )
        })
    {
        eprintln!("--scale-event add@T needs spawn mode: workers cannot be started under --listen\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if picks.is_empty() {
        picks.extend([
            "k-sweep",
            "fig7",
            "fig9-10",
            "fig11",
            "fig12",
            "fig13",
            "fig14",
            "ablations",
        ]);
    }
    // The concurrent runtimes produce totals, not the virtual-time
    // series the other figures plot; refuse rather than silently fall
    // back to the sim.
    if opts.runtime != dcape_repro::RuntimeKind::Sim && picks.iter().any(|p| *p != "k-sweep") {
        eprintln!("--runtime threaded|socket currently drives the fig5/fig6 k-sweep only\n{USAGE}");
        return ExitCode::FAILURE;
    }

    println!(
        "dcape repro — mode: {}, output: {}",
        if opts.fast { "fast" } else { "paper-scale" },
        opts.out_dir.display()
    );
    for pick in picks {
        let result = match pick {
            "k-sweep" => fig05_06::run(&opts).map(|_| ()),
            "fig7" => fig07::run(&opts).map(|_| ()),
            "fig9-10" => fig09_10::run(&opts).map(|_| ()),
            "fig11" => fig11::run(&opts).map(|_| ()),
            "fig12" => fig12::run(&opts).map(|_| ()),
            "fig13" => fig13_14::run_fig13(&opts).map(|_| ()),
            "fig14" => fig13_14::run_fig14(&opts).map(|_| ()),
            "ablations" => ablations::run(&opts),
            "verify" => verify::run(&opts).and_then(|rows| {
                if rows
                    .iter()
                    .all(dcape_repro::experiments::verify::VerifyRow::pass)
                {
                    Ok(())
                } else {
                    Err(dcape_common::error::DcapeError::state(
                        "verification FAILED — see table above",
                    ))
                }
            }),
            _ => unreachable!(),
        };
        if let Err(e) = result {
            eprintln!("experiment {pick} failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
