//! Batched vs per-tuple dataflow: the microbenchmarks behind the
//! `BENCH_pr2.json` trajectory. Each pair runs the same tuples through
//! the per-tuple entry point and the batched one, so the reported
//! ns/iter difference is the amortization win (sorted partition runs,
//! one map lookup per run, precomputed join-key hashes).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dcape_cluster::placement::{PlacementMap, PlacementSpec, Route};
use dcape_cluster::split::SplitOperator;
use dcape_common::batch::TupleBatch;
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::partition::Partitioner;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::MJoinConfig;
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::sink::CountingSink;
use dcape_streamgen::{StreamSetGenerator, StreamSetSpec};

fn tpl(stream: u8, seq: u64, key: i64, pad: u32) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq))
        .value(key)
        .pad(pad)
        .build()
}

/// One tick-shaped workload: `n` rounds of 3 stream tuples, routed over
/// `parts` partitions with the given join multiplicity.
fn workload(n: u64, multiplicity: u64, parts: u32) -> Vec<(PartitionId, Tuple)> {
    let mut out = Vec::with_capacity(n as usize * 3);
    for seq in 0..n {
        let key = (seq / multiplicity) as i64;
        for s in 0..3u8 {
            out.push((PartitionId((key as u32) % parts), tpl(s, seq, key, 0)));
        }
    }
    out
}

fn fresh_join() -> MJoinOperator {
    MJoinOperator::new(MJoinConfig::same_column(3, 0), MemoryTracker::new(u64::MAX)).unwrap()
}

/// Join insert: per-tuple `process` vs `process_batch` on identical
/// input, at low and high match multiplicities.
fn bench_join_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching/join_insert");
    for &m in &[1u64, 16] {
        let tuples = workload(1000, m, 8);
        group.throughput(Throughput::Elements(tuples.len() as u64));
        group.bench_with_input(BenchmarkId::new("per_tuple", m), &tuples, |b, tuples| {
            b.iter(|| {
                let mut op = fresh_join();
                let mut sink = CountingSink::new();
                for (pid, t) in tuples {
                    op.process(*pid, t.clone(), &mut sink).unwrap();
                }
                black_box(sink.count())
            });
        });
        group.bench_with_input(BenchmarkId::new("batched", m), &tuples, |b, tuples| {
            b.iter(|| {
                let mut op = fresh_join();
                let mut sink = CountingSink::new();
                // One tick's worth of tuples per batch, as the drivers send.
                for chunk in tuples.chunks(96) {
                    let batch = TupleBatch::from(chunk.to_vec());
                    op.process_batch(batch, &mut sink).unwrap();
                }
                black_box(sink.count())
            });
        });
    }
    group.finish();
}

/// Split routing: classify + route per tuple vs classify a whole tick
/// into per-engine batches (the sim/threaded batched-loop inner step).
fn bench_routing(c: &mut Criterion) {
    let spec = StreamSetSpec::uniform(120, 30_000, 3, VirtualDuration::from_millis(30));
    let mut gen = StreamSetGenerator::new(spec).unwrap();
    let tuples = gen.generate_ticks(2_000);
    let num_engines = 3usize;
    let mut group = c.benchmark_group("batching/routing");
    group.throughput(Throughput::Elements(tuples.len() as u64));
    group.bench_function("per_tuple", |b| {
        b.iter(|| {
            let mut split = SplitOperator::new(Partitioner::modulo(120), vec![0, 0, 0]).unwrap();
            let mut map = PlacementMap::new(&PlacementSpec::RoundRobin, 120, num_engines).unwrap();
            let mut delivered = 0u64;
            for t in &tuples {
                let pid = split.classify(t).unwrap();
                if let Route::Deliver(_, _) = map.route(pid, t.clone()).unwrap() {
                    delivered += 1;
                }
            }
            black_box(delivered)
        });
    });
    group.bench_function("batched", |b| {
        b.iter(|| {
            let mut split = SplitOperator::new(Partitioner::modulo(120), vec![0, 0, 0]).unwrap();
            let mut map = PlacementMap::new(&PlacementSpec::RoundRobin, 120, num_engines).unwrap();
            let mut engine_batches: Vec<TupleBatch> =
                (0..num_engines).map(|_| TupleBatch::new()).collect();
            let mut delivered = 0u64;
            for chunk in tuples.chunks(96) {
                for t in chunk {
                    let pid = split.classify(t).unwrap();
                    if let Route::Deliver(engine, tuple) = map.route(pid, t.clone()).unwrap() {
                        engine_batches[engine.index()].push(pid, tuple);
                    }
                }
                for batch in &mut engine_batches {
                    delivered += batch.len() as u64;
                    batch.clear();
                }
            }
            black_box(delivered)
        });
    });
    group.finish();
}

/// Generator: fresh Vec per tick vs the reusable `tick_batch` buffer.
fn bench_generator_tick(c: &mut Criterion) {
    let spec = StreamSetSpec::uniform(120, 30_000, 3, VirtualDuration::from_millis(30))
        .with_payload_pad(1024);
    let mut group = c.benchmark_group("batching/streamgen_5k_ticks");
    group.bench_function("collect_per_tick", |b| {
        b.iter(|| {
            let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
            let mut n = 0usize;
            for _ in 0..5_000 {
                n += gen.generate_ticks(1).len();
            }
            black_box(n)
        });
    });
    group.bench_function("tick_batch_reuse", |b| {
        b.iter(|| {
            let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
            let mut buf = Vec::new();
            let mut n = 0usize;
            for _ in 0..5_000 {
                gen.tick_batch(&mut buf);
                n += buf.len();
            }
            black_box(n)
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_join_paths,
    bench_routing,
    bench_generator_tick
);
criterion_main!(benches);
