//! Figure-level benchmarks: each paper experiment in its fast
//! configuration, timed end to end. These make regressions in the
//! adaptation machinery visible as experiment-level slowdowns, and
//! `cargo bench` doubles as a smoke-run of every figure.

use criterion::{criterion_group, criterion_main, Criterion};

use dcape_repro::experiments::{fig05_06, fig07, fig09_10, fig11, fig12, fig13_14};
use dcape_repro::RunOpts;

fn opts() -> RunOpts {
    RunOpts::fast_quiet()
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    group.bench_function("fig05_06_k_sweep", |b| {
        b.iter(|| fig05_06::run(&opts()).unwrap())
    });
    group.bench_function("fig07_spill_policies", |b| {
        b.iter(|| fig07::run(&opts()).unwrap())
    });
    group.bench_function("fig09_10_relocation_thresholds", |b| {
        b.iter(|| fig09_10::run(&opts()).unwrap())
    });
    group.bench_function("fig11_relocation_vs_spill", |b| {
        b.iter(|| fig11::run(&opts()).unwrap())
    });
    group.bench_function("fig12_lazy_vs_none", |b| {
        b.iter(|| fig12::run(&opts()).unwrap())
    });
    group.bench_function("fig13_lazy_vs_active", |b| {
        b.iter(|| fig13_14::run_fig13(&opts()).unwrap())
    });
    group.bench_function("fig14_widened_gap", |b| {
        b.iter(|| fig13_14::run_fig14(&opts()).unwrap())
    });
    group.finish();
}

criterion_group!(figures, bench_figures);
criterion_main!(figures);
