//! Micro-benchmarks of the core building blocks: symmetric join
//! insert/probe, tuple codec, spill round-trips, victim selection,
//! cleanup merging, routing, and stream generation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dcape_common::ids::{EngineId, PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::MJoinConfig;
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::sink::CountingSink;
use dcape_engine::spill::cleanup::merge_segments;
use dcape_engine::state::productivity::GroupStats;
use dcape_engine::VictimPolicy;
use dcape_storage::{SpillStore, SpilledGroup};
use dcape_streamgen::{StreamSetGenerator, StreamSetSpec};

fn tpl(stream: u8, seq: u64, key: i64, pad: u32) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq))
        .value(key)
        .pad(pad)
        .build()
}

/// Symmetric m-way hash join: insert throughput at different join
/// multiplicities (matches per probe).
fn bench_join_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("join/insert");
    for &multiplicity in &[1u64, 4, 16] {
        group.throughput(Throughput::Elements(3000));
        group.bench_with_input(
            BenchmarkId::from_parameter(multiplicity),
            &multiplicity,
            |b, &m| {
                b.iter(|| {
                    let mut op = MJoinOperator::new(
                        MJoinConfig::same_column(3, 0),
                        MemoryTracker::new(u64::MAX),
                    )
                    .unwrap();
                    let mut sink = CountingSink::new();
                    for seq in 0..1000u64 {
                        for s in 0..3u8 {
                            let key = (seq / m) as i64;
                            op.process(
                                PartitionId((key % 8) as u32),
                                tpl(s, seq, key, 0),
                                &mut sink,
                            )
                            .unwrap();
                        }
                    }
                    black_box(sink.count())
                });
            },
        );
    }
    group.finish();
}

/// Tuple codec round-trip.
fn bench_codec(c: &mut Criterion) {
    use dcape_storage::codec::{decode_tuple, encode_tuple};
    let tuple = tpl(1, 123456, 987654, 512);
    c.bench_function("codec/encode_decode_tuple", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::with_capacity(64);
            encode_tuple(&mut buf, black_box(&tuple));
            let mut bytes = buf.freeze();
            black_box(decode_tuple(&mut bytes).unwrap())
        });
    });
}

fn group_with(tuples_per_stream: u64, pad: u32) -> SpilledGroup {
    let mut g = SpilledGroup::empty(PartitionId(0), 3);
    for s in 0..3u8 {
        for i in 0..tuples_per_stream {
            g.per_stream[s as usize].push(tpl(s, i, i as i64 % 50, pad));
        }
    }
    g
}

/// Spill store round-trip (in-memory backend; file backend separately).
fn bench_spill_store(c: &mut Criterion) {
    let g = group_with(500, 256);
    c.bench_function("spill/mem_roundtrip_1500_tuples", |b| {
        b.iter(|| {
            let mut store = SpillStore::in_memory();
            store.spill_group(black_box(&g)).unwrap();
            black_box(store.take_segments(PartitionId(0)).unwrap())
        });
    });
    let dir = std::env::temp_dir().join("dcape-bench-spill");
    c.bench_function("spill/file_roundtrip_1500_tuples", |b| {
        b.iter(|| {
            let backend = dcape_storage::FileBackend::new(&dir).unwrap();
            let mut store = SpillStore::new(Box::new(backend));
            store.spill_group(black_box(&g)).unwrap();
            black_box(store.take_segments(PartitionId(0)).unwrap())
        });
    });
    let _ = std::fs::remove_dir_all(&dir);
}

/// Victim selection over 1 000 candidate groups.
fn bench_victim_selection(c: &mut Criterion) {
    let stats: Vec<GroupStats> = (0..1000u32)
        .map(|i| {
            GroupStats::new(
                PartitionId(i),
                (i as usize % 97) * 1000 + 100,
                (i as u64 * 37) % 5000,
            )
        })
        .collect();
    let mut group = c.benchmark_group("policy/select_1000_groups");
    for policy in [
        VictimPolicy::LeastProductive,
        VictimPolicy::LargestFirst,
        VictimPolicy::Random,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy:?}")),
            &policy,
            |b, p| {
                let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
                b.iter(|| black_box(p.select_victims(stats.clone(), 5_000_000, &mut rng)));
            },
        );
    }
    group.finish();
}

/// Cleanup merging at different segment counts.
fn bench_cleanup_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("cleanup/merge");
    for &segments in &[2usize, 4, 8] {
        let slices: Vec<SpilledGroup> = (0..segments).map(|_| group_with(100, 0)).collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(segments),
            &slices,
            |b, slices| {
                b.iter(|| {
                    let mut sink = CountingSink::new();
                    merge_segments(&[0, 0, 0], black_box(slices.clone()), &mut sink).unwrap();
                    black_box(sink.count())
                });
            },
        );
    }
    group.finish();
}

/// Stream generation throughput.
fn bench_generator(c: &mut Criterion) {
    let spec = StreamSetSpec::uniform(120, 30_000, 3, VirtualDuration::from_millis(30))
        .with_payload_pad(1024);
    c.bench_function("streamgen/10k_ticks", |b| {
        b.iter(|| {
            let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
            black_box(gen.generate_ticks(10_000).len())
        });
    });
}

/// Relocation extract + install between two engines.
fn bench_relocation_transfer(c: &mut Criterion) {
    use dcape_engine::config::EngineConfig;
    use dcape_engine::engine::QueryEngine;
    c.bench_function("relocation/extract_install_8_groups", |b| {
        b.iter_batched(
            || {
                let mut a = QueryEngine::in_memory(
                    EngineId(0),
                    EngineConfig::three_way(u64::MAX / 4, u64::MAX / 8),
                )
                .unwrap();
                let mut sink = CountingSink::new();
                for seq in 0..2000u64 {
                    for s in 0..3u8 {
                        let key = (seq % 200) as i64;
                        a.process(
                            PartitionId((key % 8) as u32),
                            tpl(s, seq, key, 128),
                            &mut sink,
                        )
                        .unwrap();
                    }
                }
                let b_engine = QueryEngine::in_memory(
                    EngineId(1),
                    EngineConfig::three_way(u64::MAX / 4, u64::MAX / 8),
                )
                .unwrap();
                (a, b_engine)
            },
            |(mut a, mut b_engine)| {
                let parts = a.select_parts_to_move(u64::MAX / 2);
                let groups = a.extract_groups(&parts);
                b_engine.install_groups(groups).unwrap();
                black_box(b_engine.join().group_count())
            },
            criterion::BatchSize::LargeInput,
        );
    });
}

/// Windowed insert: the per-emission window check plus periodic purge.
fn bench_windowed_insert(c: &mut Criterion) {
    use dcape_common::time::VirtualDuration;
    use dcape_engine::config::MJoinConfig;
    c.bench_function("join/windowed_insert_3000", |b| {
        b.iter(|| {
            let cfg = MJoinConfig::same_column(3, 0).with_window(VirtualDuration::from_millis(500));
            let mut op = MJoinOperator::new(cfg, MemoryTracker::new(u64::MAX)).unwrap();
            let mut sink = CountingSink::new();
            let skip = dcape_common::hash::FxHashSet::default();
            for seq in 0..1000u64 {
                for s in 0..3u8 {
                    let key = (seq % 40) as i64;
                    let mut t = TupleBuilder::new(StreamId(s)).seq(seq).value(key);
                    t = t.ts(VirtualTime::from_millis(seq * 10));
                    op.process(PartitionId((key % 8) as u32), t.build(), &mut sink)
                        .unwrap();
                }
                if seq % 100 == 0 {
                    op.purge_expired(VirtualTime::from_millis(seq * 10), &skip);
                }
            }
            black_box(sink.count())
        });
    });
}

/// Trace record + replay throughput.
fn bench_trace_io(c: &mut Criterion) {
    use dcape_storage::{TraceReader, TraceWriter};
    let tuples: Vec<Tuple> = (0..2000u64)
        .map(|i| tpl((i % 3) as u8, i, i as i64 % 50, 64))
        .collect();
    let path = std::env::temp_dir().join("dcape-bench-trace");
    c.bench_function("trace/record_replay_2000", |b| {
        b.iter(|| {
            let mut w = TraceWriter::create(&path).unwrap();
            for t in &tuples {
                w.write(t).unwrap();
            }
            w.finish().unwrap();
            let n = TraceReader::open(&path).unwrap().count();
            black_box(n)
        });
    });
    let _ = std::fs::remove_file(&path);
}

/// The per-input (XJoin-style) join baseline, for comparison with
/// `join/insert`.
fn bench_per_input_join(c: &mut Criterion) {
    use dcape_engine::spill::per_input::PerInputJoin;
    c.bench_function("join/per_input_insert_3000", |b| {
        b.iter(|| {
            let mut j = PerInputJoin::new(vec![0, 0, 0], MemoryTracker::new(u64::MAX)).unwrap();
            let mut sink = CountingSink::new();
            for seq in 0..1000u64 {
                for s in 0..3u8 {
                    let key = (seq % 40) as i64;
                    j.process(
                        PartitionId((key % 8) as u32),
                        tpl(s, seq, key, 0),
                        &mut sink,
                    )
                    .unwrap();
                }
            }
            black_box(sink.count())
        });
    });
}

criterion_group!(
    benches,
    bench_join_insert,
    bench_codec,
    bench_spill_store,
    bench_victim_selection,
    bench_cleanup_merge,
    bench_generator,
    bench_relocation_transfer,
    bench_windowed_insert,
    bench_trace_io,
    bench_per_input_join,
);
criterion_main!(benches);
