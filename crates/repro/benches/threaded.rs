//! Wall-clock scaling of the threaded runtime: the same workload over
//! 1, 2, and 4 engine threads, including the full relocation protocol.
//! (Criterion measures real time here — this is the one benchmark where
//! physical parallelism, not virtual time, is the subject.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use dcape_cluster::runtime::sim::SimConfig;
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_streamgen::StreamSetSpec;

fn bench_threaded_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("threaded/engines");
    group.sample_size(10);
    for &engines in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(engines), &engines, |b, &n| {
            b.iter(|| {
                let spec = StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
                    .with_payload_pad(128);
                let cfg = SimConfig::new(
                    n,
                    EngineConfig::three_way(1 << 24, 1 << 22),
                    spec,
                    StrategyConfig::lazy_default(),
                )
                .with_stats_interval(VirtualDuration::from_secs(30));
                run_threaded(cfg, VirtualTime::from_mins(3))
                    .unwrap()
                    .total_output()
            });
        });
    }
    group.finish();
}

criterion_group!(threaded, bench_threaded_scaling);
criterion_main!(threaded);
