//! Span-based vs per-combination result emission: the microbenchmarks
//! behind the `BENCH_pr3.json` trajectory. Each pair pushes the same
//! tuples through `MJoinOperator` with a count-first `CountingSink`
//! (one `emit_product` per probe, counted as a product) and with the
//! same sink wrapped in `EnumeratingSink` (which keeps the default
//! per-combination `emit_product`, i.e. the pre-count-first odometer
//! walk), so the reported ns/iter difference is the enumeration cost
//! skipped.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::mem::MemoryTracker;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_common::tuple::{Tuple, TupleBuilder};
use dcape_engine::config::MJoinConfig;
use dcape_engine::operators::mjoin::MJoinOperator;
use dcape_engine::probe::{ProbeSpans, SpanList};
use dcape_engine::sink::{CountingSink, EnumeratingSink, ResultSink};

fn tpl(stream: u8, seq: u64, key: i64) -> Tuple {
    TupleBuilder::new(StreamId(stream))
        .seq(seq)
        .ts(VirtualTime::from_millis(seq))
        .value(key)
        .build()
}

/// One tick-shaped workload: `n` rounds of 3 stream tuples, routed over
/// `parts` partitions with the given join multiplicity.
fn workload(n: u64, multiplicity: u64, parts: u32) -> Vec<(PartitionId, Tuple)> {
    let mut out = Vec::with_capacity(n as usize * 3);
    for seq in 0..n {
        let key = (seq / multiplicity) as i64;
        for s in 0..3u8 {
            out.push((PartitionId((key as u32) % parts), tpl(s, seq, key)));
        }
    }
    out
}

fn run(cfg: MJoinConfig, tuples: &[(PartitionId, Tuple)], sink: &mut impl ResultSink) {
    let mut op = MJoinOperator::new(cfg, MemoryTracker::new(u64::MAX)).unwrap();
    for (pid, t) in tuples {
        op.process(*pid, t.clone(), sink).unwrap();
    }
}

/// Join insert with count-first vs enumerating sinks, unwindowed
/// (product shortcut) and windowed (window-pruned counting), at low and
/// high match multiplicities.
fn bench_emission_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("span_emit/join_insert");
    for &m in &[8u64, 48] {
        let tuples = workload(960, m, 8);
        group.throughput(Throughput::Elements(tuples.len() as u64));
        for (name, window) in [
            ("unwindowed", None),
            // Tuples of one key span ~3m ms; a window of ~1.5m ms keeps
            // probes straddling the window edge, exercising the
            // binary-search trim and the exact fallback.
            ("windowed", Some(VirtualDuration::from_millis(3 * m / 2))),
        ] {
            let cfg = || {
                let cfg = MJoinConfig::same_column(3, 0);
                match window {
                    Some(w) => cfg.with_window(w),
                    None => cfg,
                }
            };
            group.bench_with_input(
                BenchmarkId::new(format!("count_first/{name}"), m),
                &tuples,
                |b, tuples| {
                    b.iter(|| {
                        let mut sink = CountingSink::new();
                        run(cfg(), tuples, &mut sink);
                        black_box(sink.count())
                    });
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("per_combination/{name}"), m),
                &tuples,
                |b, tuples| {
                    b.iter(|| {
                        let mut sink = EnumeratingSink(CountingSink::new());
                        run(cfg(), tuples, &mut sink);
                        black_box(sink.0.count())
                    });
                },
            );
        }
    }
    group.finish();
}

/// The counting kernel in isolation: `ProbeSpans::count_valid` (product
/// / window-pruned) vs the odometer walk over the same spans.
fn bench_count_kernel(c: &mut Criterion) {
    let lists: Vec<Vec<Tuple>> = (0..3u8)
        .map(|s| (0..64).map(|i| tpl(s, i, 7)).collect())
        .collect();
    let spans: Vec<SpanList> = lists.iter().map(|l| SpanList::Slice(l)).collect();
    let mut group = c.benchmark_group("span_emit/count_kernel_64x64x64");
    for (name, window) in [
        ("unwindowed", None),
        ("windowed_within", Some(VirtualDuration::from_millis(100))),
        (
            "windowed_straddling",
            Some(VirtualDuration::from_millis(32)),
        ),
    ] {
        let probe = ProbeSpans::new(&spans, window, true);
        group.bench_function(&format!("count_valid/{name}"), |b| {
            b.iter(|| black_box(probe.count_valid()));
        });
        group.bench_function(&format!("enumerate/{name}"), |b| {
            b.iter(|| {
                let mut n = 0u64;
                probe.for_each_valid(|parts| n += parts.len() as u64 / 3);
                black_box(n)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_emission_paths, bench_count_kernel);
criterion_main!(benches);
