//! Ignored-by-default perf probe for the fig5 end-to-end layout gap.
//!
//! Prints row vs columnar wall times over an engines × duration grid so
//! a regression can be localized (state size vs thread count):
//!
//! ```text
//! cargo test -q -p dcape-repro --release --test e2e_perf -- --ignored --nocapture
//! ```

use std::time::Instant;

use dcape_cluster::runtime::sim::SimConfig;
use dcape_cluster::runtime::threaded::run_threaded;
use dcape_cluster::strategy::StrategyConfig;
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::StateLayout;
use dcape_repro::scale;

fn cfg(layout: StateLayout, engines: usize) -> SimConfig {
    SimConfig::new(
        engines,
        scale::engine_with_threshold(scale::THRESHOLD_200MB).with_layout(layout),
        scale::paper_workload(),
        StrategyConfig::NoAdaptation,
    )
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
    .with_batching(true)
    .with_count_first(true)
}

#[test]
#[ignore = "perf probe, run manually with --nocapture"]
fn grid() {
    for engines in [1usize, 3] {
        for mins in [6u64, 20, 60] {
            for layout in [StateLayout::Row, StateLayout::Columnar] {
                run_threaded(cfg(layout, engines), VirtualTime::from_mins(mins)).unwrap();
                let mut best = f64::MAX;
                let mut output = 0;
                for _ in 0..3 {
                    let start = Instant::now();
                    let report =
                        run_threaded(cfg(layout, engines), VirtualTime::from_mins(mins)).unwrap();
                    best = best.min(start.elapsed().as_secs_f64());
                    output = report.total_output();
                }
                println!(
                    "e2e {engines} engines {mins:>2} min {layout:?}: {best:.4}s (output {output})"
                );
            }
        }
    }
}
