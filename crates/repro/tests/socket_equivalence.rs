//! Cross-runtime equivalence: the multi-process socket driver must
//! compute exactly what the threaded driver computes — identical result
//! totals, per-engine spill counts, and deterministic journal counters —
//! on spill-only, windowed, and relocation-heavy configurations; and it
//! must keep the chaos suite's exactly-once invariants over real TCP
//! sockets, including a real `kill -9` + respawn of a worker process.
//!
//! Workers are the actual `dcape-node` binary (cargo builds it for this
//! test; `CARGO_BIN_EXE_dcape-node` points at it), spawned on loopback.
//!
//! Counters asserted for equality are only the cross-runtime
//! deterministic ones: `events_recorded`/`events_dropped` depend on how
//! many wall-clock stats samples each run took and are never compared.

use std::collections::HashMap;
use std::path::PathBuf;

use dcape_cluster::faults::{FaultConfig, FaultPlan};
use dcape_cluster::runtime::sim::{ScaleEvent, SimConfig};
use dcape_cluster::runtime::socket::{run_socket, KillPlan, SocketConfig, SocketMode};
use dcape_cluster::runtime::threaded::{run_threaded, ThreadedReport};
use dcape_cluster::strategy::StrategyConfig;
use dcape_cluster::PlacementSpec;
use dcape_common::ids::{EngineId, PartitionId};
use dcape_common::time::{VirtualDuration, VirtualTime};
use dcape_engine::config::EngineConfig;
use dcape_metrics::journal::AdaptEvent;
use dcape_streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

/// The worker binary cargo built alongside this test.
fn node_bin() -> PathBuf {
    PathBuf::from(env!("CARGO_BIN_EXE_dcape-node"))
}

fn socket_cfg(sim: SimConfig) -> SocketConfig {
    SocketConfig {
        sim,
        mode: SocketMode::Spawn {
            node_bin: node_bin(),
        },
        kill: None,
    }
}

/// Seeds to sweep: CI passes one per job via `DCAPE_CHAOS_SEED`;
/// locally a fixed short list keeps the suite fast.
fn seeds() -> Vec<u64> {
    match std::env::var("DCAPE_CHAOS_SEED") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .expect("DCAPE_CHAOS_SEED must be an unsigned integer")],
        Err(_) => vec![7, 42, 0x00C0_FFEE],
    }
}

/// Reference join count for a spec consumed up to `deadline`.
fn reference_result_count(spec: &StreamSetSpec, deadline: VirtualTime) -> u64 {
    let mut gen = StreamSetGenerator::new(spec.clone()).unwrap();
    let tuples = gen.generate_until(deadline);
    let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
    for t in &tuples {
        let key = t.values()[0].as_int().unwrap();
        *counts.entry((t.stream().0, key)).or_default() += 1;
    }
    let keys: std::collections::HashSet<i64> = counts.keys().map(|(_, k)| *k).collect();
    let mut total = 0u64;
    for key in keys {
        let mut product = 1u64;
        for s in 0..spec.num_streams as u8 {
            product *= counts.get(&(s, key)).copied().unwrap_or(0);
        }
        total += product;
    }
    total
}

/// Alternating skew on roomy engines: relocation-heavy, spill-free.
fn relocation_workload(seed: u64) -> StreamSetSpec {
    let group_a: Vec<PartitionId> = (0..6).map(PartitionId).collect();
    StreamSetSpec::uniform(24, 2400, 1, VirtualDuration::from_millis(30))
        .with_payload_pad(200)
        .with_seed(seed)
        .with_pattern(ArrivalPattern::AlternatingSkew {
            group_a,
            ratio: 10.0,
            period: VirtualDuration::from_mins(2),
        })
}

fn relocation_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 30, 1 << 29),
        spec,
        StrategyConfig::LazyDisk {
            theta_r: 0.9,
            tau_m: VirtualDuration::from_secs(45),
        },
    )
    .with_placement(PlacementSpec::Fractions(vec![
        1.0 / engines as f64;
        engines
    ]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// Tight memory, no adaptation strategy: pure spill + cleanup — the
/// regime where both runtimes are fully deterministic, down to the
/// per-engine spill counts and routed-tuple counters.
fn spill_cfg(spec: StreamSetSpec, engines: usize) -> SimConfig {
    SimConfig::new(
        engines,
        EngineConfig::three_way(1 << 22, 600 << 10).with_spill_fraction(0.4),
        spec,
        StrategyConfig::NoAdaptation,
    )
    .with_placement(PlacementSpec::Fractions(vec![
        1.0 / engines as f64;
        engines
    ]))
    .with_stats_interval(VirtualDuration::from_secs(30))
    .with_journal()
}

/// When `DCAPE_JOURNAL_DUMP` names a directory, write a run's journal
/// there as JSONL (CI uploads the directory as an artifact on failure).
/// Pid-qualified: socket-runtime workers dump their own journals from
/// their own processes into the same directory.
fn dump_journal(name: &str, entries: &[dcape_metrics::journal::JournalEntry]) {
    if let Ok(dir) = std::env::var("DCAPE_JOURNAL_DUMP") {
        let path =
            std::path::Path::new(&dir).join(format!("{name}-pid{}.jsonl", std::process::id()));
        if let Err(e) = dcape_metrics::report::write_journal_jsonl(&path, entries) {
            eprintln!("journal dump to {} failed: {e}", path.display());
        }
    }
}

/// The chaos suite's journal invariants, applied to a socket run.
fn assert_chaos_invariants(
    journal: &[dcape_metrics::journal::JournalEntry],
    counters: &dcape_metrics::journal::CountersSnapshot,
) {
    let journaled_faults = journal
        .iter()
        .filter(|e| matches!(e.event, AdaptEvent::FaultInjected { .. }))
        .count() as u64;
    assert_eq!(
        counters.faults_injected, journaled_faults,
        "every injected fault must be journaled exactly once"
    );
    let retries = journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "phase_timeout_retry"),
        )
        .count() as u64;
    assert_eq!(counters.msgs_retried, retries, "retry accounting");
    let aborts = journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "round_aborted"),
        )
        .count() as u64;
    assert_eq!(counters.rounds_aborted, aborts, "abort accounting");
    assert!(
        counters.watermark_released_on_abort <= counters.rounds_aborted,
        "a watermark release needs an abort"
    );
    assert_eq!(
        counters.buffered_in_flight, 0,
        "no tuple may stay buffered at a paused split after shutdown"
    );
}

/// Equality of everything that is deterministic across the two
/// concurrent runtimes on a fault-free, adaptation-free run.
fn assert_deterministic_equivalence(t: &ThreadedReport, s: &ThreadedReport, what: &str) {
    assert_eq!(t.total_output(), s.total_output(), "{what}: total output");
    assert_eq!(
        t.runtime_output, s.runtime_output,
        "{what}: runtime-phase output"
    );
    assert_eq!(
        t.cleanup_output, s.cleanup_output,
        "{what}: cleanup-phase output"
    );
    assert_eq!(t.spill_counts, s.spill_counts, "{what}: per-engine spills");
    let (tc, sc) = (&t.journal_counters, &s.journal_counters);
    assert_eq!(tc.tuples_routed, sc.tuples_routed, "{what}: tuples routed");
    assert_eq!(tc.spill_bytes, sc.spill_bytes, "{what}: spill bytes");
    for (name, tv, sv) in [
        ("relocation_bytes", tc.relocation_bytes, sc.relocation_bytes),
        (
            "buffered_in_flight",
            tc.buffered_in_flight,
            sc.buffered_in_flight,
        ),
        (
            "replayed_in_order",
            tc.replayed_in_order,
            sc.replayed_in_order,
        ),
        ("faults_injected", tc.faults_injected, sc.faults_injected),
        ("msgs_retried", tc.msgs_retried, sc.msgs_retried),
        ("rounds_aborted", tc.rounds_aborted, sc.rounds_aborted),
    ] {
        assert_eq!(tv, 0, "{what}: threaded {name} must be zero on this run");
        assert_eq!(sv, 0, "{what}: socket {name} must be zero on this run");
    }
}

#[test]
fn spill_run_is_equivalent_across_runtimes() {
    let deadline = VirtualTime::from_mins(4);
    let spec = relocation_workload(55).with_pattern(ArrivalPattern::Uniform);

    let threaded = run_threaded(spill_cfg(spec.clone(), 2), deadline).unwrap();
    dump_journal("socketeq-spill-threaded", &threaded.journal);
    assert!(
        threaded.spill_counts.iter().sum::<u64>() > 0,
        "the spill regime must actually spill"
    );
    assert_eq!(
        threaded.total_output(),
        reference_result_count(&spec, deadline)
    );

    let socket = run_socket(socket_cfg(spill_cfg(spec, 2)), deadline).unwrap();
    dump_journal("socketeq-spill-socket", &socket.journal);
    assert_deterministic_equivalence(&threaded, &socket, "spill run");
}

#[test]
fn windowed_run_is_equivalent_across_runtimes() {
    let deadline = VirtualTime::from_mins(4);
    let spec = relocation_workload(91).with_pattern(ArrivalPattern::Uniform);
    let windowed = |spec: StreamSetSpec| {
        let mut cfg = spill_cfg(spec, 2);
        cfg.engine.join = cfg.engine.join.with_window(VirtualDuration::from_secs(60));
        cfg
    };

    let threaded = run_threaded(windowed(spec.clone()), deadline).unwrap();
    dump_journal("socketeq-windowed-threaded", &threaded.journal);
    let socket = run_socket(socket_cfg(windowed(spec)), deadline).unwrap();
    dump_journal("socketeq-windowed-socket", &socket.journal);
    assert!(
        threaded.total_output() > 0,
        "windowed run must produce results"
    );
    assert_deterministic_equivalence(&threaded, &socket, "windowed run");
}

#[test]
fn relocation_run_matches_threaded_and_reference() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(77);
    let reference = reference_result_count(&spec, deadline);

    let threaded = run_threaded(relocation_cfg(spec.clone(), 2), deadline).unwrap();
    dump_journal("socketeq-reloc-threaded", &threaded.journal);
    assert!(threaded.relocations > 0, "threaded baseline must relocate");
    assert_eq!(threaded.total_output(), reference);

    let socket = run_socket(socket_cfg(relocation_cfg(spec, 2)), deadline).unwrap();
    dump_journal("socketeq-reloc-socket", &socket.journal);
    assert!(
        socket.relocations > 0,
        "the socket run must exercise the relocation protocol (relayed \
         InstallStates over TCP) for this test to mean anything"
    );
    assert_eq!(
        socket.total_output(),
        reference,
        "relocations over real sockets changed the total"
    );
    assert_eq!(socket.journal_counters.faults_injected, 0);
    assert_eq!(socket.journal_counters.buffered_in_flight, 0);
}

#[test]
fn chaos_totals_survive_real_sockets() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(77);
    let reference = reference_result_count(&spec, deadline);

    for seed in seeds() {
        let plan = FaultPlan::new(seed, FaultConfig::uniform(0.2));
        let report = run_socket(
            socket_cfg(relocation_cfg(spec.clone(), 2).with_faults(plan)),
            deadline,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: socket chaos run failed: {e}"));
        dump_journal(&format!("socketeq-chaos-seed{seed}"), &report.journal);
        assert_eq!(
            report.total_output(),
            reference,
            "seed {seed}: chaos over real sockets changed the total"
        );
        assert_chaos_invariants(&report.journal, &report.journal_counters);
    }
}

#[test]
fn kill_nine_and_respawn_is_exactly_once() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(42);
    let reference = reference_result_count(&spec, deadline);

    let mut cfg = socket_cfg(relocation_cfg(spec, 2));
    cfg.kill = Some(KillPlan {
        engine: EngineId(1),
        after_stats: 2,
    });
    let report = run_socket(cfg, deadline).unwrap();
    dump_journal("socketeq-kill9", &report.journal);

    let respawns = report
        .journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "worker_respawned"),
        )
        .count();
    assert!(
        respawns >= 1,
        "the kill plan must actually kill and respawn a worker"
    );
    assert_eq!(
        report.total_output(),
        reference,
        "kill -9 + full-history replay must keep the totals exactly once"
    );
    assert_eq!(report.journal_counters.buffered_in_flight, 0);
}

// ---- elasticity over real sockets ---------------------------------------

fn count_events(
    journal: &[dcape_metrics::journal::JournalEntry],
    pred: impl Fn(&AdaptEvent) -> bool,
) -> usize {
    journal.iter().filter(|e| pred(&e.event)).count()
}

/// A worker process joins mid-run (late `Hello` on the live acceptor),
/// takes state through rebalancing rounds, and another drains out and
/// exits cleanly — and the totals still match both the threaded runtime
/// and the generator-level reference.
#[test]
fn elastic_join_and_drain_match_threaded_and_reference() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(13);
    let reference = reference_result_count(&spec, deadline);
    let elastic = |spec: StreamSetSpec| {
        relocation_cfg(spec, 2).with_scale_events(vec![
            ScaleEvent::add(VirtualTime::from_secs(60)),
            ScaleEvent::drain_engine(VirtualTime::from_mins(3), EngineId(0)),
        ])
    };

    let threaded = run_threaded(elastic(spec.clone()), deadline).unwrap();
    dump_journal("socketeq-elastic-threaded", &threaded.journal);
    assert_eq!(threaded.total_output(), reference);

    let socket = run_socket(socket_cfg(elastic(spec)), deadline).unwrap();
    dump_journal("socketeq-elastic-socket", &socket.journal);
    assert_eq!(
        socket.total_output(),
        reference,
        "join+drain over real sockets changed the total"
    );
    for report in [&threaded, &socket] {
        assert_eq!(
            count_events(&report.journal, |e| matches!(
                e,
                AdaptEvent::EngineJoined { .. }
            )),
            1,
            "the join must be journaled exactly once"
        );
        assert_eq!(
            count_events(&report.journal, |e| matches!(
                e,
                AdaptEvent::EngineDrained { .. }
            )),
            1,
            "the drain must be journaled exactly once"
        );
        assert_eq!(report.journal_counters.buffered_in_flight, 0);
    }
}

/// `kill -9` of the *draining* worker mid-drain: the respawned process
/// replays its history, the drain resumes, and the books still close
/// exactly once.
#[test]
fn kill_nine_mid_drain_is_exactly_once() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(42);
    let reference = reference_result_count(&spec, deadline);

    let mut cfg =
        socket_cfg(
            relocation_cfg(spec, 2).with_scale_events(vec![ScaleEvent::drain_engine(
                VirtualTime::from_secs(90),
                EngineId(1),
            )]),
        );
    // Stats land every 30 virtual seconds, so engine 1 has sent three
    // stats reports when its drain starts at 90s — the fourth counted
    // message is its first `DrainState`, i.e. the SIGKILL lands with
    // the drain (and usually a drain relocation round) in flight.
    cfg.kill = Some(KillPlan {
        engine: EngineId(1),
        after_stats: 4,
    });
    let report = run_socket(cfg, deadline).unwrap();
    dump_journal("socketeq-kill9-mid-drain", &report.journal);

    let respawns = report
        .journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "worker_respawned"),
        )
        .count();
    assert!(
        respawns >= 1,
        "the kill plan must kill and respawn a worker"
    );
    let drain_started_at = report
        .journal
        .iter()
        .find_map(|e| match e.event {
            AdaptEvent::ProtocolWarning {
                code: "drain_started",
                ..
            } => Some(e.at),
            _ => None,
        })
        .expect("the drain must have started");
    assert!(
        report.journal.iter().any(|e| matches!(
            e.event,
            AdaptEvent::ProtocolWarning { code, .. } if code == "worker_respawned"
        ) && e.at >= drain_started_at),
        "the kill must land after the drain began (mid-drain)"
    );
    assert_eq!(
        count_events(&report.journal, |e| matches!(
            e,
            AdaptEvent::EngineDrained { .. }
        )),
        1,
        "the drain must still run to completion after the respawn"
    );
    assert_eq!(
        report.total_output(),
        reference,
        "kill -9 mid-drain must keep the totals exactly once"
    );
    assert_eq!(report.journal_counters.buffered_in_flight, 0);
}

/// `kill -9` of a freshly-joined worker while the rebalancer is still
/// moving state toward it: the respawn replays the joiner's short
/// history (its `JoinReady` resend is absorbed as a duplicate) and the
/// join completes with exactly-once totals.
#[test]
fn joiner_crash_restart_mid_admission_is_exactly_once() {
    let deadline = VirtualTime::from_mins(5);
    let spec = relocation_workload(23);
    let reference = reference_result_count(&spec, deadline);

    let mut cfg = socket_cfg(
        relocation_cfg(spec, 2)
            .with_scale_events(vec![ScaleEvent::add(VirtualTime::from_secs(60))]),
    );
    // The joiner's first counted message is its first stats report,
    // sent moments after admission — the SIGKILL hits while it is
    // still being filled by join-rebalancing rounds.
    cfg.kill = Some(KillPlan {
        engine: EngineId(2),
        after_stats: 1,
    });
    let report = run_socket(cfg, deadline).unwrap();
    dump_journal("socketeq-kill9-joiner", &report.journal);

    let respawns = report
        .journal
        .iter()
        .filter(
            |e| matches!(e.event, AdaptEvent::ProtocolWarning { code, .. } if code == "worker_respawned"),
        )
        .count();
    assert!(
        respawns >= 1,
        "the kill plan must kill and respawn the joiner"
    );
    assert_eq!(
        count_events(&report.journal, |e| matches!(
            e,
            AdaptEvent::EngineJoined { .. }
        )),
        1,
        "the join must be journaled exactly once despite the crash"
    );
    assert!(
        report.journal_counters.rebalance_moves > 0,
        "state must still move toward the restarted joiner"
    );
    assert_eq!(
        report.total_output(),
        reference,
        "a joiner crash-restart mid-admission must keep the totals exactly once"
    );
    assert_eq!(report.journal_counters.buffered_in_flight, 0);
}
