//! Property tests for the workload generator: the §3.1 semantics must
//! hold for arbitrary spec parameters, not just the paper's defaults.

use std::collections::HashMap;

use proptest::prelude::*;

use dcape_common::time::VirtualDuration;
use dcape_streamgen::{ArrivalPattern, StreamSetGenerator, StreamSetSpec};

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Every generated tuple routes (via the generator's own
    /// partitioner) to a valid partition, and crafted values respect
    /// the modulo embedding.
    #[test]
    fn generated_values_route_consistently(
        partitions in 2u32..64,
        tuple_range in 200u64..5000,
        join_rate in 1u32..5,
        seed in 0u64..500,
    ) {
        let spec = StreamSetSpec::uniform(
            partitions,
            tuple_range,
            join_rate,
            VirtualDuration::from_millis(30),
        )
        .with_seed(seed);
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let partitioner = gen.partitioner();
        for t in gen.by_ref().take(600) {
            let v = t.values()[0].as_int().unwrap();
            let pid = partitioner.partition_of(&t.values()[0]);
            prop_assert!(pid.0 < partitions);
            prop_assert_eq!(v as u64 % partitions as u64, pid.0 as u64);
        }
    }

    /// The join multiplicative factor grows linearly: after k full
    /// tuple ranges, the average per-value multiplicity per stream is
    /// ~k * join_rate (§3.1's growth model).
    #[test]
    fn multiplicative_factor_grows_linearly(
        join_rate in 1u32..4,
        seed in 0u64..200,
    ) {
        let partitions = 8u32;
        let tuple_range = 800u64;
        let ranges = 3u64;
        let spec = StreamSetSpec::uniform(
            partitions,
            tuple_range,
            join_rate,
            VirtualDuration::from_millis(30),
        )
        .with_seed(seed);
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let batch = gen.generate_ticks(tuple_range * ranges);
        let mut counts: HashMap<(u8, i64), u64> = HashMap::new();
        for t in &batch {
            *counts
                .entry((t.stream().0, t.values()[0].as_int().unwrap()))
                .or_default() += 1;
        }
        let avg = counts.values().sum::<u64>() as f64 / counts.len() as f64;
        let expected = (ranges * join_rate as u64) as f64;
        prop_assert!(
            (avg - expected).abs() / expected < 0.35,
            "avg multiplicity {avg}, expected ~{expected}"
        );
    }

    /// Static weighted skew concentrates arrivals proportionally.
    #[test]
    fn weighted_static_skews_arrivals(seed in 0u64..200) {
        let spec = StreamSetSpec::uniform(4, 400, 1, VirtualDuration::from_millis(30))
            .with_seed(seed)
            .with_pattern(ArrivalPattern::WeightedStatic(vec![9.0, 1.0, 1.0, 1.0]));
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let _ = gen.generate_ticks(3000);
        let hot = gen.arrivals_to(dcape_common::ids::PartitionId(0));
        let cold: u64 = (1..4)
            .map(|i| gen.arrivals_to(dcape_common::ids::PartitionId(i)))
            .sum();
        // Hot partition weight 9 vs 3 => expect ~3x the rest combined.
        prop_assert!(
            hot as f64 > cold as f64 * 2.0,
            "hot {hot} vs cold-total {cold}"
        );
    }

    /// Ticks interleave all streams with non-decreasing timestamps and
    /// the configured inter-arrival gap.
    #[test]
    fn timestamps_paced_by_inter_arrival(gap_ms in 1u64..100, seed in 0u64..100) {
        let spec = StreamSetSpec::uniform(4, 400, 1, VirtualDuration::from_millis(gap_ms))
            .with_seed(seed);
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let batch = gen.generate_ticks(50);
        for (i, chunk) in batch.chunks(3).enumerate() {
            for t in chunk {
                prop_assert_eq!(t.ts().as_millis(), i as u64 * gap_ms);
            }
        }
    }
}
