//! # dcape-streamgen
//!
//! Synthetic multi-stream workload generator reproducing §3.1 of the
//! paper ("Data Characteristics of Long-running Queries").
//!
//! The paper controls three knobs:
//!
//! * **join multiplicative factor** — the average number of tuples per
//!   stream sharing one join value over a period. With a three-way join,
//!   a factor of `f` yields `f³` results per join value, so output (and
//!   state) grows monotonically as the factor grows.
//! * **tuple range `k`** — the factor increases after every `k` tuples of
//!   a stream.
//! * **join rate `r`** — by how much the factor increases per tuple range.
//!
//! We realize these semantics per partition: a partition owning a domain
//! of `d` distinct join values, receiving a `share` of each stream's
//! tuples, emits each of its values exactly `r` times per *cycle* (one
//! tuple-range worth of its arrivals), so after `m` ranges every value has
//! appeared `m·r` times per stream — exactly the paper's growth model.
//! Partition *classes* give different partitions different join rates and
//! tuple ranges (Figures 7, 13, 14), and [`ArrivalPattern`]s skew which
//! partitions receive tuples over time (Figures 9, 10).
//!
//! Everything is seeded and deterministic.
//!
//! # Example
//!
//! ```
//! use dcape_common::time::VirtualDuration;
//! use dcape_streamgen::{StreamSetGenerator, StreamSetSpec};
//!
//! // 16 partitions, join rate 2 per 1 600-tuple range, 30 ms apart.
//! let spec = StreamSetSpec::uniform(16, 1_600, 2, VirtualDuration::from_millis(30));
//! let mut gen = StreamSetGenerator::new(spec)?;
//! let partitioner = gen.partitioner();
//! let batch = gen.generate_ticks(10); // 10 ticks x 3 streams
//! assert_eq!(batch.len(), 30);
//! for tuple in &batch {
//!     // every tuple routes deterministically
//!     let pid = partitioner.partition_of(&tuple.values()[0]);
//!     assert!(pid.0 < 16);
//! }
//! # Ok::<(), dcape_common::DcapeError>(())
//! ```

pub mod generator;
pub mod partitioner;
pub mod pattern;
pub mod schedule;
pub mod spec;

pub use generator::StreamSetGenerator;
pub use partitioner::Partitioner;
pub use pattern::ArrivalPattern;
pub use spec::{ClassAssignment, PartitionClass, StreamSetSpec};
