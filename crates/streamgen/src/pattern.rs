//! Arrival patterns: which partitions receive tuples over time.
//!
//! §4.2 of the paper stresses the relocation machinery with "a worst case
//! situation in terms of input stream fluctuations": one machine's
//! partitions receive 10× the tuples of the other's, flipping every few
//! minutes. [`ArrivalPattern::AlternatingSkew`] reproduces that;
//! [`ArrivalPattern::WeightedStatic`] covers time-invariant skew, and
//! [`ArrivalPattern::Uniform`] the default.

use dcape_common::ids::PartitionId;
use dcape_common::time::{VirtualDuration, VirtualTime};

/// Time-varying weighting over partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalPattern {
    /// Every partition equally likely.
    Uniform,
    /// Fixed per-partition weights (index = partition ID). Partitions
    /// beyond the vector get weight 1.0.
    WeightedStatic(Vec<f64>),
    /// Partitions in `group_a` get `ratio`× the weight of the rest during
    /// even phases; during odd phases the rest get `ratio`× instead.
    /// Phase length is `period` (the paper flips every 10 minutes with
    /// ratio 10).
    AlternatingSkew {
        /// Members of the favoured-first group.
        group_a: Vec<PartitionId>,
        /// Weight multiplier of the favoured group.
        ratio: f64,
        /// Length of one phase.
        period: VirtualDuration,
    },
    /// A one-shot, permanent drift: `before` weights until `at`, `after`
    /// weights from then on (index = partition ID, missing entries
    /// default to 1.0). Models workloads whose hot set changes once —
    /// the regime where amortized productivity estimation pays off.
    Shift {
        /// When the weights change.
        at: VirtualTime,
        /// Weights before the shift.
        before: Vec<f64>,
        /// Weights after the shift.
        after: Vec<f64>,
    },
}

impl ArrivalPattern {
    /// Static Zipf-distributed weights over `n` partitions with exponent
    /// `s` (partition 0 hottest): the classic data-skew shape from the
    /// parallel-join skew-handling literature the paper builds on
    /// (DeWitt et al. [7]).
    pub fn zipf(n: u32, s: f64) -> ArrivalPattern {
        assert!(n > 0, "need at least one partition");
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let weights = (1..=n as u64)
            .map(|rank| 1.0 / (rank as f64).powf(s))
            .collect();
        ArrivalPattern::WeightedStatic(weights)
    }

    /// Weight of `partition` at virtual time `now`. Weights are relative;
    /// the generator normalizes.
    pub fn weight_at(&self, partition: PartitionId, now: VirtualTime) -> f64 {
        match self {
            ArrivalPattern::Uniform => 1.0,
            ArrivalPattern::WeightedStatic(w) => w.get(partition.index()).copied().unwrap_or(1.0),
            ArrivalPattern::AlternatingSkew {
                group_a,
                ratio,
                period,
            } => {
                let phase = if period.as_millis() == 0 {
                    0
                } else {
                    now.as_millis() / period.as_millis()
                };
                let in_a = group_a.contains(&partition);
                let a_favoured = phase % 2 == 0;
                if in_a == a_favoured {
                    *ratio
                } else {
                    1.0
                }
            }
            ArrivalPattern::Shift { at, before, after } => {
                let weights = if now < *at { before } else { after };
                weights.get(partition.index()).copied().unwrap_or(1.0)
            }
        }
    }

    /// True if the weights can change as time advances (the generator
    /// then refreshes its sampling table at phase boundaries).
    pub fn is_time_varying(&self) -> bool {
        matches!(
            self,
            ArrivalPattern::AlternatingSkew { .. } | ArrivalPattern::Shift { .. }
        )
    }

    /// For time-varying patterns, the virtual time at which weights next
    /// change after `now`; `None` for static patterns.
    pub fn next_change_after(&self, now: VirtualTime) -> Option<VirtualTime> {
        match self {
            ArrivalPattern::AlternatingSkew { period, .. } if period.as_millis() > 0 => {
                let p = period.as_millis();
                Some(VirtualTime::from_millis((now.as_millis() / p + 1) * p))
            }
            ArrivalPattern::Shift { at, .. } if now < *at => Some(*at),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_flat_and_static() {
        let p = ArrivalPattern::Uniform;
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::ZERO), 1.0);
        assert_eq!(
            p.weight_at(PartitionId(99), VirtualTime::from_mins(60)),
            1.0
        );
        assert!(!p.is_time_varying());
        assert_eq!(p.next_change_after(VirtualTime::ZERO), None);
    }

    #[test]
    fn weighted_static_reads_vector_with_default() {
        let p = ArrivalPattern::WeightedStatic(vec![2.0, 0.5]);
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::ZERO), 2.0);
        assert_eq!(p.weight_at(PartitionId(1), VirtualTime::ZERO), 0.5);
        assert_eq!(p.weight_at(PartitionId(7), VirtualTime::ZERO), 1.0);
    }

    #[test]
    fn alternating_skew_flips_each_period() {
        let p = ArrivalPattern::AlternatingSkew {
            group_a: vec![PartitionId(0), PartitionId(1)],
            ratio: 10.0,
            period: VirtualDuration::from_mins(10),
        };
        // Phase 0: group A favoured.
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::from_mins(1)), 10.0);
        assert_eq!(p.weight_at(PartitionId(5), VirtualTime::from_mins(1)), 1.0);
        // Phase 1: group B favoured.
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::from_mins(11)), 1.0);
        assert_eq!(
            p.weight_at(PartitionId(5), VirtualTime::from_mins(11)),
            10.0
        );
        // Phase 2: back to A.
        assert_eq!(
            p.weight_at(PartitionId(0), VirtualTime::from_mins(21)),
            10.0
        );
        assert!(p.is_time_varying());
    }

    #[test]
    fn next_change_lands_on_phase_boundary() {
        let p = ArrivalPattern::AlternatingSkew {
            group_a: vec![],
            ratio: 10.0,
            period: VirtualDuration::from_mins(10),
        };
        assert_eq!(
            p.next_change_after(VirtualTime::from_mins(3)),
            Some(VirtualTime::from_mins(10))
        );
        assert_eq!(
            p.next_change_after(VirtualTime::from_mins(10)),
            Some(VirtualTime::from_mins(20))
        );
    }

    #[test]
    fn zero_period_does_not_divide_by_zero() {
        let p = ArrivalPattern::AlternatingSkew {
            group_a: vec![PartitionId(0)],
            ratio: 3.0,
            period: VirtualDuration::ZERO,
        };
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::from_mins(5)), 3.0);
        assert_eq!(p.next_change_after(VirtualTime::ZERO), None);
    }
}

#[cfg(test)]
mod shift_tests {
    use super::*;

    #[test]
    fn shift_changes_weights_once() {
        let p = ArrivalPattern::Shift {
            at: VirtualTime::from_mins(10),
            before: vec![10.0, 1.0],
            after: vec![1.0, 10.0],
        };
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::from_mins(5)), 10.0);
        assert_eq!(p.weight_at(PartitionId(1), VirtualTime::from_mins(5)), 1.0);
        assert_eq!(p.weight_at(PartitionId(0), VirtualTime::from_mins(10)), 1.0);
        assert_eq!(
            p.weight_at(PartitionId(1), VirtualTime::from_mins(15)),
            10.0
        );
        // Missing entries default to 1.0.
        assert_eq!(p.weight_at(PartitionId(9), VirtualTime::from_mins(5)), 1.0);
        assert!(p.is_time_varying());
        assert_eq!(
            p.next_change_after(VirtualTime::from_mins(5)),
            Some(VirtualTime::from_mins(10))
        );
        assert_eq!(p.next_change_after(VirtualTime::from_mins(10)), None);
    }
}

#[cfg(test)]
mod zipf_tests {
    use super::*;

    #[test]
    fn zipf_weights_decay_by_rank() {
        let p = ArrivalPattern::zipf(4, 1.0);
        let w: Vec<f64> = (0..4)
            .map(|i| p.weight_at(PartitionId(i), VirtualTime::ZERO))
            .collect();
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w[2] > w[3]);
        assert!(!p.is_time_varying());
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let p = ArrivalPattern::zipf(8, 0.0);
        for i in 0..8 {
            assert_eq!(p.weight_at(PartitionId(i), VirtualTime::ZERO), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zipf_rejects_zero_partitions() {
        let _ = ArrivalPattern::zipf(0, 1.0);
    }
}
