//! The stream-set generator.
//!
//! Produces the interleaved tuples of all input streams of one m-way
//! join, honouring the [`StreamSetSpec`]: at every *tick* (one
//! inter-arrival step of virtual time), each stream emits one tuple — the
//! paper's "input rate is set to 30 ms per input stream". The tuple's
//! join value is drawn from the owning partition's [`ValueSchedule`], and
//! the partition itself is sampled under the (possibly time-varying)
//! [`ArrivalPattern`] weights.
//!
//! Join values are crafted so that `value mod num_partitions` equals the
//! partition ID, which is exactly what [`Partitioner::Modulo`] computes —
//! generator and split operators therefore agree on routing without any
//! side channel.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dcape_common::error::Result;
use dcape_common::ids::{PartitionId, StreamId};
use dcape_common::time::VirtualTime;
use dcape_common::tuple::Tuple;
use dcape_common::value::Value;

use crate::partitioner::Partitioner;
use crate::schedule::ValueSchedule;
use crate::spec::{PartitionProfile, StreamSetSpec};

/// Deterministic generator over all streams of one experiment.
///
/// Implements `Iterator<Item = Tuple>`; the stream never ends — drivers
/// decide how many tuples (or how much virtual time) to consume.
#[derive(Debug)]
pub struct StreamSetGenerator {
    spec: StreamSetSpec,
    profiles: Vec<PartitionProfile>,
    partitioner: Partitioner,
    /// `schedules[stream][partition]`.
    schedules: Vec<Vec<ValueSchedule>>,
    /// Cumulative weight table for partition sampling.
    cumulative: Vec<f64>,
    /// When the current weight table expires (time-varying patterns).
    weights_valid_until: Option<VirtualTime>,
    rng: StdRng,
    now: VirtualTime,
    seqs: Vec<u64>,
    pending: VecDeque<Tuple>,
    arrivals: Vec<u64>,
    ticks: u64,
    /// Pre-built blob payload templates (`spec.payload_blob > 0`);
    /// tuples cycle through them by sequence number, off the rng stream,
    /// so enabling blobs never perturbs the generated join values.
    blob_templates: Vec<bytes::Bytes>,
}

impl StreamSetGenerator {
    /// Build a generator from a spec. Fails on inconsistent specs.
    pub fn new(spec: StreamSetSpec) -> Result<Self> {
        let profiles = spec.resolve()?;
        let partitioner = Partitioner::modulo(spec.num_partitions);
        let n = spec.num_partitions as usize;
        let schedules = (0..spec.num_streams)
            .map(|s| {
                profiles
                    .iter()
                    .map(|p| {
                        // Distinct seed per (stream, partition), derived
                        // from the spec seed.
                        let seed = spec
                            .seed
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                            .wrapping_add((s as u64) << 32)
                            .wrapping_add(p.partition.0 as u64);
                        ValueSchedule::new(p.domain_size, p.join_rate, seed)
                    })
                    .collect()
            })
            .collect();
        let blob_templates = if spec.payload_blob > 0 {
            // Eight deterministic variants: realistic-looking header
            // text followed by a variant-dependent byte fill. Low
            // whole-value cardinality (8 distinct blobs) is the point —
            // it is what dictionary-based spill codecs exploit.
            (0u8..8)
                .map(|v| {
                    let mut b = Vec::with_capacity(spec.payload_blob as usize);
                    b.extend_from_slice(format!("sensor-{v}/reading;unit=C;payload=").as_bytes());
                    while b.len() < spec.payload_blob as usize {
                        b.push(b'a' + (v + (b.len() % 13) as u8) % 26);
                    }
                    b.truncate(spec.payload_blob as usize);
                    bytes::Bytes::from(b)
                })
                .collect()
        } else {
            Vec::new()
        };
        let mut gen = StreamSetGenerator {
            blob_templates,
            rng: StdRng::seed_from_u64(spec.seed ^ 0xC0FF_EE00_D00D_F00D),
            seqs: vec![0; spec.num_streams],
            arrivals: vec![0; n],
            cumulative: Vec::with_capacity(n),
            weights_valid_until: None,
            now: VirtualTime::ZERO,
            pending: VecDeque::with_capacity(spec.num_streams),
            ticks: 0,
            profiles,
            partitioner,
            schedules,
            spec,
        };
        gen.rebuild_weights();
        Ok(gen)
    }

    /// The spec this generator was built from.
    pub fn spec(&self) -> &StreamSetSpec {
        &self.spec
    }

    /// The partitioner that split operators must use to agree with the
    /// generator's routing.
    pub fn partitioner(&self) -> Partitioner {
        self.partitioner
    }

    /// Resolved per-partition profiles.
    pub fn profiles(&self) -> &[PartitionProfile] {
        &self.profiles
    }

    /// Column index of the join value in generated tuples (always 0).
    pub const JOIN_COLUMN: usize = 0;

    /// Virtual time of the next tick.
    pub fn now(&self) -> VirtualTime {
        self.now
    }

    /// Arrivals routed to `pid` so far (per stream-set, i.e. counted once
    /// per tuple regardless of stream).
    pub fn arrivals_to(&self, pid: PartitionId) -> u64 {
        self.arrivals[pid.index()]
    }

    /// Total ticks generated so far (tuples per stream).
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Generate tuples until `deadline`, returning them in arrival order.
    pub fn generate_until(&mut self, deadline: VirtualTime) -> Vec<Tuple> {
        let mut out = Vec::new();
        while self.now < deadline {
            self.tick_into(&mut out);
        }
        out
    }

    /// Generate exactly `ticks` ticks (each yields one tuple per stream).
    pub fn generate_ticks(&mut self, ticks: u64) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(ticks as usize * self.spec.num_streams);
        for _ in 0..ticks {
            self.tick_into(&mut out);
        }
        out
    }

    /// Advance one tick into a caller-owned buffer: clears `out`, emits
    /// one tuple per stream at the current timestamp, and returns that
    /// timestamp. Batched drivers reuse one buffer across all ticks
    /// instead of allocating a fresh `Vec` per tick.
    pub fn tick_batch(&mut self, out: &mut Vec<Tuple>) -> VirtualTime {
        out.clear();
        let ts = self.now;
        self.tick_into(out);
        ts
    }

    fn rebuild_weights(&mut self) {
        self.cumulative.clear();
        let mut acc = 0.0;
        for p in &self.profiles {
            acc += self.spec.pattern.weight_at(p.partition, self.now).max(0.0);
            self.cumulative.push(acc);
        }
        assert!(acc > 0.0, "arrival pattern assigns zero total weight");
        self.weights_valid_until = self.spec.pattern.next_change_after(self.now);
    }

    fn sample_partition(&mut self) -> PartitionId {
        let total = *self.cumulative.last().expect("non-empty partitions");
        let r = self.rng.gen::<f64>() * total;
        let idx = self
            .cumulative
            .partition_point(|&c| c <= r)
            .min(self.cumulative.len() - 1);
        self.profiles[idx].partition
    }

    /// Advance one tick: one tuple per stream at the current timestamp.
    fn tick_into(&mut self, out: &mut Vec<Tuple>) {
        if let Some(valid_until) = self.weights_valid_until {
            if self.now >= valid_until {
                self.rebuild_weights();
            }
        }
        let n = self.spec.num_partitions as u64;
        for s in 0..self.spec.num_streams {
            let pid = self.sample_partition();
            let local = self.schedules[s][pid.index()].next_value();
            // Craft the value so `value mod n == pid`.
            let join_value = (local * n + pid.0 as u64) as i64;
            let mut values = Vec::with_capacity(2);
            values.push(Value::Int(join_value));
            if self.spec.payload_pad > 0 {
                values.push(Value::Pad(self.spec.payload_pad));
            }
            if !self.blob_templates.is_empty() {
                let i = (self.seqs[s] % self.blob_templates.len() as u64) as usize;
                values.push(Value::Blob(self.blob_templates[i].clone()));
            }
            let stream = StreamId(s as u8);
            let tuple = Tuple::new(stream, self.seqs[s], self.now, values);
            self.seqs[s] += 1;
            self.arrivals[pid.index()] += 1;
            out.push(tuple);
        }
        self.ticks += 1;
        self.now += self.spec.inter_arrival;
    }
}

impl Iterator for StreamSetGenerator {
    type Item = Tuple;

    fn next(&mut self) -> Option<Tuple> {
        if self.pending.is_empty() {
            let mut batch = Vec::with_capacity(self.spec.num_streams);
            self.tick_into(&mut batch);
            self.pending.extend(batch);
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::ArrivalPattern;
    use crate::spec::{ClassAssignment, PartitionClass};
    use dcape_common::time::VirtualDuration;
    use std::collections::HashMap;

    fn small_spec() -> StreamSetSpec {
        StreamSetSpec::uniform(8, 800, 2, VirtualDuration::from_millis(30))
    }

    #[test]
    fn routing_agrees_with_modulo_partitioner() {
        let mut gen = StreamSetGenerator::new(small_spec()).unwrap();
        let part = gen.partitioner();
        for t in gen.by_ref().take(500) {
            let pid = part.partition_of(&t.values()[StreamSetGenerator::JOIN_COLUMN]);
            assert!(pid.0 < 8);
        }
    }

    #[test]
    fn each_tick_emits_one_tuple_per_stream_with_shared_timestamp() {
        let mut gen = StreamSetGenerator::new(small_spec()).unwrap();
        let batch = gen.generate_ticks(10);
        assert_eq!(batch.len(), 30);
        for (i, chunk) in batch.chunks(3).enumerate() {
            let ts = chunk[0].ts();
            assert_eq!(ts.as_millis(), i as u64 * 30);
            let streams: Vec<u8> = chunk.iter().map(|t| t.stream().0).collect();
            assert_eq!(streams, vec![0, 1, 2]);
            for t in chunk {
                assert_eq!(t.ts(), ts);
            }
        }
    }

    #[test]
    fn seq_numbers_are_dense_per_stream() {
        let mut gen = StreamSetGenerator::new(small_spec()).unwrap();
        let batch = gen.generate_ticks(50);
        let mut next: HashMap<u8, u64> = HashMap::new();
        for t in batch {
            let e = next.entry(t.stream().0).or_default();
            assert_eq!(t.seq(), *e);
            *e += 1;
        }
    }

    #[test]
    fn multiplicative_factor_grows_linearly() {
        // Uniform spec: 8 partitions, tuple range 800, join rate 2 =>
        // per-partition arrivals per range = 100, domain = 50 values.
        // After exactly 2 ranges (1600 ticks), every value should have
        // appeared ~4 times per stream (2 ranges * rate 2), modulo
        // sampling noise across partitions.
        let mut gen = StreamSetGenerator::new(small_spec()).unwrap();
        let batch = gen.generate_ticks(1600);
        let mut per_stream_value_counts: HashMap<(u8, i64), u64> = HashMap::new();
        for t in &batch {
            let v = t.values()[0].as_int().unwrap();
            *per_stream_value_counts
                .entry((t.stream().0, v))
                .or_default() += 1;
        }
        let counts: Vec<u64> = per_stream_value_counts.values().copied().collect();
        let avg = counts.iter().sum::<u64>() as f64 / counts.len() as f64;
        assert!(
            (avg - 4.0).abs() < 1.0,
            "expected avg multiplicity ~4, got {avg}"
        );
    }

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<Tuple> = StreamSetGenerator::new(small_spec())
            .unwrap()
            .take(300)
            .collect();
        let b: Vec<Tuple> = StreamSetGenerator::new(small_spec())
            .unwrap()
            .take(300)
            .collect();
        assert_eq!(a, b);
        let c: Vec<Tuple> = StreamSetGenerator::new(small_spec().with_seed(99))
            .unwrap()
            .take(300)
            .collect();
        assert_ne!(a, c);
    }

    #[test]
    fn payload_pad_is_attached() {
        let spec = small_spec().with_payload_pad(256);
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let t = gen.next().unwrap();
        assert_eq!(t.arity(), 2);
        assert_eq!(t.values()[1], Value::Pad(256));
    }

    #[test]
    fn payload_blob_is_real_and_rng_neutral() {
        let base: Vec<Tuple> = StreamSetGenerator::new(small_spec())
            .unwrap()
            .generate_ticks(200);
        let blobbed: Vec<Tuple> = StreamSetGenerator::new(small_spec().with_payload_blob(512))
            .unwrap()
            .generate_ticks(200);
        let mut distinct = std::collections::HashSet::new();
        for (a, b) in base.iter().zip(&blobbed) {
            // The blob rides along without perturbing the join values.
            assert_eq!(a.values()[0], b.values()[0]);
            let Value::Blob(bytes) = &b.values()[1] else {
                panic!("expected a blob payload, got {:?}", b.values()[1]);
            };
            assert_eq!(bytes.len(), 512);
            distinct.insert(bytes.clone());
        }
        // Low whole-value cardinality: the template set, nothing more.
        assert!(distinct.len() <= 8, "too many variants: {}", distinct.len());
        assert!(distinct.len() > 1, "variants must actually cycle");
    }

    #[test]
    fn alternating_skew_shifts_arrivals() {
        let group_a: Vec<PartitionId> = (0..4).map(PartitionId).collect();
        let spec = small_spec().with_pattern(ArrivalPattern::AlternatingSkew {
            group_a: group_a.clone(),
            ratio: 10.0,
            period: VirtualDuration::from_secs(60),
        });
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        // Phase 0 lasts 60 s = 2000 ticks at 30 ms.
        let _ = gen.generate_until(VirtualTime::from_secs(60));
        let phase0_a: u64 = (0..4).map(|i| gen.arrivals_to(PartitionId(i))).sum();
        let phase0_b: u64 = (4..8).map(|i| gen.arrivals_to(PartitionId(i))).sum();
        assert!(
            phase0_a > phase0_b * 5,
            "phase 0 should favour group A: {phase0_a} vs {phase0_b}"
        );
        // Phase 1: favour flips.
        let _ = gen.generate_until(VirtualTime::from_secs(120));
        let total_a: u64 = (0..4).map(|i| gen.arrivals_to(PartitionId(i))).sum();
        let total_b: u64 = (4..8).map(|i| gen.arrivals_to(PartitionId(i))).sum();
        let phase1_b = total_b - phase0_b;
        let phase1_a = total_a - phase0_a;
        assert!(
            phase1_b > phase1_a * 5,
            "phase 1 should favour group B: {phase1_b} vs {phase1_a}"
        );
    }

    #[test]
    fn heterogeneous_classes_differ_in_value_repetition() {
        // Class 0 (partitions 0..4): join rate 4; class 1 (4..8): rate 1.
        let mut spec = small_spec();
        spec.classes = vec![
            PartitionClass {
                assignment: ClassAssignment::Fraction(0.5),
                join_rate: 4,
                tuple_range: 800,
            },
            PartitionClass {
                assignment: ClassAssignment::Fraction(0.5),
                join_rate: 1,
                tuple_range: 800,
            },
        ];
        let mut gen = StreamSetGenerator::new(spec).unwrap();
        let part = gen.partitioner();
        let batch = gen.generate_ticks(4000);
        let mut per_value: HashMap<i64, u64> = HashMap::new();
        let mut value_partition: HashMap<i64, u32> = HashMap::new();
        for t in &batch {
            if t.stream().0 != 0 {
                continue; // one stream suffices
            }
            let v = t.values()[0].as_int().unwrap();
            *per_value.entry(v).or_default() += 1;
            value_partition.insert(v, part.partition_of(&t.values()[0]).0);
        }
        let avg_for = |range: std::ops::Range<u32>| {
            let counts: Vec<u64> = per_value
                .iter()
                .filter(|(v, _)| range.contains(&value_partition[*v]))
                .map(|(_, c)| *c)
                .collect();
            counts.iter().sum::<u64>() as f64 / counts.len().max(1) as f64
        };
        let hot = avg_for(0..4);
        let cold = avg_for(4..8);
        assert!(
            hot > cold * 2.0,
            "rate-4 values should repeat ≫ rate-1 values: {hot} vs {cold}"
        );
    }

    #[test]
    fn generate_until_respects_deadline() {
        let mut gen = StreamSetGenerator::new(small_spec()).unwrap();
        let batch = gen.generate_until(VirtualTime::from_millis(300));
        // 300 / 30 = 10 ticks * 3 streams.
        assert_eq!(batch.len(), 30);
        assert_eq!(gen.now().as_millis(), 300);
    }
}
