//! Per-partition value schedules.
//!
//! Each (stream, partition) pair owns a [`ValueSchedule`] that emits the
//! partition's join values so that **every value appears exactly
//! `join_rate` times per cycle**, in a seeded-shuffled order. This is what
//! makes the join multiplicative factor grow linearly with arrivals, per
//! the paper's data model (§3.1): after `m` full cycles, every value has
//! been seen `m·join_rate` times on this stream.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Cyclic, shuffled emission schedule over a partition's value domain.
///
/// Values are *local indices* `0..domain_size`; the generator maps them
/// to globally routable join values.
#[derive(Debug)]
pub struct ValueSchedule {
    domain_size: u64,
    repeats: u32,
    rng: StdRng,
    /// Remaining emissions in the current cycle (local value indices).
    pending: Vec<u64>,
    emitted: u64,
}

impl ValueSchedule {
    /// Create a schedule over `domain_size` values, each repeated
    /// `repeats` times per cycle, shuffled with `seed`.
    pub fn new(domain_size: u64, repeats: u32, seed: u64) -> Self {
        assert!(domain_size > 0, "domain must be non-empty");
        assert!(repeats > 0, "repeats must be >= 1");
        ValueSchedule {
            domain_size,
            repeats,
            rng: StdRng::seed_from_u64(seed),
            pending: Vec::new(),
            emitted: 0,
        }
    }

    /// Next local value index to emit.
    pub fn next_value(&mut self) -> u64 {
        if self.pending.is_empty() {
            self.refill();
        }
        self.emitted += 1;
        self.pending.pop().expect("refill produced values")
    }

    /// Total emissions so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Length of one full cycle.
    pub fn cycle_len(&self) -> u64 {
        self.domain_size * self.repeats as u64
    }

    fn refill(&mut self) {
        self.pending.reserve(self.cycle_len() as usize);
        for v in 0..self.domain_size {
            for _ in 0..self.repeats {
                self.pending.push(v);
            }
        }
        self.pending.shuffle(&mut self.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn each_cycle_emits_every_value_exactly_repeats_times() {
        let mut s = ValueSchedule::new(10, 3, 42);
        for cycle in 0..4 {
            let mut counts: HashMap<u64, u32> = HashMap::new();
            for _ in 0..s.cycle_len() {
                *counts.entry(s.next_value()).or_default() += 1;
            }
            assert_eq!(counts.len(), 10, "cycle {cycle} missed values");
            assert!(
                counts.values().all(|&c| c == 3),
                "cycle {cycle} uneven: {counts:?}"
            );
        }
        assert_eq!(s.emitted(), 4 * 30);
    }

    #[test]
    fn values_stay_in_domain() {
        let mut s = ValueSchedule::new(7, 2, 1);
        for _ in 0..100 {
            assert!(s.next_value() < 7);
        }
    }

    #[test]
    fn deterministic_for_equal_seeds_divergent_for_different() {
        let seq = |seed: u64| -> Vec<u64> {
            let mut s = ValueSchedule::new(20, 2, seed);
            (0..80).map(|_| s.next_value()).collect()
        };
        assert_eq!(seq(9), seq(9));
        assert_ne!(seq(9), seq(10));
    }

    #[test]
    fn order_is_shuffled_not_sorted() {
        let mut s = ValueSchedule::new(50, 1, 3);
        let cycle: Vec<u64> = (0..50).map(|_| s.next_value()).collect();
        let mut sorted = cycle.clone();
        sorted.sort_unstable();
        assert_ne!(
            cycle, sorted,
            "shuffle produced sorted order (astronomically unlikely)"
        );
    }

    #[test]
    fn single_value_domain_works() {
        let mut s = ValueSchedule::new(1, 5, 0);
        for _ in 0..12 {
            assert_eq!(s.next_value(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn zero_domain_rejected() {
        let _ = ValueSchedule::new(0, 1, 0);
    }
}
