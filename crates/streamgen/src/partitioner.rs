//! Re-export: the partitioner lives in `dcape-common` so that both the
//! generator and the engine-side split operators share one definition.

pub use dcape_common::partition::Partitioner;
