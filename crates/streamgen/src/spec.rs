//! Workload specifications.
//!
//! A [`StreamSetSpec`] describes one experiment's input: how many streams
//! the multi-way join consumes, how many partitions the splits create,
//! the per-class join characteristics, arrival pacing and skew pattern.
//! [`StreamSetSpec::resolve`] turns the declarative class list into dense
//! per-partition profiles consumed by the generator.

use dcape_common::error::{DcapeError, Result};
use dcape_common::ids::PartitionId;
use dcape_common::time::VirtualDuration;

use crate::pattern::ArrivalPattern;

/// One class of partitions sharing join characteristics.
///
/// Figure 7 uses three classes (join rates 4 / 2 / 1, equal fractions);
/// Figure 14 additionally differentiates tuple ranges (15 K vs 45 K).
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionClass {
    /// How partitions are assigned to this class.
    pub assignment: ClassAssignment,
    /// Join rate `r`: growth of the join multiplicative factor per tuple
    /// range (§3.1).
    pub join_rate: u32,
    /// Tuple range `k`: stream-tuple count after which the factor grows.
    pub tuple_range: u64,
}

/// How a [`PartitionClass`] claims its partitions.
#[derive(Debug, Clone, PartialEq)]
pub enum ClassAssignment {
    /// A fraction of all partitions (classes claim consecutive ID blocks
    /// in declaration order; fractions must sum to ≈1 across classes).
    Fraction(f64),
    /// An explicit set of partition IDs.
    Explicit(Vec<PartitionId>),
}

/// Full description of one experiment's input streams.
#[derive(Debug, Clone)]
pub struct StreamSetSpec {
    /// Number of input streams of the m-way join (3 in all paper runs).
    pub num_streams: usize,
    /// Number of partitions the splits create (`n ≫ #machines`).
    pub num_partitions: u32,
    /// Virtual time between consecutive tuples of one stream
    /// (30 ms in the paper's runs).
    pub inter_arrival: VirtualDuration,
    /// Accounting-only payload bytes added to every tuple, so scaled
    /// experiments exhibit paper-scale state growth.
    pub payload_pad: u32,
    /// Physically real payload bytes ([`dcape_common::value::Value::Blob`])
    /// added to every tuple, drawn from a small set of deterministic
    /// templates (low whole-value cardinality, so columnar spill codecs
    /// can measure honest compression ratios). Zero disables it.
    pub payload_blob: u32,
    /// Partition classes; must cover all partitions.
    pub classes: Vec<PartitionClass>,
    /// Which partitions receive tuples over time.
    pub pattern: ArrivalPattern,
    /// RNG seed: equal seeds ⇒ identical streams.
    pub seed: u64,
}

impl StreamSetSpec {
    /// A uniform spec matching the paper's default single-class setup
    /// (§3.2: tuple range 30 K, join rate 3, three streams).
    pub fn uniform(
        num_partitions: u32,
        tuple_range: u64,
        join_rate: u32,
        inter_arrival: VirtualDuration,
    ) -> Self {
        StreamSetSpec {
            num_streams: 3,
            num_partitions,
            inter_arrival,
            payload_pad: 0,
            payload_blob: 0,
            classes: vec![PartitionClass {
                assignment: ClassAssignment::Fraction(1.0),
                join_rate,
                tuple_range,
            }],
            pattern: ArrivalPattern::Uniform,
            seed: 0xD_CA_9E,
        }
    }

    /// Builder-style: set the payload pad.
    pub fn with_payload_pad(mut self, pad: u32) -> Self {
        self.payload_pad = pad;
        self
    }

    /// Builder-style: attach real blob payloads of `bytes` each.
    pub fn with_payload_blob(mut self, bytes: u32) -> Self {
        self.payload_blob = bytes;
        self
    }

    /// Builder-style: set the arrival pattern.
    pub fn with_pattern(mut self, pattern: ArrivalPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the number of streams.
    pub fn with_streams(mut self, num_streams: usize) -> Self {
        self.num_streams = num_streams;
        self
    }

    /// Resolve the class list into one [`PartitionProfile`] per partition.
    ///
    /// Fraction-assigned classes claim consecutive partition-ID blocks in
    /// declaration order; explicit sets claim their members. Every
    /// partition must be claimed exactly once.
    pub fn resolve(&self) -> Result<Vec<PartitionProfile>> {
        if self.num_streams < 2 {
            return Err(DcapeError::config("need at least 2 streams to join"));
        }
        if self.num_partitions == 0 {
            return Err(DcapeError::config("need at least one partition"));
        }
        if self.classes.is_empty() {
            return Err(DcapeError::config("need at least one partition class"));
        }
        let n = self.num_partitions as usize;
        let mut profiles: Vec<Option<PartitionProfile>> = vec![None; n];
        let mut next_block_start = 0usize;
        for (class_idx, class) in self.classes.iter().enumerate() {
            if class.join_rate == 0 {
                return Err(DcapeError::config("join_rate must be >= 1"));
            }
            if class.tuple_range == 0 {
                return Err(DcapeError::config("tuple_range must be >= 1"));
            }
            let members: Vec<PartitionId> = match &class.assignment {
                ClassAssignment::Fraction(f) => {
                    if !(0.0..=1.0).contains(f) {
                        return Err(DcapeError::config("class fraction out of [0,1]"));
                    }
                    let count = if class_idx == self.classes.len() - 1 {
                        // Last fractional class absorbs rounding remainder.
                        n - next_block_start
                    } else {
                        ((n as f64) * f).round() as usize
                    };
                    let start = next_block_start;
                    let end = (start + count).min(n);
                    next_block_start = end;
                    (start..end).map(|i| PartitionId(i as u32)).collect()
                }
                ClassAssignment::Explicit(ids) => ids.clone(),
            };
            for pid in members {
                if pid.index() >= n {
                    return Err(DcapeError::config(format!(
                        "partition {pid} out of range (n={n})"
                    )));
                }
                if profiles[pid.index()].is_some() {
                    return Err(DcapeError::config(format!(
                        "partition {pid} claimed by two classes"
                    )));
                }
                // Arrivals per tuple range to this partition under uniform
                // share; the domain is sized so each value repeats
                // `join_rate` times per range.
                let share = 1.0 / n as f64;
                let arrivals_per_range = (class.tuple_range as f64 * share).max(1.0);
                let domain_size =
                    ((arrivals_per_range / class.join_rate as f64).round() as u64).max(1);
                profiles[pid.index()] = Some(PartitionProfile {
                    partition: pid,
                    class: class_idx,
                    join_rate: class.join_rate,
                    tuple_range: class.tuple_range,
                    domain_size,
                });
            }
        }
        let mut out = Vec::with_capacity(n);
        for (i, p) in profiles.into_iter().enumerate() {
            match p {
                Some(p) => out.push(p),
                None => {
                    return Err(DcapeError::config(format!(
                        "partition P{i} not covered by any class"
                    )))
                }
            }
        }
        Ok(out)
    }
}

/// Fully resolved generation parameters for one partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionProfile {
    /// The partition this profile describes.
    pub partition: PartitionId,
    /// Index into [`StreamSetSpec::classes`].
    pub class: usize,
    /// Values repeat this many times per cycle.
    pub join_rate: u32,
    /// The class's tuple range (for reporting).
    pub tuple_range: u64,
    /// Number of distinct join values owned by this partition.
    pub domain_size: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcape_common::time::VirtualDuration;

    fn ia() -> VirtualDuration {
        VirtualDuration::from_millis(30)
    }

    #[test]
    fn uniform_spec_resolves_all_partitions() {
        let spec = StreamSetSpec::uniform(120, 30_000, 3, ia());
        let profiles = spec.resolve().unwrap();
        assert_eq!(profiles.len(), 120);
        for p in &profiles {
            assert_eq!(p.join_rate, 3);
            // 30_000 / 120 = 250 arrivals per range; /3 => ~83 values.
            assert_eq!(p.domain_size, 83);
        }
    }

    #[test]
    fn three_class_split_covers_everything() {
        let mut spec = StreamSetSpec::uniform(90, 30_000, 3, ia());
        spec.classes = vec![
            PartitionClass {
                assignment: ClassAssignment::Fraction(1.0 / 3.0),
                join_rate: 4,
                tuple_range: 30_000,
            },
            PartitionClass {
                assignment: ClassAssignment::Fraction(1.0 / 3.0),
                join_rate: 2,
                tuple_range: 30_000,
            },
            PartitionClass {
                assignment: ClassAssignment::Fraction(1.0 / 3.0),
                join_rate: 1,
                tuple_range: 30_000,
            },
        ];
        let profiles = spec.resolve().unwrap();
        assert_eq!(profiles.len(), 90);
        let counts = profiles.iter().fold([0usize; 3], |mut acc, p| {
            acc[p.class] += 1;
            acc
        });
        assert_eq!(counts, [30, 30, 30]);
        // Higher join rate => smaller domain => more repeats per value.
        assert!(profiles[0].domain_size < profiles[89].domain_size);
    }

    #[test]
    fn explicit_assignment_wins_over_blocks() {
        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes = vec![
            PartitionClass {
                assignment: ClassAssignment::Explicit(vec![PartitionId(1), PartitionId(3)]),
                join_rate: 4,
                tuple_range: 1000,
            },
            PartitionClass {
                assignment: ClassAssignment::Explicit(vec![PartitionId(0), PartitionId(2)]),
                join_rate: 1,
                tuple_range: 1000,
            },
        ];
        let profiles = spec.resolve().unwrap();
        assert_eq!(profiles[1].join_rate, 4);
        assert_eq!(profiles[0].join_rate, 1);
    }

    #[test]
    fn overlapping_classes_rejected() {
        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes = vec![
            PartitionClass {
                assignment: ClassAssignment::Explicit(vec![PartitionId(0)]),
                join_rate: 1,
                tuple_range: 1000,
            },
            PartitionClass {
                assignment: ClassAssignment::Explicit(vec![PartitionId(0)]),
                join_rate: 2,
                tuple_range: 1000,
            },
        ];
        assert!(spec.resolve().is_err());
    }

    #[test]
    fn uncovered_partition_rejected() {
        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes = vec![PartitionClass {
            assignment: ClassAssignment::Explicit(vec![PartitionId(0), PartitionId(1)]),
            join_rate: 1,
            tuple_range: 1000,
        }];
        assert!(spec.resolve().is_err());
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.num_streams = 1;
        assert!(spec.resolve().is_err());

        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes[0].join_rate = 0;
        assert!(spec.resolve().is_err());

        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes[0].tuple_range = 0;
        assert!(spec.resolve().is_err());

        let mut spec = StreamSetSpec::uniform(4, 1000, 1, ia());
        spec.classes.clear();
        assert!(spec.resolve().is_err());
    }

    #[test]
    fn builders_apply() {
        let spec = StreamSetSpec::uniform(4, 1000, 1, ia())
            .with_payload_pad(64)
            .with_seed(7)
            .with_streams(4);
        assert_eq!(spec.payload_pad, 64);
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.num_streams, 4);
    }
}
