//! Engine configuration.

use dcape_common::error::{DcapeError, Result};
use dcape_common::time::VirtualDuration;
use dcape_storage::{DiskModel, SegmentCodec};

use crate::spill::policy::VictimPolicy;
use crate::state::productivity::ProductivityEstimator;

/// How a partition group stores its per-stream state in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StateLayout {
    /// Row-oriented `Vec<Tuple>` per stream — the baseline layout, kept
    /// as the equivalence reference.
    Row,
    /// Struct-of-arrays columns (timestamps, hashed keys, join-key
    /// values, payload arena); rows are materialized only at the
    /// sink/spill boundary. The default.
    #[default]
    Columnar,
}

/// Configuration of one symmetric m-way hash join operator instance.
#[derive(Debug, Clone)]
pub struct MJoinConfig {
    /// Number of input streams (≥ 2). Three in all paper experiments.
    pub num_streams: usize,
    /// Join-column index per stream (the paper assumes all join
    /// predicates range over one shared domain per input — §2 fn. 2).
    pub join_columns: Vec<usize>,
    /// Optional sliding window: a pair of tuples joins only if their
    /// timestamps are within this span, and tuples older than the
    /// window are purged from state. `None` = the paper's long-running
    /// finite-query model (state grows monotonically); `Some` = the
    /// intro's infinite-stream regime ("as long as operators have
    /// finite window sizes").
    pub window: Option<dcape_common::time::VirtualDuration>,
    /// In-memory state layout of every partition group.
    pub layout: StateLayout,
}

impl MJoinConfig {
    /// All streams join on the same column index.
    pub fn same_column(num_streams: usize, column: usize) -> Self {
        MJoinConfig {
            num_streams,
            join_columns: vec![column; num_streams],
            window: None,
            layout: StateLayout::default(),
        }
    }

    /// Builder-style: set a sliding window.
    pub fn with_window(mut self, window: dcape_common::time::VirtualDuration) -> Self {
        self.window = Some(window);
        self
    }

    /// Builder-style: set the in-memory state layout.
    pub fn with_layout(mut self, layout: StateLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.num_streams < 2 {
            return Err(DcapeError::config("m-way join needs >= 2 streams"));
        }
        if self.join_columns.len() != self.num_streams {
            return Err(DcapeError::config(
                "join_columns length must equal num_streams",
            ));
        }
        Ok(())
    }
}

/// Virtual-time processing cost model.
///
/// The run-time phase is input-paced (30 ms ≫ per-tuple work on the
/// paper's hardware), so run-time processing is free in virtual time;
/// the cleanup phase, however, is *compute*-paced — the paper reports
/// its duration in seconds — so cleanup work is charged per scanned
/// tuple and per produced result, alongside disk I/O from the
/// [`DiskModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Microseconds of virtual time per tuple scanned during cleanup.
    pub cleanup_scan_us_per_tuple: u64,
    /// Microseconds of virtual time per missing result produced.
    pub cleanup_emit_us_per_result: u64,
    /// Disk device model (spill writes + cleanup reads).
    pub disk: DiskModel,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            // Calibrated against §3.2's cleanup numbers: ~993 K missing
            // results took ~359 s => ~360 µs/result end-to-end including
            // merge scans; we split that between scan and emit terms.
            cleanup_scan_us_per_tuple: 50,
            cleanup_emit_us_per_result: 300,
            disk: DiskModel::default_2006(),
        }
    }
}

/// Full configuration of one query engine.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The join instance this engine runs.
    pub join: MJoinConfig,
    /// Memory budget in accounted bytes (the paper's per-machine RAM).
    pub memory_budget: u64,
    /// Spill trigger threshold in accounted bytes (200 MB / 60 MB in the
    /// paper's runs, scaled here).
    pub spill_threshold: u64,
    /// Fraction of used memory pushed per spill (`k%` of Figures 5/6);
    /// the paper settles on 0.3 as the default.
    pub spill_fraction: f64,
    /// Victim selection policy (the paper's choice: least productive).
    pub victim_policy: VictimPolicy,
    /// How often the local controller checks memory (`ss_timer`).
    pub ss_timer: VirtualDuration,
    /// Processing / disk cost model.
    pub cost: CostModel,
    /// How partition-group productivity is estimated for ranking.
    pub estimator: ProductivityEstimator,
    /// Optional reactivation watermark: when set, and memory usage
    /// falls below `watermark × spill_threshold`, the engine merges
    /// spilled partitions back into memory during the run (§3: the
    /// cleanup "can be performed at any time when memory becomes
    /// available"). `None` defers all cleanup to the post-run phase, as
    /// in the paper's monotonically-growing experiments.
    pub reactivate_watermark: Option<f64>,
    /// Segment format for spill writes (decoding accepts both).
    pub spill_codec: SegmentCodec,
}

impl EngineConfig {
    /// A three-way-join engine with the given memory numbers and
    /// paper-default knobs.
    pub fn three_way(memory_budget: u64, spill_threshold: u64) -> Self {
        EngineConfig {
            join: MJoinConfig::same_column(3, 0),
            memory_budget,
            spill_threshold,
            spill_fraction: 0.3,
            victim_policy: VictimPolicy::LeastProductive,
            ss_timer: VirtualDuration::from_secs(5),
            cost: CostModel::default(),
            estimator: ProductivityEstimator::Cumulative,
            reactivate_watermark: None,
            spill_codec: SegmentCodec::default(),
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        self.join.validate()?;
        if !(0.0..=1.0).contains(&self.spill_fraction) || self.spill_fraction == 0.0 {
            return Err(DcapeError::config("spill_fraction must be in (0, 1]"));
        }
        if self.spill_threshold > self.memory_budget {
            return Err(DcapeError::config(
                "spill_threshold must not exceed memory_budget",
            ));
        }
        if let Some(w) = self.reactivate_watermark {
            if !(0.0..1.0).contains(&w) {
                return Err(DcapeError::config("reactivate_watermark must be in [0, 1)"));
            }
        }
        Ok(())
    }

    /// Builder-style: set the victim policy.
    pub fn with_policy(mut self, policy: VictimPolicy) -> Self {
        self.victim_policy = policy;
        self
    }

    /// Builder-style: set the spill fraction (`k%`).
    pub fn with_spill_fraction(mut self, f: f64) -> Self {
        self.spill_fraction = f;
        self
    }

    /// Builder-style: set the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Builder-style: set the productivity estimator.
    pub fn with_estimator(mut self, estimator: ProductivityEstimator) -> Self {
        self.estimator = estimator;
        self
    }

    /// Builder-style: enable run-time reactivation below the given
    /// fraction of the spill threshold.
    pub fn with_reactivation(mut self, watermark: f64) -> Self {
        self.reactivate_watermark = Some(watermark);
        self
    }

    /// Builder-style: set the spill segment codec.
    pub fn with_spill_codec(mut self, codec: SegmentCodec) -> Self {
        self.spill_codec = codec;
        self
    }

    /// Builder-style: set the in-memory state layout of the join.
    pub fn with_layout(mut self, layout: StateLayout) -> Self {
        self.join.layout = layout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_column_builds_consistent_config() {
        let c = MJoinConfig::same_column(3, 0);
        assert!(c.validate().is_ok());
        assert_eq!(c.join_columns, vec![0, 0, 0]);
    }

    #[test]
    fn invalid_join_configs_rejected() {
        assert!(MJoinConfig::same_column(1, 0).validate().is_err());
        let c = MJoinConfig {
            num_streams: 3,
            join_columns: vec![0, 0],
            window: None,
            layout: StateLayout::default(),
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn engine_config_defaults_validate() {
        let c = EngineConfig::three_way(1 << 20, 1 << 19);
        assert!(c.validate().is_ok());
        assert_eq!(c.spill_fraction, 0.3);
    }

    #[test]
    fn engine_config_rejects_bad_numbers() {
        let mut c = EngineConfig::three_way(100, 50);
        c.spill_fraction = 0.0;
        assert!(c.validate().is_err());
        let mut c = EngineConfig::three_way(100, 50);
        c.spill_fraction = 1.5;
        assert!(c.validate().is_err());
        let c = EngineConfig::three_way(100, 200);
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_apply() {
        let c = EngineConfig::three_way(100, 50)
            .with_spill_fraction(0.5)
            .with_policy(VictimPolicy::LargestFirst)
            .with_cost(CostModel {
                cleanup_scan_us_per_tuple: 1,
                cleanup_emit_us_per_result: 2,
                disk: DiskModel::free(),
            });
        assert_eq!(c.spill_fraction, 0.5);
        assert_eq!(c.victim_policy, VictimPolicy::LargestFirst);
        assert_eq!(c.cost.cleanup_emit_us_per_result, 2);
    }
}
